"""Pure-python text rendering of a collected trace.

A terminal-friendly companion to the Perfetto export: one row per
``(group, lane)`` track, simulated time scaled onto a fixed-width
column axis.  Spans fill their columns with ``=``, instants overlay
``!``, counter samples overlay ``*``; idle columns stay ``.``.  The
rendering is deterministic for a deterministic trace, so tests can
golden it.

::

    timeline 0 .. 1_280_000 ps  (1 col = 16_000 ps)
    pes/mpsoc.pe0       ====!===============....   7 ev
    fabric/pe0_port     .=.=.=..=.=..=.......      12 ev
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from .trace import TraceEvent

#: Glyphs, in increasing display priority (later overwrite earlier).
_IDLE, _SPAN, _COUNTER, _INSTANT = ".", "=", "*", "!"


def _lane_rows(events: Iterable[TraceEvent]
               ) -> List[Tuple[Tuple[str, str], List[TraceEvent]]]:
    """Events grouped per track, tracks in first-seen order."""
    order: List[Tuple[str, str]] = []
    buckets = {}
    for event in events:
        if event.track not in buckets:
            buckets[event.track] = []
            order.append(event.track)
        buckets[event.track].append(event)
    return [(track, buckets[track]) for track in order]


def render_timeline(events, *, width: int = 72,
                    categories: Optional[Iterable[str]] = None,
                    end_ps: Optional[int] = None) -> str:
    """Render ``events`` (a list or a ``TraceCollector``) as text.

    ``categories`` restricts the rendering; ``end_ps`` pins the axis end
    (defaults to the last event edge).
    """
    if hasattr(events, "events"):
        events = events.events
    if categories is not None:
        wanted = frozenset(categories)
        events = [event for event in events if event.cat in wanted]
    if not events:
        return "timeline: no events"
    span_end = max(event.ts + event.dur for event in events)
    end = max(end_ps if end_ps is not None else 0, span_end, 1)
    scale = end / width

    def column(ts: int) -> int:
        return min(width - 1, int(ts / scale))

    lanes = _lane_rows(events)
    label_width = max(len(f"{group}/{lane}") for (group, lane), _ in lanes)
    lines = [f"timeline 0 .. {end:_} ps  (1 col = {end / width:_.0f} ps)"]
    for (group, lane), lane_events in lanes:
        cells = [_IDLE] * width
        for event in lane_events:
            if event.ph == "X":
                for col in range(column(event.ts),
                                 column(max(event.ts + event.dur - 1,
                                            event.ts)) + 1):
                    if cells[col] == _IDLE:
                        cells[col] = _SPAN
            elif event.ph == "C":
                if cells[column(event.ts)] in (_IDLE, _SPAN):
                    cells[column(event.ts)] = _COUNTER
            else:
                cells[column(event.ts)] = _INSTANT
        label = f"{group}/{lane}".ljust(label_width)
        lines.append(f"{label}  {''.join(cells)}  {len(lane_events)} ev")
    lines.append(f"legend: {_SPAN} span  {_INSTANT} instant  "
                 f"{_COUNTER} counter sample  {_IDLE} idle")
    return "\n".join(lines)


def longest_spans(events, count: int = 8) -> List[TraceEvent]:
    """The ``count`` longest spans — quick 'where did time go' digest."""
    if hasattr(events, "events"):
        events = events.events
    spans = [event for event in events if event.ph == "X"]
    spans.sort(key=lambda event: (-event.dur, event.ts, event.name))
    return spans[:count]
