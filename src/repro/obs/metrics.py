"""Periodic metrics time-series over the platform's counters.

:class:`MetricsSampler` snapshots counter *deltas* every
``interval_ps`` of simulated time — bus/link utilization, cache
hit-rate, runnable-queue depth, IRQ pending mask, per-master
outstanding transactions — into columnar rows surfaced as
``SimulationReport.timeseries``.

The sampler is **passive**: rather than scheduling a kernel timer (which
would add timed steps and process activations, breaking the
bit-identical guarantee, and would keep the event queue alive on the
pure event-driven run path), it is *driven from the observability hook
points*.  Each observation calls :meth:`tick`; every interval boundary
crossed since the previous observation emits one row, stamped at the
boundary time, using the platform state at the first observation at or
past that boundary.  Discrete-event state only changes at observable
events, so for every counter that advances through the fabric hooks the
rows are exactly what a synchronous timer would have sampled — without
the timer.  The run's tail past the last boundary is flushed as a final
partial row by ``ObsSuite.finish``.
"""

from __future__ import annotations

import csv
import json
from typing import Callable, Dict, List, Optional

from .trace import TraceCollector

#: Columns every row carries before the counter/gauge columns.
TIME_COLUMNS = ("t_ps", "t_cycles")


class MetricsSampler:
    """Boundary-crossing sampler building the metrics time-series.

    ``sample_deltas`` returns the current *cumulative* counter values
    (the sampler differences consecutive snapshots); ``sample_gauges``
    returns instantaneous values copied into the row as-is.
    """

    def __init__(self, interval_ps: int, clock_period: int,
                 sample_deltas: Callable[[], Dict[str, float]],
                 sample_gauges: Callable[[], Dict[str, float]],
                 derive: Optional[Callable[[dict, int], None]] = None,
                 collector: Optional[TraceCollector] = None) -> None:
        if interval_ps <= 0:
            raise ValueError("interval_ps must be positive")
        if clock_period <= 0:
            raise ValueError("clock_period must be positive")
        self.interval_ps = interval_ps
        self.clock_period = clock_period
        self._sample_deltas = sample_deltas
        self._sample_gauges = sample_gauges
        #: Optional ``derive(row, elapsed_ps)`` adding derived columns
        #: (utilization, hit rate) after the deltas are in place.
        self._derive = derive
        self._collector = collector
        self._previous: Dict[str, float] = {}
        self._last_stamp = 0
        self._next_boundary = interval_ps
        self.rows: List[dict] = []

    # -- sampling -----------------------------------------------------------------------
    def tick(self, now: int) -> None:
        """Observe the platform at simulated time ``now``.

        Emits one row per interval boundary crossed since the last
        observation; a no-op while ``now`` stays within the current
        interval, so calling it from every hook is cheap.
        """
        while self._next_boundary <= now:
            self._emit_row(self._next_boundary)
            self._next_boundary += self.interval_ps

    def flush(self, now: int) -> None:
        """Emit remaining boundaries up to ``now`` plus the partial tail."""
        self.tick(now)
        if now > self._last_stamp:
            self._emit_row(now)

    def _emit_row(self, stamp: int) -> None:
        current = self._sample_deltas()
        row = {"t_ps": stamp, "t_cycles": stamp // self.clock_period}
        for key, value in current.items():
            row[key] = value - self._previous.get(key, 0)
        self._previous = current
        row.update(self._sample_gauges())
        if self._derive is not None:
            self._derive(row, stamp - self._last_stamp)
        self._last_stamp = stamp
        self.rows.append(row)
        if self._collector is not None:
            values = {key: value for key, value in row.items()
                      if key not in TIME_COLUMNS}
            self._collector.counter("platform", "metrics", stamp,
                                    ("metrics", "counters"), values)


# -- writers ----------------------------------------------------------------------------
def timeseries_columns(rows: List[dict]) -> List[str]:
    """Union of row keys, first-seen order (sparse columns render blank)."""
    from ..api.results import _columns
    return _columns(rows)


def write_timeseries_csv(rows: List[dict], path: str) -> str:
    """Write ``SimulationReport.timeseries`` rows as CSV."""
    columns = timeseries_columns(rows)
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns, restval="")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return path


def write_timeseries_json(rows: List[dict], path: str, *,
                          indent: int = 2) -> str:
    """Write ``SimulationReport.timeseries`` rows as JSON."""
    payload = {
        "schema": "repro.obs.timeseries/v1",
        "count": len(rows),
        "columns": timeseries_columns(rows),
        "rows": rows,
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=indent)
        handle.write("\n")
    return path
