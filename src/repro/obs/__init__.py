"""repro.obs — unified observability: timeline tracing, metrics
time-series, and task-level profiling spans.

Three heads over one hook surface (see :class:`~repro.obs.config.ObsConfig`):

* :class:`TraceCollector` — typed spans/instants in simulated time,
  exported as Chrome trace-event / Perfetto JSON
  (``python -m repro.obs.export``) or a text timeline
  (:func:`render_timeline`);
* :class:`MetricsSampler` — periodic counter-delta rows surfaced as
  ``SimulationReport.timeseries`` with CSV/JSON writers;
* :class:`HostProfiler` — host wall-clock attribution per simulated
  process.

Enable via the builder (``PlatformBuilder().trace()``, ``.metrics(...)``)
or ``PlatformConfig(obs=ObsConfig(...))``.  Disabled (the default), the
platform installs zero hooks; enabled, the heads only observe — the
simulation's timing and scheduler counters stay bit-identical either way.
"""

from .config import TRACE_CATEGORIES, ObsConfig
from .hostprof import HostProfiler
from .metrics import MetricsSampler, write_timeseries_csv, write_timeseries_json
from .suite import ObsSuite
from .timeline import longest_spans, render_timeline
from .trace import TraceCollector, TraceEvent


def __getattr__(name):
    # The exporter is loaded lazily so ``python -m repro.obs.export`` does
    # not import the module twice (once as a package attribute, once as
    # ``__main__``), which trips runpy's double-import warning.
    if name in ("chrome_trace", "write_trace"):
        from . import export
        return getattr(export, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "TRACE_CATEGORIES",
    "ObsConfig",
    "ObsSuite",
    "TraceCollector",
    "TraceEvent",
    "MetricsSampler",
    "HostProfiler",
    "chrome_trace",
    "write_trace",
    "render_timeline",
    "longest_spans",
    "write_timeseries_csv",
    "write_timeseries_json",
]
