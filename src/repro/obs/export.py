"""Chrome trace-event / Perfetto JSON export, plus the demo CLI.

:func:`chrome_trace` converts a :class:`~repro.obs.trace.TraceCollector`
into the JSON object format Perfetto and ``chrome://tracing`` load
directly: ``"X"`` complete events for spans, ``"i"`` instants, ``"C"``
counters, with ``"M"`` metadata naming the processes/threads.  Trace
``(group, lane)`` tracks map to ``pid``/``tid`` in first-seen order;
timestamps convert from simulated picoseconds to the format's
microseconds.  The conversion is pure and deterministic, so two runs of
the same seeded scenario produce byte-identical files.

Run as a module for a self-contained demonstration — a devices+caches
GSM encode on a shared bus with tracing and metrics on::

    python -m repro.obs.export -o trace.json
    # then open trace.json at https://ui.perfetto.dev

The demo trace contains PE task spans, per-master fabric transaction
spans, cache fill/writeback spans, periodic-timer IRQ instants and the
GSM workload's ``ctx.span`` phase annotations.
"""

from __future__ import annotations

import argparse
import json
from typing import List, Optional

from .timeline import render_timeline
from .trace import TraceCollector


def chrome_trace(collector: TraceCollector, *,
                 other_data: Optional[dict] = None) -> dict:
    """The collector's events as a Chrome trace-event JSON object."""
    events = sorted(collector.events, key=lambda event: event.ts)
    pids = {}
    tids = {}
    metadata: List[dict] = []
    records: List[dict] = []
    for event in events:
        group, lane = event.track
        if group not in pids:
            pids[group] = len(pids) + 1
            metadata.append({
                "ph": "M", "name": "process_name", "cat": "__metadata",
                "ts": 0, "pid": pids[group], "tid": 0,
                "args": {"name": group},
            })
        pid = pids[group]
        if (group, lane) not in tids:
            tid = sum(1 for key in tids if key[0] == group) + 1
            tids[(group, lane)] = tid
            metadata.append({
                "ph": "M", "name": "thread_name", "cat": "__metadata",
                "ts": 0, "pid": pid, "tid": tid,
                "args": {"name": lane},
            })
        record = {
            "ph": event.ph, "name": event.name, "cat": event.cat,
            "ts": event.ts / 1e6, "pid": pid, "tid": tids[(group, lane)],
            "args": dict(event.args),
        }
        if event.ph == "X":
            record["dur"] = event.dur / 1e6
        elif event.ph == "i":
            record["s"] = "t"
        records.append(record)
    payload = {
        "traceEvents": metadata + records,
        "displayTimeUnit": "ns",
        "otherData": {
            "source": "repro.obs",
            "time_unit": "simulated picoseconds / 1e6",
            "dropped_events": collector.dropped,
            "filtered_events": collector.filtered,
        },
    }
    if other_data:
        payload["otherData"].update(other_data)
    return payload


def write_trace(collector: TraceCollector, path: str, *,
                other_data: Optional[dict] = None, indent: int = 1) -> str:
    """Write the Perfetto JSON for ``collector`` to ``path``."""
    payload = chrome_trace(collector, other_data=other_data)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=indent)
        handle.write("\n")
    return path


# -- demo CLI ---------------------------------------------------------------------------
def build_demo_scenario(*, frames: int = 2, interval_cycles: int = 256):
    """The devices+caches GSM scenario the CLI (and CI artifact) traces."""
    from ..api import PlatformBuilder, Scenario

    config = (PlatformBuilder()
              .pes(2)
              .wrapper_memories(2)
              .l1_cache(sets=8, ways=2, line_bytes=16)
              .timer(compare_cycles=2000, periodic=True, auto_start=True)
              .trace()
              .metrics(interval_cycles=interval_cycles)
              .build())
    return Scenario(
        name="obs-demo-gsm",
        config=config,
        workload="gsm_encode",
        params={"frames": frames, "seed": 11},
        seed=11,
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.export",
        description="Trace a devices+caches GSM run and export Perfetto "
                    "JSON (open the file at https://ui.perfetto.dev).",
    )
    parser.add_argument("-o", "--out", default="trace.json",
                        help="output path (default: %(default)s)")
    parser.add_argument("--frames", type=int, default=2,
                        help="GSM frames per channel (default: %(default)s)")
    parser.add_argument("--interval", type=int, default=256,
                        help="metrics sampler interval in cycles "
                             "(default: %(default)s)")
    parser.add_argument("--quick", action="store_true",
                        help="single-frame run (CI artifact mode)")
    parser.add_argument("--timeline", action="store_true",
                        help="also print the text timeline")
    parser.add_argument("--timeseries-csv", metavar="PATH",
                        help="also write the metrics time-series as CSV")
    args = parser.parse_args(argv)

    from ..api.runner import run_scenario
    from .metrics import write_timeseries_csv

    scenario = build_demo_scenario(
        frames=1 if args.quick else args.frames,
        interval_cycles=args.interval)
    result = run_scenario(scenario, keep_platform=True, capture_errors=False)
    result.raise_for_status()
    obs = result.platform.obs
    report = result.report
    write_trace(obs.trace, args.out,
                other_data={"scenario": scenario.name,
                            "simulated_cycles": report.simulated_cycles})
    summary = obs.trace.summary()
    print(f"wrote {args.out}: {summary['events']} events "
          f"({summary['dropped']} dropped) over "
          f"{report.simulated_cycles} simulated cycles")
    print("by category: " + ", ".join(
        f"{cat}={count}" for cat, count in summary["by_category"].items()))
    if args.timeseries_csv:
        write_timeseries_csv(report.timeseries, args.timeseries_csv)
        print(f"wrote {args.timeseries_csv}: {len(report.timeseries)} "
              "metrics rows")
    if args.timeline:
        print()
        print(render_timeline(obs.trace))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
