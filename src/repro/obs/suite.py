"""The observability suite: one object wired into every hook point.

:class:`ObsSuite` is the platform-facing façade over the three heads
(:class:`~repro.obs.trace.TraceCollector`,
:class:`~repro.obs.metrics.MetricsSampler`,
:class:`~repro.obs.hostprof.HostProfiler`).  ``Platform._build_obs``
registers it on the same zero-overhead-when-off hook points the
sanitizers use — ``Fabric.add_port_observer`` for transactions, a
parallel ``obs_observer`` slot on the interrupt controller and the DMA
engines (the single-slot ``check_observer`` stays owned by
``repro.check``) — and injects it into each :class:`TaskContext` so
workloads can annotate phases with ``ctx.span``.

Everything here is strictly read-only with respect to the simulation:
the suite never notifies events, never creates processes, and never
consumes simulated time, so enabling observability leaves simulated
time and the golden scheduler counters bit-identical (enforced by
``tests/obs/test_obs_bit_identical.py``).

Track layout (``(group, lane)`` pairs, mapped to Perfetto pid/tid by the
exporter):

* ``("pes", <pe name>)`` — task-execution span, ``ctx.span`` phase
  annotations, IRQ wait spans and claim instants of one PE;
* ``("fabric", <port name>)`` — transaction spans per master port
  (issue→complete, named ``<op> <slave>``; cache fill/writeback/restage
  traffic is categorised ``cache``);
* ``("devices", <device name>)`` — DMA transfer spans and IRQ raise
  instants;
* ``("metrics", "counters")`` — the sampler's counter track.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .config import ObsConfig
from .hostprof import HostProfiler
from .metrics import MetricsSampler
from .trace import TraceCollector

#: Request tags of L1/coherence traffic (mirrors the sanitizers' view of
#: the cache protocol) — transactions with these suffixes trace as
#: category ``cache`` instead of ``fabric``.
_CACHE_TAG_SUFFIXES = (".fill", ".writeback", ".restage")


class ObsSuite:
    """Collects timeline events, metrics rows and host-time buckets."""

    def __init__(self, config: ObsConfig, interconnect,
                 clock_period: int) -> None:
        self.config = config
        self.interconnect = interconnect
        self.clock_period = clock_period
        self.trace: Optional[TraceCollector] = (
            TraceCollector(max_events=config.max_events,
                           categories=config.categories)
            if config.trace else None)
        self.host: Optional[HostProfiler] = (
            HostProfiler() if config.host_profile else None)
        self.sampler: Optional[MetricsSampler] = None
        if config.metrics_interval_cycles:
            self.sampler = MetricsSampler(
                interval_ps=config.metrics_interval_cycles * clock_period,
                clock_period=clock_period,
                sample_deltas=self._sample_deltas,
                sample_gauges=self._sample_gauges,
                derive=self._derive_row,
                collector=self.trace,
            )
        self.simulator = None
        self._processors: List[object] = []
        self._caches: List[object] = []
        self._controller = None
        #: In-flight transactions: id(request) -> issue timestamp.  Keyed
        #: per request (not per master) because coherence writebacks can
        #: ride a holder's port while that PE's own transfer is in flight.
        self._issue_times: Dict[int, int] = {}
        #: Per-master-port outstanding transaction counts (gauge).
        self._outstanding: Dict[str, int] = {}
        #: pe_id -> IRQ wait-begin timestamp (open wait spans).
        self._irq_waits: Dict[int, int] = {}
        #: pe_id -> PE track lane (from the registered processors).
        self._pe_lanes: Dict[int, str] = {}
        #: engine name -> DMA transfer-begin (timestamp, programmed count).
        self._dma_starts: Dict[str, Tuple[int, int]] = {}

    # -- registration (mirrors SanitizerSuite's wiring surface) -------------------------
    def register_processor(self, processor) -> None:
        """Track a PE; its context gains ``ctx.span`` support."""
        self._processors.append(processor)
        self._pe_lanes[processor.context.pe_id] = processor.name
        processor.context.obs = self

    def register_controller(self, controller) -> None:
        """Observe IRQ raise/claim edges (parallel ``obs_observer`` slot)."""
        self._controller = controller
        controller.obs_observer = self

    def register_dma(self, engine) -> None:
        """Observe an engine's transfer begin/end."""
        engine.obs_observer = self

    def register_caches(self, caches) -> None:
        """Caches feed the sampler's hit-rate columns."""
        self._caches = list(caches)

    def install(self, simulator) -> None:
        """Bind the run's simulator (runnable-depth gauge, host clock)."""
        self.simulator = simulator
        if self.host is not None:
            self.host.install(simulator)

    # -- clock --------------------------------------------------------------------------
    def now(self) -> int:
        """Current simulated time in picoseconds."""
        return self.interconnect.sim_now()

    def _observe(self, now: int) -> None:
        """Per-hook bookkeeping shared by every observation point."""
        if self.sampler is not None:
            self.sampler.tick(now)
        if self.host is not None:
            self.host.observe()

    # -- fabric hooks -------------------------------------------------------------------
    def on_port_issue(self, port, request) -> None:
        now = self.now()
        self._issue_times[id(request)] = now
        self._outstanding[port.name] = self._outstanding.get(port.name, 0) + 1
        self._observe(now)

    def on_port_complete(self, port, request, response) -> None:
        now = self.now()
        issued = self._issue_times.pop(id(request), now)
        held = self._outstanding.get(port.name, 0)
        if held:
            self._outstanding[port.name] = held - 1
        if self.trace is not None:
            tag = request.tag or ""
            suffix = next((s for s in _CACHE_TAG_SUFFIXES
                           if tag.endswith(s)), None)
            if suffix is not None:
                cat, name = "cache", suffix[1:]
            else:
                region = self.interconnect.address_map.find_region(
                    request.address)
                slave = region.name if region is not None else "?"
                cat, name = "fabric", f"{request.op.value} {slave}"
            args = {"addr": f"{request.address:#x}",
                    "words": request.word_count, "ok": response.ok}
            if tag:
                args["tag"] = tag
            self.trace.complete(name, cat, issued, now - issued,
                                ("fabric", port.name), **args)
        self._observe(now)

    # -- interrupt hooks ----------------------------------------------------------------
    def irq_raised(self, mask: int) -> None:
        now = self.now()
        if self.trace is not None:
            self.trace.instant("irq raise", "irq", now,
                               ("devices", "irq"), mask=f"{mask:#x}")
        self._observe(now)

    def irq_wait_begin(self, pe_id: int) -> None:
        now = self.now()
        self._irq_waits[pe_id] = now
        self._observe(now)

    def irq_claimed(self, pe_id: int, mask: int) -> None:
        now = self.now()
        lane = self._pe_lanes.get(pe_id, f"pe{pe_id}")
        began = self._irq_waits.pop(pe_id, now)
        if self.trace is not None:
            self.trace.complete("irq wait", "wait", began, now - began,
                                ("pes", lane), mask=f"{mask:#x}")
            self.trace.instant("irq claim", "irq", now, ("pes", lane),
                               mask=f"{mask:#x}")
        self._observe(now)

    # -- DMA hooks ----------------------------------------------------------------------
    def dma_begin(self, engine, count: int) -> None:
        now = self.now()
        self._dma_starts[engine.name] = (now, count)
        self._observe(now)

    def dma_end(self, engine, ok: bool, words_done: int) -> None:
        now = self.now()
        began, count = self._dma_starts.pop(engine.name, (now, 0))
        if self.trace is not None:
            self.trace.complete("dma transfer", "dma", began, now - began,
                                ("devices", engine.name), count=count,
                                words=words_done, ok=ok)
        self._observe(now)

    # -- task-side spans ----------------------------------------------------------------
    def task_span(self, context, name: str, began: int, ended: int) -> None:
        """A ``ctx.span`` workload phase annotation closing at ``ended``."""
        if self.trace is not None:
            self.trace.complete(name, "task", began, ended - began,
                                ("pes", context.name))
        self._observe(ended)

    # -- metrics providers --------------------------------------------------------------
    def _sample_deltas(self) -> Dict[str, float]:
        stats = self.interconnect.stats
        data = {"bus_transactions": stats.transactions,
                "bus_busy_cycles": stats.busy_cycles}
        hits = misses = fills = writebacks = 0
        for cache in self._caches:
            hits += cache.stats.hits + cache.stats.array_hits
            misses += cache.stats.misses + cache.stats.array_misses
            fills += cache.stats.fills
            writebacks += cache.stats.writebacks
        if self._caches:
            data.update(cache_hits=hits, cache_misses=misses,
                        cache_fills=fills, cache_writebacks=writebacks)
        noc = getattr(self.interconnect, "noc_stats", None)
        if noc is not None:
            for name in sorted(noc.links):
                data[f"link[{name}]"] = noc.links[name].busy_cycles
        return data

    def _sample_gauges(self) -> Dict[str, float]:
        gauges: Dict[str, float] = {}
        if self.simulator is not None:
            gauges["runnable"] = self.simulator.runnable_depth
        if self._controller is not None:
            gauges["irq_pending"] = self._controller.pending_mask
        gauges["outstanding"] = sum(self._outstanding.values())
        for name in sorted(self._outstanding):
            gauges[f"outstanding[{name}]"] = self._outstanding[name]
        return gauges

    def _derive_row(self, row: dict, elapsed_ps: int) -> None:
        elapsed_cycles = elapsed_ps // self.clock_period
        if elapsed_cycles > 0:
            row["bus_utilization"] = round(
                min(1.0, row["bus_busy_cycles"] / elapsed_cycles), 4)
        lookups = row.get("cache_hits", 0) + row.get("cache_misses", 0)
        if "cache_hits" in row:
            row["cache_hit_rate"] = (round(row["cache_hits"] / lookups, 4)
                                     if lookups else 0.0)

    # -- run boundary -------------------------------------------------------------------
    def finish(self, now: int) -> None:
        """End of run: close task spans, flush the sampler's tail."""
        if self.trace is not None:
            for processor in self._processors:
                stats = processor.stats
                ended = stats.finished_at
                finished = ended is not None
                if ended is None:
                    ended = now
                self.trace.complete(
                    "task", "task", stats.started_at,
                    ended - stats.started_at, ("pes", processor.name),
                    finished=finished,
                    compute_cycles=processor.context.compute_cycles)
        if self.sampler is not None:
            self.sampler.flush(now)
        if self.host is not None:
            self.host.finish()

    # -- reporting ----------------------------------------------------------------------
    @property
    def timeseries(self) -> List[dict]:
        """The sampler's rows (empty when the metrics head is off)."""
        return self.sampler.rows if self.sampler is not None else []

    def summary(self) -> dict:
        """Per-head summary for ``SimulationReport.obs_summary``."""
        summary: dict = {"config": self.config.describe()}
        if self.trace is not None:
            summary["trace"] = self.trace.summary()
        if self.sampler is not None:
            summary["metrics_rows"] = len(self.sampler.rows)
        if self.host is not None:
            summary["host_profile"] = {
                name: round(seconds, 6)
                for name, seconds in self.host.report().items()}
        return summary
