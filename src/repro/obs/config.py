"""Observability configuration.

:class:`ObsConfig` selects which of the three ``repro.obs`` heads a
platform run attaches:

* **timeline tracing** (``trace=True``) — a
  :class:`~repro.obs.trace.TraceCollector` recording typed spans and
  instants in simulated time (task execution, fabric transactions, cache
  fills/writebacks, DMA bursts, IRQ edges), exportable as Chrome
  trace-event / Perfetto JSON or a text timeline;
* **metrics time-series** (``metrics_interval_cycles > 0``) — a
  :class:`~repro.obs.metrics.MetricsSampler` snapshotting counter deltas
  (fabric utilization, cache hit rate, runnable-queue depth, IRQ pending
  mask, outstanding transactions, mesh link occupancy) every N simulated
  clock cycles into ``SimulationReport.timeseries``;
* **host-time attribution** (``host_profile=True``) — a
  :class:`~repro.obs.hostprof.HostProfiler` bucketing host wall-clock per
  simulated process, showing where the *simulator itself* spends time.

``None`` on :attr:`~repro.soc.config.PlatformConfig.obs` (the default)
installs zero hooks — bit-identical to the pre-observability platform.
Every enabled head only *observes*: no event is notified, no process is
created, no simulated time is consumed, so an observed run keeps the
same simulated time and scheduler counters as the unobserved run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

#: Trace categories the collector knows about (``categories=None`` keeps
#: them all).  ``task`` covers PE program spans and ``ctx.span``
#: annotations, ``wait`` the blocking states (IRQ waits), ``metrics`` the
#: sampler's counter tracks.
TRACE_CATEGORIES = ("task", "fabric", "cache", "dma", "irq", "wait",
                    "metrics")


@dataclass
class ObsConfig:
    """Which observability heads to attach to a platform run."""

    #: Record the simulated-time event timeline.
    trace: bool = True
    #: Sampling interval of the metrics time-series in simulated clock
    #: cycles; 0 disables the metrics head.
    metrics_interval_cycles: int = 0
    #: Trace categories to keep (``None`` = all of
    #: :data:`TRACE_CATEGORIES`); events of other categories are filtered
    #: at emission and never enter the buffer.
    categories: Optional[Tuple[str, ...]] = None
    #: Bounded trace-buffer size; once full, new events are counted in
    #: ``dropped`` instead of growing the buffer without bound.
    max_events: int = 200_000
    #: Bucket host wall-clock per simulated process (coarse, sampled at
    #: the observation points — see :mod:`repro.obs.hostprof`).
    host_profile: bool = False

    def __post_init__(self) -> None:
        if self.metrics_interval_cycles < 0:
            raise ValueError("metrics_interval_cycles must be >= 0")
        if self.max_events <= 0:
            raise ValueError("max_events must be positive")
        if self.categories is not None:
            self.categories = tuple(self.categories)
            unknown = set(self.categories) - set(TRACE_CATEGORIES)
            if not self.categories or unknown:
                raise ValueError(
                    f"categories must be a non-empty subset of "
                    f"{TRACE_CATEGORIES}, got {self.categories!r}"
                )
        if not (self.trace or self.metrics_interval_cycles
                or self.host_profile):
            raise ValueError(
                "an ObsConfig must enable at least one head (trace, "
                "metrics or host profile); use obs=None to disable "
                "observability"
            )

    def describe(self) -> str:
        """Short summary used in ``PlatformConfig.describe()``."""
        parts = []
        if self.trace:
            parts.append("trace")
        if self.metrics_interval_cycles:
            parts.append(f"metrics@{self.metrics_interval_cycles}c")
        if self.host_profile:
            parts.append("hostprof")
        return "+".join(parts)
