"""Typed trace events in simulated time, with a bounded collector.

The trace model follows the Chrome trace-event phases the exporter emits:

* ``"X"`` **complete events** — spans with a start timestamp and a
  duration (task execution, fabric transactions, DMA bursts, IRQ waits,
  ``ctx.span`` workload annotations);
* ``"i"`` **instants** — point events (IRQ raise, cache fill/writeback);
* ``"C"`` **counters** — the metrics sampler's per-interval values.

Timestamps and durations are simulated picoseconds.  Every event carries
a ``track`` — a ``(group, lane)`` pair the exporter maps onto Perfetto's
``pid``/``tid`` axes, e.g. ``("pes", "mpsoc.pe0")`` or
``("fabric", "pe1_port")``.

:class:`TraceCollector` is a plain append buffer: bounded (keep-first;
overflow increments :attr:`~TraceCollector.dropped`) and category
filtered at emission.  It never touches the simulator, so collecting a
trace cannot perturb simulated time or scheduler counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class TraceEvent:
    """One timeline event, in simulated time.

    ``ph`` is the Chrome trace-event phase (``"X"``, ``"i"`` or ``"C"``);
    ``ts`` and ``dur`` are simulated picoseconds; ``track`` is the
    ``(group, lane)`` pair the exporter maps to ``pid``/``tid``.
    """

    ph: str
    name: str
    cat: str
    ts: int
    track: Tuple[str, str]
    dur: int = 0
    args: dict = field(default_factory=dict)


class TraceCollector:
    """Bounded, category-filtered buffer of :class:`TraceEvent`.

    ``categories=None`` keeps every category.  When the buffer reaches
    ``max_events`` the *earliest* events are kept and later ones are
    counted in :attr:`dropped` — the timeline stays contiguous from t=0,
    and the drop counter makes the truncation visible.
    """

    def __init__(self, max_events: int = 200_000,
                 categories: Optional[Tuple[str, ...]] = None) -> None:
        if max_events <= 0:
            raise ValueError("max_events must be positive")
        self.max_events = max_events
        self.categories = None if categories is None else frozenset(categories)
        self.events: List[TraceEvent] = []
        #: Events rejected by the bounded buffer (not by category filters).
        self.dropped = 0
        #: Events rejected by the category filter.
        self.filtered = 0

    # -- emission -----------------------------------------------------------------------
    def emit(self, event: TraceEvent) -> bool:
        """Append ``event``; returns False if filtered or dropped."""
        if self.categories is not None and event.cat not in self.categories:
            self.filtered += 1
            return False
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return False
        self.events.append(event)
        return True

    def complete(self, name: str, cat: str, ts: int, dur: int,
                 track: Tuple[str, str], **args) -> bool:
        """Record a span (``"X"`` complete event) of ``dur`` ps at ``ts``."""
        return self.emit(TraceEvent(ph="X", name=name, cat=cat, ts=ts,
                                    track=track, dur=dur, args=args))

    def instant(self, name: str, cat: str, ts: int,
                track: Tuple[str, str], **args) -> bool:
        """Record a point event (``"i"`` instant) at ``ts``."""
        return self.emit(TraceEvent(ph="i", name=name, cat=cat, ts=ts,
                                    track=track, args=args))

    def counter(self, name: str, cat: str, ts: int,
                track: Tuple[str, str], values: Dict[str, float]) -> bool:
        """Record a ``"C"`` counter sample (one series per key)."""
        return self.emit(TraceEvent(ph="C", name=name, cat=cat, ts=ts,
                                    track=track, args=dict(values)))

    # -- inspection ---------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def by_category(self, cat: str) -> List[TraceEvent]:
        """Events of one category, in emission order."""
        return [event for event in self.events if event.cat == cat]

    def summary(self) -> dict:
        """Event/drop counts, keyed for ``SimulationReport.obs_summary``."""
        per_cat: Dict[str, int] = {}
        for event in self.events:
            per_cat[event.cat] = per_cat.get(event.cat, 0) + 1
        return {
            "events": len(self.events),
            "dropped": self.dropped,
            "filtered": self.filtered,
            "by_category": dict(sorted(per_cat.items())),
        }
