"""Host wall-clock attribution per simulated process.

The simulator is single-threaded: between two consecutive observability
hook observations, the host CPU was (mostly) running the process that is
current at the second observation — its generator body, its bus
transfers, its cost-model arithmetic.  :class:`HostProfiler` exploits
that: each observation charges the wall-clock elapsed since the previous
one to the currently running process (or ``"kernel"`` when the hook
fires outside any process, e.g. during finalize).

The attribution is *sampled at the observation points*, so it is coarse:
host time spent in stretches that emit no observable events (a long
``compute`` burn resolves as a single timer wake) lands on the next
observed process.  That is accurate enough to answer the profiling
question — "which PE/program is the simulator spending its host time
on?" — without per-activation timestamping overhead.  Buckets are host
wall-clock and therefore not deterministic; they are reported in
``SimulationReport.obs_summary``, never in the trace event stream.
"""

from __future__ import annotations

import time
from typing import Dict, Optional


class HostProfiler:
    """Buckets host seconds per simulated process name."""

    def __init__(self) -> None:
        self.buckets: Dict[str, float] = {}
        self._last: Optional[float] = None
        self._simulator = None

    def install(self, simulator) -> None:
        """Start attributing; called when the platform run begins."""
        self._simulator = simulator
        self._last = time.perf_counter()

    def observe(self) -> None:
        """Charge the elapsed host time to the current process."""
        if self._last is None:
            return
        now = time.perf_counter()
        elapsed = now - self._last
        self._last = now
        process = getattr(self._simulator, "_current_process", None)
        name = process.name if process is not None else "kernel"
        self.buckets[name] = self.buckets.get(name, 0.0) + elapsed

    def finish(self) -> None:
        """Final charge so trailing host time is not lost."""
        self.observe()
        self._last = None

    def report(self) -> Dict[str, float]:
        """Buckets sorted by descending host seconds."""
        return dict(sorted(self.buckets.items(),
                           key=lambda item: (-item[1], item[0])))
