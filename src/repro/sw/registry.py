"""Workload registry: named, parameterized task-list factories.

A *workload* is everything one experiment runs on the platform: the task
programs placed on the processing elements plus the checks that decide
whether the simulated execution produced the right answer.  The registry
maps short names (``"gsm_encode"``, ``"fir"``, ...) to factories so that a
scenario can reference its workload declaratively — which also keeps
scenarios picklable for the process-sharded experiment runner (only the
name and the parameters cross the process boundary; the factory is resolved
again inside the worker).

Register a workload with the decorator::

    from repro.sw import workload

    @workload.register("my_kernel")
    def _my_kernel(config, *, size=64, seed=0):
        tasks = [make_my_task(size, seed + pe) for pe in range(config.num_pes)]
        return Workload(tasks=tasks, description=f"my kernel, size={size}")

and instantiate it with ``workload.create("my_kernel", config, size=128)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .task import TaskFunction


class WorkloadError(Exception):
    """Raised on registry misuse: duplicate or unknown workload names."""


#: A result check: receives the :class:`~repro.soc.stats.SimulationReport`
#: of the run.  Pass by returning ``True``/``None``; fail by returning
#: ``False``, returning a message string, or raising ``AssertionError``.
ResultCheck = Callable[[object], object]


@dataclass
class Workload:
    """An instantiated workload: tasks ready for placement plus checks."""

    #: Task programs, placed on PEs in order (round-robin by the platform).
    tasks: List[TaskFunction]
    #: Result checks run against the simulation report after the run.
    checks: List[ResultCheck] = field(default_factory=list)
    #: Human-readable one-liner for tables and logs.
    description: str = ""


#: A factory: ``factory(config, **params) -> Workload | list-of-tasks``.
WorkloadFactory = Callable[..., object]


def as_workload(built: object) -> Workload:
    """Normalise a factory's return value into a :class:`Workload`."""
    if isinstance(built, Workload):
        return built
    if isinstance(built, (list, tuple)):
        return Workload(tasks=list(built))
    if callable(built):
        return Workload(tasks=[built])
    raise WorkloadError(
        f"a workload factory must return a Workload, a task list or a single "
        f"task, got {type(built).__name__}"
    )


class WorkloadRegistry:
    """Name → workload-factory mapping with decorator-based registration."""

    def __init__(self) -> None:
        self._factories: Dict[str, WorkloadFactory] = {}

    # -- registration -------------------------------------------------------------
    def register(self, name: str, factory: Optional[WorkloadFactory] = None):
        """Register ``factory`` under ``name`` (usable as a decorator)."""
        if not name or not isinstance(name, str):
            raise WorkloadError("workload names must be non-empty strings")

        def _register(fn: WorkloadFactory) -> WorkloadFactory:
            if name in self._factories:
                raise WorkloadError(
                    f"workload {name!r} is already registered "
                    f"(by {self._factories[name]!r})"
                )
            self._factories[name] = fn
            return fn

        if factory is not None:
            return _register(factory)
        return _register

    def unregister(self, name: str) -> None:
        """Remove a registration (used by tests)."""
        self._factories.pop(name, None)

    # -- lookup ---------------------------------------------------------------------
    def get(self, name: str) -> WorkloadFactory:
        """The factory registered under ``name``."""
        try:
            return self._factories[name]
        except KeyError:
            known = ", ".join(sorted(self._factories)) or "(none)"
            raise WorkloadError(
                f"unknown workload {name!r}; registered workloads: {known}"
            ) from None

    def create(self, name: str, config, **params) -> Workload:
        """Instantiate the named workload for ``config``."""
        return as_workload(self.get(name)(config, **params))

    def names(self) -> List[str]:
        """All registered workload names, sorted."""
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        return name in self._factories

    def __len__(self) -> int:
        return len(self._factories)


#: The process-wide registry used by ``repro.api`` scenarios.
workload = WorkloadRegistry()
