"""Task context: the software-visible view of a processing element.

A *task* is a Python generator function ``task(ctx)`` representing the
embedded program a processing element runs.  Through the :class:`TaskContext`
the task can:

* reach every dynamic shared memory of the platform through the high-level
  API (``ctx.smem(i)``), exactly like the paper's ISS software does through
  the C-formalism API;
* account for local computation with ``yield from ctx.compute(cycles)``;
* synchronise with other processing elements using shared-memory flags
  (spin-wait with a configurable polling back-off);
* on platforms with devices (:mod:`repro.dev`), block on interrupt lines
  (``ctx.enable_irq`` / ``yield from ctx.wait_irq(...)``) and ring the
  interrupt controller's software doorbell (``ctx.raise_irq``) — the
  interrupt-driven alternative to polling.

Everything that touches the interconnect must be driven with ``yield from``
so that the kernel can interleave the processing elements cycle-accurately.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Generator, List, Optional

from ..kernel import WaitCycles
from ..kernel.process import WaitCycleCache
from ..wrapper.api import SharedMemoryAPI
from .instruction_costs import ARM7_LIKE, CostModel


class TaskError(Exception):
    """Raised when a task misuses its context (bad memory index, etc.)."""


class TaskContext:
    """Execution context handed to a task generator."""

    def __init__(
        self,
        pe_id: int,
        apis: List[SharedMemoryAPI],
        clock_period: int,
        cost_model: CostModel = ARM7_LIKE,
        poll_interval_cycles: int = 8,
        name: str = "",
        port=None,
        irq=None,
        devices=None,
    ) -> None:
        if not apis:
            raise TaskError("a task context needs at least one shared memory API")
        self.pe_id = pe_id
        self.name = name or f"pe{pe_id}"
        self._apis = apis
        self.clock_period = clock_period
        self.cost_model = cost_model
        #: The PE's master port (device register programming goes through
        #: it; ``None`` only for API stand-ins without a fabric port).
        self.port = port if port is not None else getattr(apis[0], "port", None)
        #: This PE's interrupt-controller client (``None`` without devices).
        self.irq = irq
        #: Resolved :class:`~repro.dev.config.DeviceLayout` of the platform
        #: (``None`` without devices) — how drivers find register windows.
        self.devices = devices
        self.poll_interval_cycles = max(1, poll_interval_cycles)
        #: Reusable wait objects (scheduler fast path: no per-yield
        #: allocation for recurring waits like the poll back-off).
        self._wait_cache = WaitCycleCache(clock_period)
        self._poll_wait = self.wait_cycles(self.poll_interval_cycles)
        #: Simulated cycles charged for local computation so far.
        self.compute_cycles = 0
        #: Number of compute() calls (handy to sanity-check annotations).
        self.compute_calls = 0
        #: Free-form log a task may append progress records to.
        self.log: List[str] = []
        #: Observability suite (:class:`repro.obs.ObsSuite`) when the
        #: platform runs with tracing on; ``None`` makes :meth:`span` a
        #: no-op, so annotated workloads run unchanged everywhere.
        self.obs = None

    # -- shared memory access ------------------------------------------------------
    def smem(self, index: int = 0) -> SharedMemoryAPI:
        """The API bound to shared memory ``index`` (in platform order)."""
        try:
            return self._apis[index]
        except IndexError:
            raise TaskError(
                f"{self.name}: no shared memory with index {index} "
                f"(platform has {len(self._apis)})"
            ) from None

    @property
    def memory_count(self) -> int:
        """Number of dynamic shared memories visible to this PE."""
        return len(self._apis)

    def memory_for(self, key: int) -> SharedMemoryAPI:
        """Deterministically spread ``key`` over the available memories."""
        return self._apis[key % len(self._apis)]

    # -- computation accounting -------------------------------------------------------
    def wait_cycles(self, cycles: int) -> WaitCycles:
        """A reusable ``yield``-able wait for ``cycles`` PE clock cycles.

        Cached per cycle count: tasks (and the context's own poll loops)
        that wait recurring cycle counts allocate nothing per yield — the
        kernel's timer fast path re-schedules the same wait object.
        """
        return self._wait_cache.get(cycles)

    def compute(self, cycles: int) -> Generator[object, None, None]:
        """Advance simulated time by ``cycles`` of local computation."""
        if cycles < 0:
            raise TaskError("compute cycles must be >= 0")
        self.compute_calls += 1
        if cycles == 0:
            return
        self.compute_cycles += cycles
        yield cycles * self.clock_period

    def compute_ops(self, **op_mix: int) -> Generator[object, None, None]:
        """Charge a mix of abstract operations (see :class:`CostModel`)."""
        yield from self.compute(self.cost_model.ops(**op_mix))

    # -- synchronisation helpers ---------------------------------------------------------
    def set_flag(self, vptr: int, offset: int = 0, value: int = 1,
                 memory: int = 0) -> Generator[object, None, None]:
        """Write a synchronisation word into a shared allocation."""
        yield from self.smem(memory).write(vptr, value, offset=offset)

    def wait_flag(self, vptr: int, offset: int = 0, expected: int = 1,
                  memory: int = 0, max_polls: Optional[int] = None
                  ) -> Generator[object, None, int]:
        """Spin until a shared word equals ``expected``; returns the poll count."""
        polls = 0
        while True:
            value = yield from self.smem(memory).read(vptr, offset=offset)
            polls += 1
            if value == expected:
                return polls
            if max_polls is not None and polls >= max_polls:
                raise TaskError(
                    f"{self.name}: flag at {vptr:#x}[{offset}] never became "
                    f"{expected} after {polls} polls"
                )
            yield self._poll_wait

    def barrier(self, vptr: int, participants: int, my_index: int,
                memory: int = 0) -> Generator[object, None, None]:
        """A simple sense-less barrier built on a shared counter word.

        Each participant atomically-ish increments the counter guarded by the
        reservation bit, then waits until it reaches ``participants``.
        """
        api = self.smem(memory)
        while True:
            acquired = yield from api.try_reserve(vptr)
            if acquired:
                break
            yield self._poll_wait
        count = yield from api.read(vptr)
        yield from api.write(vptr, count + 1)
        yield from api.release(vptr)
        yield from self.wait_flag(vptr, expected=participants, memory=memory)

    # -- interrupts (platforms with a repro.dev interrupt controller) --------------------
    def _irq_client(self):
        if self.irq is None:
            raise TaskError(
                f"{self.name}: the platform has no interrupt controller "
                f"(declare devices on the PlatformConfig)"
            )
        return self.irq

    def enable_irq(self, lines) -> None:
        """Unmask interrupt ``lines`` (an int or iterable) for this PE."""
        self._irq_client().enable(lines)

    def disable_irq(self, lines) -> None:
        """Mask interrupt ``lines`` for this PE."""
        self._irq_client().disable(lines)

    def wait_irq(self, lines=None) -> Generator[object, None, int]:
        """Block until an enabled line pends; acknowledge and return the mask.

        Rides the kernel fast path: every wait yields this PE's one
        persistent controller event — no per-wait allocation.
        """
        return (yield from self._irq_client().wait(lines))

    def raise_irq(self, lines) -> Generator[object, None, None]:
        """Ring the controller's software doorbell over the bus (an IPI)."""
        client = self._irq_client()
        from ..dev.irq import REG_PENDING, lines_to_mask

        mask = lines_to_mask(lines, client.controller.lines)
        yield from self.port.write(
            self.devices.controller.base + 4 * REG_PENDING, mask,
            tag="irq.raise",
        )

    def note(self, message: str) -> None:
        """Append a progress note to the task log (no simulated time)."""
        self.log.append(message)

    @contextmanager
    def span(self, name: str):
        """Annotate a workload phase on the PE's timeline track.

        Usage (wrapping any mix of ``yield from`` protocol calls and
        ``compute`` bursts)::

            with ctx.span("lpc"):
                yield from ctx.compute(1200)

        The span covers the simulated time the block consumed and lands
        in the trace as a ``task``-category event.  Without observability
        (``self.obs is None``) this is a zero-cost no-op — annotations
        never change the simulation.
        """
        obs = self.obs
        if obs is None:
            yield
            return
        began = obs.now()
        try:
            yield
        finally:
            obs.task_span(self, name, began, obs.now())


#: Type of a task body: a generator function taking the context.
TaskFunction = Callable[[TaskContext], Generator[object, None, object]]
