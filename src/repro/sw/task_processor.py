"""Transaction-accurate processing element executing task programs.

A :class:`TaskProcessor` stands in for one of the paper's ISSs: it owns a
master port on the interconnect, executes a task program (a Python generator
using the shared-memory API), charges simulated cycles for local computation
and produces per-PE statistics.  The full ARM-like ISS
(:mod:`repro.iss`) plugs into the same platform slots when instruction-level
fidelity is wanted; the task processor is the fast path used by the large
workloads (GSM) and by the evaluation benches.
"""

from __future__ import annotations

import time as _wallclock
from dataclasses import dataclass
from typing import Generator, List, Optional

from ..fabric import MasterPort
from ..kernel import Module
from ..wrapper.api import SharedMemoryAPI
from .instruction_costs import ARM7_LIKE, CostModel
from .task import TaskContext, TaskFunction


@dataclass
class TaskProcessorStats:
    """Execution statistics of one processing element."""

    started_at: int = 0
    finished_at: Optional[int] = None
    compute_cycles: int = 0
    api_calls: int = 0
    result: object = None
    failed: bool = False
    error: str = ""
    host_seconds: float = 0.0

    @property
    def finished(self) -> bool:
        return self.finished_at is not None


class TaskProcessor(Module):
    """A processing element that runs one task program to completion."""

    def __init__(
        self,
        name: str,
        port: MasterPort,
        apis: List[SharedMemoryAPI],
        task: TaskFunction,
        clock_period: int,
        cost_model: CostModel = ARM7_LIKE,
        start_delay_cycles: int = 0,
        parent: Optional[Module] = None,
        irq=None,
        devices=None,
    ) -> None:
        super().__init__(name, parent)
        self.port = port
        self.task = task
        self.clock_period = clock_period
        self.start_delay_cycles = start_delay_cycles
        self.context = TaskContext(
            pe_id=port.master_id,
            apis=apis,
            clock_period=clock_period,
            cost_model=cost_model,
            name=name,
            port=port,
            irq=irq,
            devices=devices,
        )
        self.stats = TaskProcessorStats()
        self.add_process(self._run, name="program")

    # -- execution ---------------------------------------------------------------
    def _run(self) -> Generator[object, None, None]:
        if self.start_delay_cycles:
            yield self.start_delay_cycles * self.clock_period
        self.stats.started_at = self.port._interconnect.sim_now()
        wall_start = _wallclock.perf_counter()
        try:
            self.stats.result = yield from self.task(self.context)
        except Exception as exc:
            self.stats.failed = True
            self.stats.error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            self.stats.host_seconds = _wallclock.perf_counter() - wall_start
            self.stats.finished_at = self.port._interconnect.sim_now()
            self.stats.compute_cycles = self.context.compute_cycles
            self.stats.api_calls = sum(api.calls for api in self.context._apis)

    # -- reporting ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        """True once the task program has run to completion."""
        return self.stats.finished

    def elapsed_cycles(self) -> Optional[int]:
        """Simulated cycles between task start and completion."""
        if self.stats.finished_at is None:
            return None
        return (self.stats.finished_at - self.stats.started_at) // self.clock_period

    def report(self) -> dict:
        """Summary dictionary used by platform reports."""
        return {
            "name": self.name,
            "pe_id": self.port.master_id,
            "finished": self.finished,
            "failed": self.stats.failed,
            "error": self.stats.error,
            "elapsed_cycles": self.elapsed_cycles(),
            "compute_cycles": self.stats.compute_cycles,
            "api_calls": self.stats.api_calls,
            "host_seconds": self.stats.host_seconds,
        }
