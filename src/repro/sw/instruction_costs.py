"""Instruction-cost annotations for transaction-accurate processing elements.

The :class:`~repro.sw.task_processor.TaskProcessor` executes the workload's
computation natively (in Python) and charges simulated cycles according to a
:class:`CostModel`, in the spirit of annotation-based co-simulation: the
memory traffic is cycle-accurate on the interconnect, the local computation
is advanced in bulk.  The default numbers approximate a simple in-order
ARM7-class integer pipeline, which is what the paper's SimIt-ARM models.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Cycle cost of abstract operations executed locally on a PE."""

    #: Simple ALU operation (add, sub, logical, compare).
    alu: int = 1
    #: Integer multiply / multiply-accumulate.
    mul: int = 2
    #: Integer division (iterative).
    div: int = 20
    #: Local (scratchpad) load or store.
    local_access: int = 1
    #: Taken branch / call overhead.
    branch: int = 2

    def ops(self, alu: int = 0, mul: int = 0, div: int = 0, local: int = 0,
            branch: int = 0) -> int:
        """Total cycles of a mix of abstract operations."""
        return (alu * self.alu + mul * self.mul + div * self.div
                + local * self.local_access + branch * self.branch)


#: Default cost model used when a platform does not override it.
ARM7_LIKE = CostModel()

#: A faster superscalar-ish model used in sweeps and ablations.
FAST_CORE = CostModel(alu=1, mul=1, div=8, local_access=1, branch=1)


def estimate_loop_cycles(iterations: int, body_alu: int = 1, body_mul: int = 0,
                         body_local: int = 2,
                         model: CostModel = ARM7_LIKE) -> int:
    """Cycle estimate for a counted loop with the given per-iteration mix.

    Convenience used by the workloads to annotate their inner loops without
    scattering arithmetic through the task code.
    """
    if iterations <= 0:
        return 0
    per_iteration = model.ops(alu=body_alu, mul=body_mul, local=body_local, branch=1)
    return iterations * per_iteration
