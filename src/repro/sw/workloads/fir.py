"""FIR filter workload.

A classic streaming DSP kernel: each processing element filters its own
block of samples with a small FIR, keeping input, coefficients and output in
dynamically allocated shared memory.  The workload exercises ALLOC, array
transfers in both directions, scalar accesses for the filter state and FREE,
with a computation phase annotated per output sample.
"""

from __future__ import annotations

from typing import Generator, List, Sequence

from ...memory.protocol import DataType
from ..instruction_costs import estimate_loop_cycles
from ..task import TaskContext


def fir_reference(samples: Sequence[int], taps: Sequence[int]) -> List[int]:
    """Pure-Python reference used to check the simulated result."""
    output = []
    for index in range(len(samples)):
        accumulator = 0
        for tap_index, tap in enumerate(taps):
            if index - tap_index >= 0:
                accumulator += tap * samples[index - tap_index]
        output.append(accumulator & 0xFFFFFFFF)
    return output


def make_fir_task(samples: Sequence[int], taps: Sequence[int], memory_index: int = 0):
    """Build a task that filters ``samples`` with ``taps`` on one PE.

    The task returns the output vector read back from shared memory, so the
    caller can compare it against :func:`fir_reference`.
    """
    samples = [s & 0xFFFFFFFF for s in samples]
    taps = list(taps)

    def task(ctx: TaskContext) -> Generator[object, None, List[int]]:
        smem = ctx.smem(memory_index)
        input_vptr = yield from smem.alloc(len(samples), DataType.UINT32)
        coeff_vptr = yield from smem.alloc(len(taps), DataType.UINT32)
        output_vptr = yield from smem.alloc(len(samples), DataType.UINT32)
        yield from smem.write_array(input_vptr, samples)
        yield from smem.write_array(coeff_vptr, [t & 0xFFFFFFFF for t in taps])

        # Fetch the whole input and the coefficients into local storage
        # (the usual DMA-in / compute / DMA-out structure of DSP firmware).
        local_input = yield from smem.read_array(input_vptr, len(samples))
        local_taps = yield from smem.read_array(coeff_vptr, len(taps))
        local_taps = [t if t < 0x80000000 else t - (1 << 32) for t in local_taps]

        output: List[int] = []
        for index in range(len(local_input)):
            accumulator = 0
            for tap_index, tap in enumerate(local_taps):
                if index - tap_index >= 0:
                    accumulator += tap * local_input[index - tap_index]
            output.append(accumulator & 0xFFFFFFFF)
        yield from ctx.compute(
            estimate_loop_cycles(len(local_input) * len(local_taps),
                                 body_alu=1, body_mul=1, body_local=2,
                                 model=ctx.cost_model)
        )

        yield from smem.write_array(output_vptr, output)
        result = yield from smem.read_array(output_vptr, len(samples))
        yield from smem.free(input_vptr)
        yield from smem.free(coeff_vptr)
        yield from smem.free(output_vptr)
        ctx.note(f"fir: filtered {len(samples)} samples with {len(taps)} taps")
        return result

    return task
