"""Synthetic and DSP workloads for the co-simulation platform.

Each workload module provides ``make_*_task`` factories producing task
generators (run on :class:`~repro.sw.task_processor.TaskProcessor`) plus a
pure-Python reference implementation used by the tests to check that the
simulated execution computes the right answer.
"""

from .fir import fir_reference, make_fir_task
from .matmul import (
    flatten,
    make_matmul_producer_task,
    make_matmul_worker_task,
    matmul_reference,
)
from .dma import make_memcpy_task
from .producer_consumer import (
    CTRL_DONE,
    CTRL_HEAD,
    CTRL_TAIL,
    CTRL_WORDS,
    make_consumer_task,
    make_producer_task,
)
from .producer_consumer_irq import (
    make_irq_consumer_task,
    make_irq_producer_task,
)
from .stencil import coprime_stride, make_stencil_task, stencil_reference
from .stress import (
    make_dma_stress_task,
    make_doorbell_consumer_task,
    make_doorbell_producer_task,
    make_locked_consumer_task,
    make_locked_producer_task,
)

__all__ = [
    "CTRL_DONE",
    "CTRL_HEAD",
    "CTRL_TAIL",
    "CTRL_WORDS",
    "coprime_stride",
    "fir_reference",
    "flatten",
    "make_consumer_task",
    "make_fir_task",
    "make_dma_stress_task",
    "make_doorbell_consumer_task",
    "make_doorbell_producer_task",
    "make_irq_consumer_task",
    "make_irq_producer_task",
    "make_locked_consumer_task",
    "make_locked_producer_task",
    "make_matmul_producer_task",
    "make_matmul_worker_task",
    "make_memcpy_task",
    "make_producer_task",
    "make_stencil_task",
    "matmul_reference",
    "stencil_reference",
]
