"""Interrupt-driven producer/consumer FIFO (doorbells instead of polling).

Same bounded FIFO protocol as
:mod:`repro.sw.workloads.producer_consumer`, but the two sides never spin
on the control block: each pair owns two interrupt lines — a
*data-available* doorbell the producer rings after publishing a new tail
(and after setting the done flag), and a *space-available* doorbell the
consumer rings after advancing the head.  Doorbells are software raises:
one bus write to the interrupt controller's PENDING register
(:meth:`~repro.sw.task.TaskContext.raise_irq`), which latches until the
peer acknowledges.  The latch is what makes the protocol race-free — a
doorbell rung while the peer is still checking indices is delivered on
its next ``wait_irq`` instead of being lost — and wakeups ride each PE's
persistent controller event, so blocking costs no allocation.
"""

from __future__ import annotations

from typing import Generator, List

from ...memory.protocol import DataType
from ..task import TaskContext
from .producer_consumer import CTRL_DONE, CTRL_HEAD, CTRL_TAIL, CTRL_WORDS


def make_irq_producer_task(items: List[int], fifo_depth: int, shared: dict,
                           *, data_line: int, space_line: int,
                           memory_index: int = 0):
    """Producer: pushes every item, ringing the data doorbell after each."""
    items = [value & 0xFFFFFFFF for value in items]

    def task(ctx: TaskContext) -> Generator[object, None, int]:
        ctx.enable_irq(space_line)
        smem = ctx.smem(memory_index)
        ctrl_vptr = yield from smem.alloc(CTRL_WORDS, DataType.UINT32)
        data_vptr = yield from smem.alloc(fifo_depth, DataType.UINT32)
        shared.update(ctrl_vptr=ctrl_vptr, data_vptr=data_vptr,
                      depth=fifo_depth, ready=True)
        pushed = 0
        for value in items:
            while True:
                head = yield from smem.read(ctrl_vptr, offset=CTRL_HEAD)
                tail = yield from smem.read(ctrl_vptr, offset=CTRL_TAIL)
                if tail - head < fifo_depth:
                    break
                # Full: sleep until the consumer rings space-available.
                yield from ctx.wait_irq(space_line)
            yield from smem.write(data_vptr, value, offset=tail % fifo_depth)
            while not (yield from smem.try_reserve(ctrl_vptr)):
                yield ctx.poll_interval_cycles * ctx.clock_period
            yield from smem.write(ctrl_vptr, tail + 1, offset=CTRL_TAIL)
            yield from smem.release(ctrl_vptr)
            yield from ctx.raise_irq(data_line)
            pushed += 1
            yield from ctx.compute_ops(alu=4, local=2)
        while not (yield from smem.try_reserve(ctrl_vptr)):
            yield ctx.poll_interval_cycles * ctx.clock_period
        yield from smem.write(ctrl_vptr, 1, offset=CTRL_DONE)
        yield from smem.release(ctrl_vptr)
        # Final ring so a consumer blocked on an empty FIFO sees the flag.
        yield from ctx.raise_irq(data_line)
        ctx.note(f"producer: pushed {pushed} items via doorbell {data_line}")
        return pushed

    return task


def make_irq_consumer_task(shared: dict, *, data_line: int, space_line: int,
                           memory_index: int = 0):
    """Consumer: pops until done, ringing space-available after each pop."""

    def task(ctx: TaskContext) -> Generator[object, None, List[int]]:
        # Enabling before any yield guarantees no producer doorbell is
        # raised while the line is still masked (raises latch anyway, but
        # the enable also makes the very first wait legal).
        ctx.enable_irq(data_line)
        smem = ctx.smem(memory_index)
        while not shared.get("ready"):
            yield from ctx.wait_irq(data_line)
        ctrl_vptr = shared["ctrl_vptr"]
        data_vptr = shared["data_vptr"]
        depth = shared["depth"]
        received: List[int] = []
        while True:
            head = yield from smem.read(ctrl_vptr, offset=CTRL_HEAD)
            tail = yield from smem.read(ctrl_vptr, offset=CTRL_TAIL)
            if head == tail:
                done = yield from smem.read(ctrl_vptr, offset=CTRL_DONE)
                if done:
                    break
                yield from ctx.wait_irq(data_line)
                continue
            value = yield from smem.read(data_vptr, offset=head % depth)
            received.append(value)
            while not (yield from smem.try_reserve(ctrl_vptr)):
                yield ctx.poll_interval_cycles * ctx.clock_period
            yield from smem.write(ctrl_vptr, head + 1, offset=CTRL_HEAD)
            yield from smem.release(ctrl_vptr)
            yield from ctx.raise_irq(space_line)
            yield from ctx.compute_ops(alu=6, local=2)
        yield from smem.free(data_vptr)
        yield from smem.free(ctrl_vptr)
        ctx.note(f"consumer: received {len(received)} items via IRQ")
        return received

    return task
