"""Producer/consumer workload over a shared-memory FIFO.

Two processing elements communicate through a bounded FIFO whose storage,
head/tail indices and synchronisation flags all live in a dynamic shared
memory.  The reservation bit (the paper's coherence semaphore) guards the
index updates.  This workload exercises fine-grained scalar traffic and the
RESERVE/RELEASE opcodes under contention.
"""

from __future__ import annotations

from typing import Generator, List

from ...memory.protocol import DataType
from ..task import TaskContext

#: Layout of the FIFO control block (element offsets in a UINT32 allocation).
CTRL_HEAD = 0       # next slot the consumer reads
CTRL_TAIL = 1       # next slot the producer writes
CTRL_DONE = 2       # producer sets to 1 when it has pushed everything
CTRL_WORDS = 4      # control block size (one spare word)


def make_producer_task(items: List[int], fifo_depth: int, shared: dict,
                       memory_index: int = 0):
    """Producer: allocates the FIFO, pushes every item, then signals done."""
    items = [value & 0xFFFFFFFF for value in items]

    def task(ctx: TaskContext) -> Generator[object, None, int]:
        smem = ctx.smem(memory_index)
        ctrl_vptr = yield from smem.alloc(CTRL_WORDS, DataType.UINT32)
        data_vptr = yield from smem.alloc(fifo_depth, DataType.UINT32)
        shared.update(ctrl_vptr=ctrl_vptr, data_vptr=data_vptr,
                      depth=fifo_depth, ready=True)
        pushed = 0
        for value in items:
            # Wait for a free slot.
            while True:
                head = yield from smem.read(ctrl_vptr, offset=CTRL_HEAD)
                tail = yield from smem.read(ctrl_vptr, offset=CTRL_TAIL)
                if tail - head < fifo_depth:
                    break
                yield ctx.poll_interval_cycles * ctx.clock_period
            yield from smem.write(data_vptr, value, offset=tail % fifo_depth)
            # Publish the new tail under the reservation bit.
            while not (yield from smem.try_reserve(ctrl_vptr)):
                yield ctx.poll_interval_cycles * ctx.clock_period
            yield from smem.write(ctrl_vptr, tail + 1, offset=CTRL_TAIL)
            yield from smem.release(ctrl_vptr)
            pushed += 1
            yield from ctx.compute_ops(alu=4, local=2)
        # The done flag lives in the reservation-guarded control block: an
        # unguarded write NACKs when it lands inside the consumer's
        # reserve/release critical section (a race the mesh interconnect's
        # longer round trips expose reliably).
        while not (yield from smem.try_reserve(ctrl_vptr)):
            yield ctx.poll_interval_cycles * ctx.clock_period
        yield from smem.write(ctrl_vptr, 1, offset=CTRL_DONE)
        yield from smem.release(ctrl_vptr)
        ctx.note(f"producer: pushed {pushed} items")
        return pushed

    return task


def make_consumer_task(shared: dict, memory_index: int = 0):
    """Consumer: pops until the producer is done and the FIFO drains."""

    def task(ctx: TaskContext) -> Generator[object, None, List[int]]:
        smem = ctx.smem(memory_index)
        while not shared.get("ready"):
            yield 64 * ctx.clock_period
        ctrl_vptr = shared["ctrl_vptr"]
        data_vptr = shared["data_vptr"]
        depth = shared["depth"]
        received: List[int] = []
        while True:
            head = yield from smem.read(ctrl_vptr, offset=CTRL_HEAD)
            tail = yield from smem.read(ctrl_vptr, offset=CTRL_TAIL)
            if head == tail:
                done = yield from smem.read(ctrl_vptr, offset=CTRL_DONE)
                if done:
                    break
                yield ctx.poll_interval_cycles * ctx.clock_period
                continue
            value = yield from smem.read(data_vptr, offset=head % depth)
            received.append(value)
            while not (yield from smem.try_reserve(ctrl_vptr)):
                yield ctx.poll_interval_cycles * ctx.clock_period
            yield from smem.write(ctrl_vptr, head + 1, offset=CTRL_HEAD)
            yield from smem.release(ctrl_vptr)
            yield from ctx.compute_ops(alu=6, local=2)
        # The consumer owns the tear-down of the shared structures.
        yield from smem.free(data_vptr)
        yield from smem.free(ctrl_vptr)
        ctx.note(f"consumer: received {len(received)} items")
        return received

    return task
