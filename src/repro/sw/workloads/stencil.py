"""1-D stencil workload with tunable memory locality.

Each processing element smooths its own buffer with a 3-point stencil
(``out[i] = (left + 2*mid + right) / 4``, edges clamped), all buffers living
in dynamic shared memory and every element moved with *scalar* API reads
and writes — the traffic pattern the per-PE L1 caches are built for.

The ``stride`` parameter permutes the traversal order (element ``k`` of the
sweep processes index ``k * stride mod size``, with ``stride`` coprime to
``size`` so every index is visited exactly once).  The computed result is
identical for every stride; only the *locality* changes: ``stride=1`` walks
lines sequentially (cache friendly), large strides jump across lines on
every access (cache hostile).  That makes the workload a pure
cache-sensitivity probe: same answer, same operation count, different hit
rate.
"""

from __future__ import annotations

import math
from typing import Generator, List, Sequence

from ...memory.protocol import DataType
from ..task import TaskContext

MASK = 0xFFFFFFFF


def coprime_stride(stride: int, size: int) -> int:
    """The smallest stride >= ``stride`` coprime to ``size`` (so the strided
    traversal is a permutation)."""
    if size <= 1:
        return 1
    stride = max(1, stride)
    while math.gcd(stride, size) != 1:
        stride += 1
    return stride


def stencil_reference(values: Sequence[int], iterations: int = 1) -> List[int]:
    """Pure-Python reference of the clamped 3-point stencil."""
    current = [value & MASK for value in values]
    size = len(current)
    for _ in range(iterations):
        previous = current
        current = []
        for index in range(size):
            left = previous[max(0, index - 1)]
            right = previous[min(size - 1, index + 1)]
            current.append(((left + 2 * previous[index] + right) >> 2) & MASK)
    return current


def make_stencil_task(values: Sequence[int], iterations: int = 1,
                      stride: int = 1, memory_index: int = 0):
    """Task running ``iterations`` stencil sweeps over ``values``.

    Returns the smoothed buffer (read back from shared memory with one
    array transfer, so the final answer always crosses the memory system).
    """
    values = [value & MASK for value in values]
    size = len(values)
    stride = coprime_stride(stride, size)

    def task(ctx: TaskContext) -> Generator[object, None, List[int]]:
        smem = ctx.smem(memory_index)
        # ctx.span annotations mark the phases on the trace timeline;
        # no-ops without observability.
        with ctx.span("setup"):
            src_vptr = yield from smem.alloc(size, DataType.UINT32)
            dst_vptr = yield from smem.alloc(size, DataType.UINT32)
            yield from smem.write_array(src_vptr, values)
        source, destination = src_vptr, dst_vptr
        for sweep in range(iterations):
            with ctx.span(f"sweep{sweep}"):
                for step in range(size):
                    index = (step * stride) % size
                    left = yield from smem.read(source,
                                                offset=max(0, index - 1))
                    mid = yield from smem.read(source, offset=index)
                    right = yield from smem.read(source,
                                                 offset=min(size - 1,
                                                            index + 1))
                    value = ((left + 2 * mid + right) >> 2) & MASK
                    yield from smem.write(destination, value, offset=index)
                    yield from ctx.compute_ops(alu=4, local=3)
            source, destination = destination, source
        with ctx.span("collect"):
            result = yield from smem.read_array(source, size)
            yield from smem.free(dst_vptr)
            yield from smem.free(src_vptr)
        ctx.note(f"stencil: {iterations} sweep(s) over {size} elements, "
                 f"stride {stride}")
        return result

    return task
