"""Sanitizer stress workloads: synchronization idioms, clean and mutated.

Three handoff patterns, each shipped in a *clean* form (zero sanitizer
findings on every topology) and with seeded single-fault *mutations* that
the :mod:`repro.check` sanitizers must catch:

* **locked handoff** — producer fills a buffer and publishes a flag inside
  a reserve/release critical section; consumer polls ``try_reserve``.
  Mutation ``"drop_release"`` removes the producer's release: the
  reservation leaks (reported as a lock leak at end of simulation) and
  the consumer's bounded poll gives up empty-handed.
* **IRQ doorbell handoff** — producer fills a buffer and rings a software
  doorbell; consumer blocks in ``wait_irq``.  Mutation
  ``"drop_doorbell"`` removes the raise: the consumer falls back to a
  fixed timed delay and reads anyway — a deterministic happens-before
  data race.
* **DMA copy** — the PE programs a DMA engine and waits for the
  completion interrupt before reading the destination.  Mutation
  ``"drop_wait"`` skips the wait: the PE's read-back races the engine's
  in-flight writes.

The mutations model the real bug each sanitizer exists for, so they
double as the repo's planted-bug corpus for negative tests.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from ...dev.dma import DmaDriver
from ...memory.protocol import DataType
from ..task import TaskContext

#: Locked-handoff control block layout (UINT32 elements).
HANDOFF_FLAG = 0     # 1 once the payload is published
HANDOFF_WORDS = 2    # control block size (one spare word)

#: How many try_reserve attempts the locked-handoff consumer makes before
#: giving up (bounds the simulation when the producer leaks the lock).
MAX_POLL_ATTEMPTS = 400

#: Cycles the mutated IRQ consumer sleeps instead of waiting for the
#: doorbell (long enough that the producer's writes are in flight or done,
#: which is exactly what makes the unsynchronized read a race).
BLIND_WAIT_CYCLES = 64

_MUTATIONS = {
    "locked": (None, "drop_release"),
    "irq": (None, "drop_doorbell"),
    "dma": (None, "drop_wait"),
}


def check_mutation(family: str, mutate: Optional[str]) -> Optional[str]:
    """Validate ``mutate`` for a stress ``family``; returns it unchanged."""
    allowed = _MUTATIONS[family]
    if mutate not in allowed:
        raise ValueError(
            f"unknown {family} stress mutation {mutate!r}; "
            f"use one of {allowed}")
    return mutate


# -- locked handoff ---------------------------------------------------------------
def make_locked_producer_task(payload: List[int], shared: dict,
                              memory_index: int = 0,
                              mutate: Optional[str] = None):
    """Producer: publish ``payload`` under the reservation bit."""
    check_mutation("locked", mutate)
    payload = [value & 0xFFFFFFFF for value in payload]

    def task(ctx: TaskContext) -> Generator[object, None, int]:
        smem = ctx.smem(memory_index)
        ctrl_vptr = yield from smem.alloc(HANDOFF_WORDS, DataType.UINT32)
        data_vptr = yield from smem.alloc(len(payload), DataType.UINT32)
        while not (yield from smem.try_reserve(ctrl_vptr)):
            yield ctx.poll_interval_cycles * ctx.clock_period
        shared.update(ctrl_vptr=ctrl_vptr, data_vptr=data_vptr,
                      words=len(payload), ready=True)
        yield from smem.write_array(data_vptr, payload)
        yield from smem.write(ctrl_vptr, 1, offset=HANDOFF_FLAG)
        if mutate != "drop_release":
            yield from smem.release(ctrl_vptr)
        ctx.note(f"producer: published {len(payload)} words")
        return len(payload)

    return task


def make_locked_consumer_task(shared: dict, memory_index: int = 0):
    """Consumer: bounded ``try_reserve`` poll, then read the payload."""

    def task(ctx: TaskContext) -> Generator[object, None, List[int]]:
        smem = ctx.smem(memory_index)
        while not shared.get("ready"):
            yield 16 * ctx.clock_period
        ctrl_vptr = shared["ctrl_vptr"]
        data_vptr = shared["data_vptr"]
        words = shared["words"]
        for _ in range(MAX_POLL_ATTEMPTS):
            if (yield from smem.try_reserve(ctrl_vptr)):
                flag = yield from smem.read(ctrl_vptr, offset=HANDOFF_FLAG)
                if flag:
                    received = yield from smem.read_array(data_vptr, words)
                    yield from smem.release(ctrl_vptr)
                    ctx.note(f"consumer: received {len(received)} words")
                    return received
                yield from smem.release(ctrl_vptr)
            yield ctx.poll_interval_cycles * ctx.clock_period
        ctx.note("consumer: gave up (lock never became available)")
        return []

    return task


# -- IRQ doorbell handoff ---------------------------------------------------------
def make_doorbell_producer_task(payload: List[int], shared: dict, line: int,
                                memory_index: int = 0,
                                mutate: Optional[str] = None):
    """Producer: publish ``payload``, then ring doorbell ``line``."""
    check_mutation("irq", mutate)
    payload = [value & 0xFFFFFFFF for value in payload]

    def task(ctx: TaskContext) -> Generator[object, None, int]:
        smem = ctx.smem(memory_index)
        data_vptr = yield from smem.alloc(len(payload), DataType.UINT32)
        shared.update(data_vptr=data_vptr, words=len(payload), ready=True)
        yield from smem.write_array(data_vptr, payload)
        if mutate != "drop_doorbell":
            yield from ctx.raise_irq(line)
        ctx.note(f"producer: published {len(payload)} words on line {line}")
        return len(payload)

    return task


def make_doorbell_consumer_task(shared: dict, line: int,
                                memory_index: int = 0,
                                mutate: Optional[str] = None):
    """Consumer: wait for the doorbell IRQ, then read the payload.

    Under ``"drop_doorbell"`` the producer never rings, so the consumer
    sleeps a fixed delay and reads blind — the planted data race.
    """
    check_mutation("irq", mutate)

    def task(ctx: TaskContext) -> Generator[object, None, List[int]]:
        smem = ctx.smem(memory_index)
        ctx.enable_irq(line)
        while not shared.get("ready"):
            yield 16 * ctx.clock_period
        if mutate != "drop_doorbell":
            yield from ctx.wait_irq(line)
        else:
            yield BLIND_WAIT_CYCLES * ctx.clock_period
        received = yield from smem.read_array(shared["data_vptr"],
                                              shared["words"])
        ctx.note(f"consumer: received {len(received)} words")
        return received

    return task


# -- DMA copy ---------------------------------------------------------------------
def make_dma_stress_task(data: List[int], *, src_memory: int, dst_memory: int,
                         engine_index: int = 0,
                         mutate: Optional[str] = None):
    """One PE's DMA copy with completion-wait (or the mutated blind read)."""
    check_mutation("dma", mutate)
    data = [value & 0xFFFFFFFF for value in data]

    def task(ctx: TaskContext) -> Generator[object, None, List[int]]:
        src = ctx.smem(src_memory)
        dst = ctx.smem(dst_memory)
        src_vptr = yield from src.alloc(len(data), DataType.UINT32)
        dst_vptr = yield from dst.alloc(len(data), DataType.UINT32)
        yield from src.write_array(src_vptr, data)
        dma = DmaDriver(ctx, engine_index)
        yield from dma.flush(src, src_vptr)
        yield from dma.start(src_memory, src_vptr, dst_memory, dst_vptr,
                             len(data))
        if mutate != "drop_wait":
            ok = yield from dma.wait()
            if not ok:
                ctx.note("dma transfer failed")
                return []
        else:
            # A token delay so the engine is mid-transfer, not unstarted.
            yield 4 * ctx.clock_period
        result = yield from dst.read_array(dst_vptr, len(data))
        return result

    return task
