"""Blocked matrix-multiply workload.

Each processing element multiplies a band of rows of ``A`` by ``B`` and
writes its band of ``C`` back, with all three matrices living in dynamic
shared memory.  Used by the scaling experiments: the amount of interconnect
traffic per PE is easy to reason about and the computation is embarrassingly
parallel across row bands.
"""

from __future__ import annotations

from typing import Generator, List, Sequence

from ...memory.protocol import DataType
from ..instruction_costs import estimate_loop_cycles
from ..task import TaskContext


def matmul_reference(a: Sequence[Sequence[int]], b: Sequence[Sequence[int]]
                     ) -> List[List[int]]:
    """Pure-Python reference product (word-wrapped to 32 bits)."""
    rows, inner, cols = len(a), len(b), len(b[0])
    result = [[0] * cols for _ in range(rows)]
    for i in range(rows):
        for j in range(cols):
            acc = 0
            for k in range(inner):
                acc += a[i][k] * b[k][j]
            result[i][j] = acc & 0xFFFFFFFF
    return result


def flatten(matrix: Sequence[Sequence[int]]) -> List[int]:
    """Row-major flattening helper shared with the benches."""
    return [value & 0xFFFFFFFF for row in matrix for value in row]


def make_matmul_producer_task(a: Sequence[Sequence[int]], b: Sequence[Sequence[int]],
                              shared: dict, memory_index: int = 0):
    """Task that allocates and publishes A, B and C in shared memory.

    ``shared`` is a plain dict the producer fills with the allocation
    virtual pointers (`a_vptr`, `b_vptr`, `c_vptr`, `ready`), which the
    worker tasks read.  It models a lightweight boot-time coordination step
    that in a real system would live in a mailbox.
    """
    rows, inner = len(a), len(b)
    cols = len(b[0])

    def task(ctx: TaskContext) -> Generator[object, None, dict]:
        smem = ctx.smem(memory_index)
        a_vptr = yield from smem.alloc(rows * inner, DataType.UINT32)
        b_vptr = yield from smem.alloc(inner * cols, DataType.UINT32)
        c_vptr = yield from smem.alloc(rows * cols, DataType.UINT32)
        yield from smem.write_array(a_vptr, flatten(a))
        yield from smem.write_array(b_vptr, flatten(b))
        shared.update(
            a_vptr=a_vptr, b_vptr=b_vptr, c_vptr=c_vptr,
            rows=rows, inner=inner, cols=cols, ready=True,
        )
        ctx.note("matmul: matrices published")
        return dict(shared)

    return task


def make_matmul_worker_task(shared: dict, row_start: int, row_end: int,
                            memory_index: int = 0):
    """Task computing rows ``[row_start, row_end)`` of the product."""

    def task(ctx: TaskContext) -> Generator[object, None, List[List[int]]]:
        smem = ctx.smem(memory_index)
        # Wait for the producer to publish the matrices (host-side handshake
        # is modelled as polling a few cycles; the dict is filled before the
        # workers start issuing traffic in platform-built scenarios).
        while not shared.get("ready"):
            yield 64 * ctx.clock_period
        rows, inner, cols = shared["rows"], shared["inner"], shared["cols"]
        a_vptr, b_vptr, c_vptr = shared["a_vptr"], shared["b_vptr"], shared["c_vptr"]

        b_flat = yield from smem.read_array(b_vptr, inner * cols)
        band: List[List[int]] = []
        for row in range(row_start, min(row_end, rows)):
            a_row = yield from smem.read_array(a_vptr, inner, offset=row * inner)
            out_row = []
            for col in range(cols):
                acc = 0
                for k in range(inner):
                    acc += a_row[k] * b_flat[k * cols + col]
                out_row.append(acc & 0xFFFFFFFF)
            yield from ctx.compute(
                estimate_loop_cycles(cols * inner, body_alu=1, body_mul=1,
                                     body_local=2, model=ctx.cost_model)
            )
            yield from smem.write_array(c_vptr, out_row, offset=row * cols)
            band.append(out_row)
        ctx.note(f"matmul: rows [{row_start}, {row_end}) done")
        return band

    return task
