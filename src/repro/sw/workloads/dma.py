"""Memcpy offload workload: PE-driven copies vs. DMA-engine offload.

Each PE moves one buffer of speech-like samples between two shared
memories and then runs a block of local compute.  In ``pe`` mode the core
does the copy itself (read_array + write_array through its own master
port); in ``dma`` mode it programs a DMA engine, overlaps the local
compute with the transfer, and then blocks on the completion interrupt.
Both modes end with a read-back of the destination buffer, so the
returned data is bit-comparable across modes, topologies and cache
settings — and the ``e8`` bench uses the pair to locate the buffer size
where offloading starts to pay.
"""

from __future__ import annotations

from typing import Generator, List

from ...dev.dma import DmaDriver
from ...memory.protocol import DataType
from ..task import TaskContext


def make_memcpy_task(data: List[int], *, mode: str, src_memory: int,
                     dst_memory: int, engine_index: int = 0,
                     compute_cycles: int = 0):
    """One PE's memcpy + compute task.

    ``mode="pe"``: copy with the core's own burst reads/writes, then
    compute.  ``mode="dma"``: program DMA engine ``engine_index``, run the
    compute while the transfer is in flight, then wait for the completion
    IRQ.  Returns the destination buffer read back over the bus.
    """
    if mode not in ("pe", "dma"):
        raise ValueError(f"mode must be 'pe' or 'dma', got {mode!r}")
    data = [value & 0xFFFFFFFF for value in data]

    def task(ctx: TaskContext) -> Generator[object, None, List[int]]:
        src = ctx.smem(src_memory)
        dst = ctx.smem(dst_memory)
        src_vptr = yield from src.alloc(len(data), DataType.UINT32)
        dst_vptr = yield from dst.alloc(len(data), DataType.UINT32)
        yield from src.write_array(src_vptr, data)
        if mode == "pe":
            staged = yield from src.read_array(src_vptr, len(data))
            yield from dst.write_array(dst_vptr, staged)
            if compute_cycles:
                yield from ctx.compute(compute_cycles)
        else:
            dma = DmaDriver(ctx, engine_index)
            # Make the engine's uncached reads see the freshly written
            # source (an L1 write-back cache may still hold those lines).
            yield from dma.flush(src, src_vptr)
            yield from dma.start(src_memory, src_vptr, dst_memory, dst_vptr,
                                 len(data))
            if compute_cycles:
                yield from ctx.compute(compute_cycles)
            ok = yield from dma.wait()
            if not ok:
                ctx.note("dma transfer failed")
                return []
        result = yield from dst.read_array(dst_vptr, len(data))
        yield from dst.free(dst_vptr)
        yield from src.free(src_vptr)
        return result

    return task
