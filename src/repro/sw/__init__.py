"""Software layer: task programs, processing elements and workloads.

This package plays the role of the paper's "software layer": the programs
that run on the simulated processors and use the high-level shared-memory
API.  The :class:`TaskProcessor` is the transaction-accurate processing
element used by the large workloads; the ARM-like ISS in :mod:`repro.iss`
is the instruction-accurate alternative.
"""

from .instruction_costs import ARM7_LIKE, FAST_CORE, CostModel, estimate_loop_cycles
from .task import TaskContext, TaskError, TaskFunction
from .task_processor import TaskProcessor, TaskProcessorStats
from .registry import (
    Workload,
    WorkloadError,
    WorkloadRegistry,
    as_workload,
    workload,
)
from . import catalog as _catalog  # noqa: F401  (registers built-in workloads)

__all__ = [
    "ARM7_LIKE",
    "CostModel",
    "FAST_CORE",
    "TaskContext",
    "TaskError",
    "TaskFunction",
    "TaskProcessor",
    "TaskProcessorStats",
    "Workload",
    "WorkloadError",
    "WorkloadRegistry",
    "as_workload",
    "estimate_loop_cycles",
    "workload",
]
