"""Built-in workload registrations.

Exposes every workload family shipped with the library (FIR, blocked
matmul, producer/consumer FIFO, the GSM 06.10 encoder and an
allocation-churn stressor) as named, parameterized factories in the
:data:`~repro.sw.registry.workload` registry, so scenarios and sweeps can
reference them declaratively::

    Scenario(name="gsm", config=config, workload="gsm_encode",
             params={"frames": 2, "seed": 42})

Every factory derives its input data deterministically from ``seed`` and
the PE index, and attaches checks comparing the simulated results against
the pure-Python reference implementations.
"""

from __future__ import annotations

from typing import List

from ..memory.protocol import DataType
from .gsm import (
    FRAME_SAMPLES,
    PARAMETERS_PER_FRAME,
    PLACEMENT_DEDICATED,
    PLACEMENT_STRIPED,
    build_gsm_tasks,
    check_platform_results,
    generate_speech_like,
    make_gsm_channels,
    reference_encode,
)
from .registry import Workload, WorkloadError, workload
from .workloads import (
    fir_reference,
    make_consumer_task,
    make_dma_stress_task,
    make_doorbell_consumer_task,
    make_doorbell_producer_task,
    make_fir_task,
    make_irq_consumer_task,
    make_irq_producer_task,
    make_locked_consumer_task,
    make_locked_producer_task,
    make_matmul_producer_task,
    make_matmul_worker_task,
    make_memcpy_task,
    make_producer_task,
    make_stencil_task,
    matmul_reference,
    stencil_reference,
)


def _expect_results(expected: dict, what: str):
    """A check asserting ``report.results`` matches ``expected`` per PE."""

    def check(report):
        for name, want in expected.items():
            if report.results.get(name) != want:
                return f"{name}: {what} differs from the reference"
        return True

    return check


@workload.register("fir")
def _fir(config, *, num_samples: int = 64, taps=(3, -1, 2, 7), seed: int = 0):
    """One FIR filter per PE, buffers striped over the shared memories."""
    taps = list(taps)
    blocks = [
        [((seed * 31 + pe * 17 + i * 29) % 1024) for i in range(num_samples)]
        for pe in range(config.num_pes)
    ]
    tasks = [
        make_fir_task(block, taps, memory_index=pe % config.num_memories)
        for pe, block in enumerate(blocks)
    ]
    expected = {f"pe{pe}": fir_reference(block, taps)
                for pe, block in enumerate(blocks)}
    return Workload(
        tasks=tasks,
        checks=[_expect_results(expected, "FIR output")],
        description=f"fir: {num_samples} samples x {len(taps)} taps per PE",
    )


@workload.register("matmul")
def _matmul(config, *, rows: int = 4, inner: int = 3, cols: int = 3,
            seed: int = 0):
    """PE0 publishes A and B; the remaining PEs each compute a row band."""
    if config.num_pes < 2:
        raise WorkloadError("matmul needs at least 2 PEs (producer + workers)")
    a = [[(seed + i * 7 + k * 3) % 97 for k in range(inner)] for i in range(rows)]
    b = [[(seed + k * 5 + j * 11) % 89 for j in range(cols)] for k in range(inner)]
    shared: dict = {}
    workers = config.num_pes - 1
    band = -(-rows // workers)  # ceil division
    tasks = [make_matmul_producer_task(a, b, shared)]
    expected_product = matmul_reference(a, b)
    expected = {}
    for worker in range(workers):
        start, end = worker * band, min((worker + 1) * band, rows)
        tasks.append(make_matmul_worker_task(shared, start, end))
        expected[f"pe{worker + 1}"] = expected_product[start:end]
    return Workload(
        tasks=tasks,
        checks=[_expect_results(expected, "matmul band")],
        description=f"matmul: {rows}x{inner} @ {inner}x{cols}, {workers} workers",
    )


@workload.register("producer_consumer")
def _producer_consumer(config, *, num_items: int = 24, fifo_depth: int = 4,
                       seed: int = 0):
    """Producer/consumer FIFO pairs: PE(2k) feeds PE(2k+1)."""
    if config.num_pes % 2:
        raise WorkloadError("producer_consumer needs an even number of PEs")
    tasks: List = []
    expected = {}
    for pair in range(config.num_pes // 2):
        items = [((seed + pair * 13 + i * 7) & 0xFFFFFFFF)
                 for i in range(num_items)]
        shared: dict = {}
        memory_index = pair % config.num_memories
        tasks.append(make_producer_task(items, fifo_depth, shared,
                                        memory_index=memory_index))
        tasks.append(make_consumer_task(shared, memory_index=memory_index))
        expected[f"pe{2 * pair + 1}"] = items
    return Workload(
        tasks=tasks,
        checks=[_expect_results(expected, "FIFO item stream")],
        description=(f"producer_consumer: {num_items} items, "
                     f"depth {fifo_depth}, {config.num_pes // 2} pair(s)"),
    )


@workload.register("producer_consumer_irq")
def _producer_consumer_irq(config, *, num_items: int = 24, fifo_depth: int = 4,
                           seed: int = 0):
    """Interrupt-driven FIFO pairs: doorbell IRQs replace index polling.

    Pair ``k`` owns line ``2k`` (data-available, producer rings) and line
    ``2k + 1`` (space-available, consumer rings).  Needs a platform with an
    interrupt controller exposing at least ``num_pes`` lines.
    """
    if config.num_pes % 2:
        raise WorkloadError("producer_consumer_irq needs an even number of PEs")
    layout = config.device_layout()
    if layout is None:
        raise WorkloadError(
            "producer_consumer_irq needs an interrupt controller — add "
            ".irq_controller() (or any device) to the platform builder"
        )
    if config.num_pes > layout.controller.config.lines:
        raise WorkloadError(
            f"producer_consumer_irq needs {config.num_pes} interrupt lines, "
            f"controller has {layout.controller.config.lines}"
        )
    tasks: List = []
    expected = {}
    for pair in range(config.num_pes // 2):
        items = [((seed + pair * 13 + i * 7) & 0xFFFFFFFF)
                 for i in range(num_items)]
        shared: dict = {}
        memory_index = pair % config.num_memories
        data_line, space_line = 2 * pair, 2 * pair + 1
        tasks.append(make_irq_producer_task(
            items, fifo_depth, shared, data_line=data_line,
            space_line=space_line, memory_index=memory_index))
        tasks.append(make_irq_consumer_task(
            shared, data_line=data_line, space_line=space_line,
            memory_index=memory_index))
        expected[f"pe{2 * pair + 1}"] = items
    return Workload(
        tasks=tasks,
        checks=[_expect_results(expected, "IRQ-driven FIFO item stream")],
        description=(f"producer_consumer_irq: {num_items} items, "
                     f"depth {fifo_depth}, {config.num_pes // 2} pair(s)"),
    )


@workload.register("dma_memcpy")
def _dma_memcpy(config, *, words: int = 256, mode: str = "dma",
                compute_cycles: int = 0, seed: int = 7):
    """Per-PE buffer copy between two memories, by core or by DMA engine.

    ``mode="pe"`` copies with the core's own burst transfers;
    ``mode="dma"`` offloads to a dedicated DMA engine per PE (the platform
    must configure ``num_pes`` engines) and overlaps ``compute_cycles`` of
    local work with the transfer.  Buffers hold GSM speech-like samples so
    the data stream matches the paper's codec traffic.
    """
    if mode not in ("pe", "dma"):
        raise WorkloadError(f"dma_memcpy mode must be 'pe' or 'dma', got {mode!r}")
    layout = config.device_layout()
    if mode == "dma":
        engines = 0 if layout is None else len(layout.dmas)
        if engines < config.num_pes:
            raise WorkloadError(
                f"dma_memcpy mode='dma' needs one DMA engine per PE "
                f"({config.num_pes} PEs, {engines} engine(s) configured)"
            )
    tasks: List = []
    expected = {}
    for pe in range(config.num_pes):
        samples = generate_speech_like(
            1 + (words - 1) // FRAME_SAMPLES, seed=seed + pe)
        data = [value & 0xFFFF for value in samples[:words]]
        src_memory = pe % config.num_memories
        dst_memory = (pe + 1) % config.num_memories
        tasks.append(make_memcpy_task(
            data, mode=mode, src_memory=src_memory, dst_memory=dst_memory,
            engine_index=pe, compute_cycles=compute_cycles))
        expected[f"pe{pe}"] = data
    return Workload(
        tasks=tasks,
        checks=[_expect_results(expected, "memcpy destination buffer")],
        description=(f"dma_memcpy[{mode}]: {words} words per PE, "
                     f"compute {compute_cycles} cycles"),
    )


@workload.register("gsm_encode")
def _gsm_encode(config, *, frames: int = 1, seed: int = 42,
                placement: str = None, channels=None):
    """The paper's workload: one GSM 06.10 encoder channel per PE.

    ``placement`` defaults to striped when the platform has several shared
    memories and dedicated otherwise, mirroring the two platforms of the
    paper's Section 4 experiment.
    """
    if channels is None:
        channels = make_gsm_channels(config.num_pes, frames, seed=seed)
    if placement is None:
        placement = (PLACEMENT_STRIPED if config.num_memories > 1
                     else PLACEMENT_DEDICATED)
    tasks = build_gsm_tasks(channels, placement=placement)
    reference = reference_encode(channels)

    def check(report):
        return (check_platform_results(report.results, reference)
                or "encoded GSM parameters differ from the reference encoder")

    return Workload(
        tasks=tasks,
        checks=[check],
        description=(f"gsm_encode: {len(channels)} channel(s) x "
                     f"{frames} frame(s), {placement} placement"),
    )


@workload.register("stencil")
def _stencil(config, *, size: int = 64, iterations: int = 1, stride: int = 1,
             seed: int = 0):
    """One 3-point stencil per PE, scalar traffic with tunable locality.

    ``stride`` permutes the traversal order without changing the result
    (see :mod:`repro.sw.workloads.stencil`): the cache-sensitivity bench
    sweeps it to move the same workload between cache-friendly and
    cache-hostile behaviour.
    """
    if size < 2:
        raise WorkloadError("stencil needs at least 2 elements per buffer")
    blocks = [
        [((seed * 37 + pe * 23 + i * 11) % 4096) for i in range(size)]
        for pe in range(config.num_pes)
    ]
    tasks = [
        make_stencil_task(block, iterations=iterations, stride=stride,
                          memory_index=pe % config.num_memories)
        for pe, block in enumerate(blocks)
    ]
    expected = {f"pe{pe}": stencil_reference(block, iterations)
                for pe, block in enumerate(blocks)}
    return Workload(
        tasks=tasks,
        checks=[_expect_results(expected, "stencil output")],
        description=(f"stencil: {size} elements x {iterations} sweep(s), "
                     f"stride {stride}"),
    )


@workload.register("alloc_churn")
def _alloc_churn(config, *, iterations: int = 40, block_words: int = 64,
                 gsm_frames: int = 2, seed: int = 9):
    """Allocation-heavy stressor: GSM-style frame buffers plus churn.

    Per PE: the GSM frame-buffer traffic pattern without the codec math
    (isolating the memory-model cost) followed by repeated
    allocate / scatter-write / copy / free churn.  Each PE returns the
    number of API calls it issued.
    """

    def make_task(pe: int):
        samples = generate_speech_like(gsm_frames, seed=seed + pe)
        memory_index = pe % config.num_memories

        def task(ctx):
            smem = ctx.smem(memory_index)
            for frame in range(gsm_frames):
                start = frame * FRAME_SAMPLES
                frame_samples = [v & 0xFFFF
                                 for v in samples[start:start + FRAME_SAMPLES]]
                input_vptr = yield from smem.alloc(FRAME_SAMPLES, DataType.INT16)
                output_vptr = yield from smem.alloc(PARAMETERS_PER_FRAME,
                                                    DataType.UINT16)
                yield from smem.write_array(input_vptr, frame_samples)
                fetched = yield from smem.read_array(input_vptr, FRAME_SAMPLES)
                yield from smem.write_array(output_vptr,
                                            fetched[:PARAMETERS_PER_FRAME])
                yield from smem.free(input_vptr)
                yield from smem.free(output_vptr)
            survivors: List[int] = []
            for iteration in range(iterations):
                vptr = yield from smem.alloc(block_words, DataType.UINT32)
                yield from smem.write(vptr, iteration,
                                      offset=iteration % block_words)
                if iteration % 3 == 2 and survivors:
                    victim = survivors.pop(0)
                    yield from smem.memcpy(vptr, victim, 8)
                    yield from smem.free(victim)
                survivors.append(vptr)
            for vptr in survivors:
                yield from smem.free(vptr)
            return smem.calls

        return task

    return Workload(
        tasks=[make_task(pe) for pe in range(config.num_pes)],
        description=(f"alloc_churn: {gsm_frames} frame(s) + {iterations} "
                     f"churn iterations per PE"),
    )


@workload.register("stress_locked_handoff")
def _stress_locked_handoff(config, *, words: int = 32, seed: int = 0,
                           mutate: str = None):
    """Reserve/release-guarded buffer handoff per PE pair (sanitizer stress).

    Clean runs are race- and leak-free on every topology; the seeded
    mutation ``mutate="drop_release"`` removes the producer's release,
    which the sanitizers report as a lock leak.
    """
    if config.num_pes % 2:
        raise WorkloadError("stress_locked_handoff needs an even PE count")
    tasks: List = []
    expected = {}
    for pair in range(config.num_pes // 2):
        payload = [((seed + pair * 29 + i * 3) & 0xFFFFFFFF)
                   for i in range(words)]
        shared: dict = {}
        memory_index = pair % config.num_memories
        tasks.append(make_locked_producer_task(
            payload, shared, memory_index=memory_index, mutate=mutate))
        tasks.append(make_locked_consumer_task(
            shared, memory_index=memory_index))
        expected[f"pe{2 * pair + 1}"] = payload
    checks = ([_expect_results(expected, "locked-handoff payload")]
              if mutate is None else [])
    return Workload(
        tasks=tasks,
        checks=checks,
        description=(f"stress_locked_handoff: {words} words, "
                     f"{config.num_pes // 2} pair(s), mutate={mutate}"),
    )


@workload.register("stress_irq_handoff")
def _stress_irq_handoff(config, *, words: int = 32, seed: int = 0,
                        mutate: str = None):
    """Doorbell-IRQ buffer handoff per PE pair (sanitizer stress).

    Needs an interrupt controller with one line per pair.  The seeded
    mutation ``mutate="drop_doorbell"`` removes the producer's raise; the
    consumer reads after a blind delay — a deterministic data race.
    """
    if config.num_pes % 2:
        raise WorkloadError("stress_irq_handoff needs an even PE count")
    layout = config.device_layout()
    if layout is None:
        raise WorkloadError(
            "stress_irq_handoff needs an interrupt controller — add "
            ".irq_controller() to the platform builder")
    pairs = config.num_pes // 2
    if pairs > layout.controller.config.lines:
        raise WorkloadError(
            f"stress_irq_handoff needs {pairs} interrupt lines, controller "
            f"has {layout.controller.config.lines}")
    tasks: List = []
    expected = {}
    for pair in range(pairs):
        payload = [((seed + pair * 31 + i * 5) & 0xFFFFFFFF)
                   for i in range(words)]
        shared: dict = {}
        memory_index = pair % config.num_memories
        tasks.append(make_doorbell_producer_task(
            payload, shared, line=pair, memory_index=memory_index,
            mutate=mutate))
        tasks.append(make_doorbell_consumer_task(
            shared, line=pair, memory_index=memory_index, mutate=mutate))
        if mutate is None:
            expected[f"pe{2 * pair + 1}"] = payload
    checks = ([_expect_results(expected, "IRQ-handoff payload")]
              if mutate is None else [])
    return Workload(
        tasks=tasks,
        checks=checks,
        description=(f"stress_irq_handoff: {words} words, {pairs} pair(s), "
                     f"mutate={mutate}"),
    )


@workload.register("stress_dma_copy")
def _stress_dma_copy(config, *, words: int = 64, seed: int = 3,
                     mutate: str = None):
    """Per-PE DMA copy with completion wait (sanitizer stress).

    Needs one DMA engine per PE.  The seeded mutation
    ``mutate="drop_wait"`` skips the completion interrupt: the PE's
    read-back races the engine's in-flight destination writes.
    """
    layout = config.device_layout()
    engines = 0 if layout is None else len(layout.dmas)
    if engines < config.num_pes:
        raise WorkloadError(
            f"stress_dma_copy needs one DMA engine per PE "
            f"({config.num_pes} PEs, {engines} engine(s) configured)")
    tasks: List = []
    expected = {}
    for pe in range(config.num_pes):
        data = [((seed + pe * 17 + i * 7) & 0xFFFFFFFF) for i in range(words)]
        src_memory = pe % config.num_memories
        dst_memory = (pe + 1) % config.num_memories
        tasks.append(make_dma_stress_task(
            data, src_memory=src_memory, dst_memory=dst_memory,
            engine_index=pe, mutate=mutate))
        if mutate is None:
            expected[f"pe{pe}"] = data
    checks = ([_expect_results(expected, "DMA-copied buffer")]
              if mutate is None else [])
    return Workload(
        tasks=tasks,
        checks=checks,
        description=(f"stress_dma_copy: {words} words per PE, "
                     f"mutate={mutate}"),
    )
