"""GSM 06.10 section 4.2.13-4.2.17 — regular pulse excitation (RPE) coding.

The 40-sample long-term residual of each sub-frame is weighted, decimated
onto one of four interleaved grids of 13 pulses, block-quantised with an
adaptive PCM scheme (6-bit block maximum + 3-bit pulses) and reconstructed
for the encoder's local feedback loop.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .arith import abs_s, add, asl, asr, mult, mult_r, saturate, sub
from .tables import RPE_FAC, RPE_H, RPE_NRFAC, RPE_PULSES, SUBFRAME_SAMPLES


def weighting_filter(e: Sequence[int]) -> List[int]:
    """FIR weighting of the 40-sample long-term residual (impulse response H)."""
    if len(e) != SUBFRAME_SAMPLES:
        raise ValueError("the weighting filter works on 40-sample sub-frames")
    # The reference implementation zero-pads the signal by 5 samples on both
    # sides and keeps the central 40 outputs.
    padded = [0] * 5 + list(e) + [0] * 5
    output: List[int] = []
    for k in range(SUBFRAME_SAMPLES):
        accumulator = 8192  # rounding constant (0.5 in the chosen format)
        for i in range(11):
            accumulator += RPE_H[i] * padded[k + 10 - i]
        accumulator = saturate_long_shift(accumulator)
        output.append(accumulator)
    return output


def saturate_long_shift(accumulator: int) -> int:
    """Scale the 32-bit weighted sum back to a 16-bit sample (>> 14, saturated)."""
    value = accumulator >> 14
    return saturate(value)


def grid_selection(x: Sequence[int]) -> Tuple[int, List[int]]:
    """Choose the interleaved grid with maximum energy.

    Returns ``(mc, xm)`` where ``mc`` is the 2-bit grid index and ``xm`` the
    13 selected samples.
    """
    best_grid = 0
    best_energy = -1
    for grid in range(4):
        energy = 0
        for pulse in range(RPE_PULSES):
            sample = asr(x[grid + 3 * pulse], 2)
            energy += sample * sample
        if energy > best_energy:
            best_energy = energy
            best_grid = grid
    xm = [x[best_grid + 3 * pulse] for pulse in range(RPE_PULSES)]
    return best_grid, xm


def quantize_xmax(xmax: int) -> Tuple[int, int, int]:
    """Quantise the block maximum to 6 bits.

    Returns ``(xmaxc, exponent, mantissa)``; exponent/mantissa are reused by
    the APCM quantisation of the pulses.
    """
    exponent = 0
    temp = asr(xmax, 9)
    while temp > 0 and exponent < 6:
        exponent += 1
        temp = asr(temp, 1)
    xmaxc = add(asr(xmax, exponent + 5), exponent << 3)
    xmaxc = max(0, min(63, xmaxc))
    exponent, mantissa = decode_xmaxc(xmaxc)
    return xmaxc, exponent, mantissa


def decode_xmaxc(xmaxc: int) -> Tuple[int, int]:
    """Split the coded block maximum into (exponent, mantissa) per the spec."""
    exponent = 0
    if xmaxc > 15:
        exponent = asr(xmaxc, 3) - 1
    mantissa = xmaxc - (exponent << 3)
    if mantissa == 0:
        exponent = -4
        mantissa = 7
    else:
        while mantissa <= 7:
            mantissa = (mantissa << 1) | 1
            exponent -= 1
        mantissa -= 8
    return exponent, mantissa


def apcm_quantize(xm: Sequence[int], exponent: int, mantissa: int) -> List[int]:
    """Quantise the 13 grid pulses to 3 bits each."""
    temp1 = 6 - exponent
    temp2 = RPE_NRFAC[mantissa]
    xmc: List[int] = []
    for sample in xm:
        value = asl(sample, temp1)
        value = mult(value, temp2)
        value = asr(value, 12)
        xmc.append(max(0, min(7, value + 4)))
    return xmc


def apcm_dequantize(xmc: Sequence[int], exponent: int, mantissa: int) -> List[int]:
    """Inverse APCM: reconstruct the 13 pulses."""
    temp1 = RPE_FAC[mantissa]
    temp2 = sub(6, exponent)
    temp3 = asl(1, sub(temp2, 1))
    xmp: List[int] = []
    for coded in xmc:
        value = (coded << 1) - 7          # back to the symmetric range
        value = asl(value, 12)
        value = mult_r(temp1, value)
        value = add(value, temp3)
        xmp.append(asr(value, temp2))
    return xmp


def grid_position(mc: int, xmp: Sequence[int]) -> List[int]:
    """Re-expand 13 pulses onto the 40-sample grid ``mc``."""
    ep = [0] * SUBFRAME_SAMPLES
    for pulse, value in enumerate(xmp):
        ep[mc + 3 * pulse] = value
    return ep


def rpe_encode(e: Sequence[int]) -> Tuple[int, int, List[int], List[int]]:
    """Full RPE encoding of one sub-frame residual.

    Returns ``(mc, xmaxc, xmc, ep)`` where ``ep`` is the locally
    reconstructed excitation used for the encoder's feedback loop.
    """
    weighted = weighting_filter(e)
    mc, xm = grid_selection(weighted)
    xmax = 0
    for sample in xm:
        xmax = max(xmax, abs_s(sample))
    xmaxc, exponent, mantissa = quantize_xmax(xmax)
    xmc = apcm_quantize(xm, exponent, mantissa)
    xmp = apcm_dequantize(xmc, exponent, mantissa)
    ep = grid_position(mc, xmp)
    return mc, xmaxc, xmc, ep


def rpe_decode(mc: int, xmaxc: int, xmc: Sequence[int]) -> List[int]:
    """Reconstruct the 40-sample excitation from the coded RPE parameters."""
    exponent, mantissa = decode_xmaxc(xmaxc)
    xmp = apcm_dequantize(xmc, exponent, mantissa)
    return grid_position(mc, xmp)
