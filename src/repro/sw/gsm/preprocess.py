"""GSM 06.10 section 4.2.0 — preprocessing.

Downscaling of the 16-bit input samples, DC offset compensation (a first
order high-pass with a 32-bit accumulator) and pre-emphasis filtering.
The filter state lives in :class:`PreprocessState` so that consecutive
frames of one channel are processed continuously.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from .arith import add, l_add, mult_r, saturate
from .tables import FRAME_SAMPLES


@dataclass
class PreprocessState:
    """Persistent state of the offset-compensation and pre-emphasis filters."""

    z1: int = 0
    l_z2: int = 0
    mp: int = 0


def preprocess_frame(state: PreprocessState, samples: Sequence[int]) -> List[int]:
    """Preprocess one frame of 160 samples, updating ``state`` in place."""
    if len(samples) != FRAME_SAMPLES:
        raise ValueError(f"a GSM frame has {FRAME_SAMPLES} samples")
    output: List[int] = []
    z1 = state.z1
    l_z2 = state.l_z2
    mp = state.mp
    for sample in samples:
        # 4.2.0.1: downscale to 13 bits and shift back up by two.
        so = (saturate(sample) >> 3) << 2
        # 4.2.0.2: offset compensation (high-pass with alpha = 32735/32768).
        s1 = so - z1
        z1 = so
        l_s2 = s1 << 15
        msp = l_z2 >> 15
        lsp = l_z2 - (msp << 15)
        temp = mult_r(lsp, 32736)
        l_s2 = l_add(l_s2, temp)
        l_z2 = l_add(_msp_term(msp), l_s2)
        sof = saturate((l_z2 + 16384) >> 15)
        # 4.2.0.3: pre-emphasis with beta = 28180/32768.
        s = add(sof, mult_r(mp, -28180))
        mp = sof
        output.append(s)
    state.z1 = z1
    state.l_z2 = l_z2
    state.mp = mp
    return output


def _msp_term(msp: int) -> int:
    """The ``L_MULT(msp, 32735) >> 1`` term of the offset compensation."""
    return (msp * 32735 * 2) >> 1
