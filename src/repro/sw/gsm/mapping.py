"""Mapping of the GSM workload onto the simulated MPSoC platform.

This is the workload of the paper's experiment: each processing element
encodes its own GSM channel (a stream of 160-sample frames) while all
dynamic data — input frames, encoded parameter blocks and the channel
descriptor — lives in the dynamic shared memories and is managed through
the wrapper API (alloc / array transfers / free per frame).

Two placement policies mirror the paper's two platforms:

* ``dedicated`` — PE *i* keeps its buffers in shared memory ``i % M``
  (with M = 1 this is the "4 ISSs with one memory" configuration);
* ``striped`` — each PE spreads consecutive frames across all memories
  round-robin, so every memory sees traffic from every PE.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Sequence

from ...memory.protocol import DataType
from ..instruction_costs import estimate_loop_cycles
from ..task import TaskContext
from .codec import generate_speech_like
from .encoder import GsmEncoder
from .tables import FRAME_SAMPLES, PARAMETERS_PER_FRAME

#: Supported frame-placement policies.
PLACEMENT_DEDICATED = "dedicated"
PLACEMENT_STRIPED = "striped"


def _encode_cost_cycles(ctx: TaskContext) -> int:
    """Cycle annotation for encoding one frame on the PE.

    The estimate follows the published complexity of full-rate GSM encoders
    on ARM7-class cores (a few hundred thousand cycles per frame dominate
    the LTP lag search: 81 lags x 40 MACs per sub-frame).
    """
    ltp_macs = 81 * 40 * 4
    lpc_macs = 9 * FRAME_SAMPLES
    filter_ops = 8 * FRAME_SAMPLES * 2
    rpe_ops = 4 * (40 * 11 + 13 * 6)
    return estimate_loop_cycles(ltp_macs + lpc_macs + filter_ops + rpe_ops,
                                body_alu=1, body_mul=1, body_local=1,
                                model=ctx.cost_model)


def make_gsm_encoder_task(channel_samples: Sequence[int], pe_index: int,
                          placement: str = PLACEMENT_DEDICATED):
    """Build a task encoding ``channel_samples`` (multiple of 160) on one PE.

    The task allocates, per frame: an input buffer (160 x INT16) and an
    output buffer (76 x UINT16) in shared memory, moves the samples in with
    an array transfer, encodes locally (charging the annotated cycles),
    writes the parameters back and frees both buffers.  It returns the list
    of encoded parameter frames read back from shared memory.
    """
    if len(channel_samples) % FRAME_SAMPLES:
        raise ValueError("channel length must be a multiple of 160 samples")
    samples = [int(v) for v in channel_samples]
    num_frames = len(samples) // FRAME_SAMPLES

    def task(ctx: TaskContext) -> Generator[object, None, List[List[int]]]:
        encoder = GsmEncoder()
        encoded_frames: List[List[int]] = []
        for frame_index in range(num_frames):
            if placement == PLACEMENT_STRIPED:
                smem = ctx.memory_for(frame_index)
            else:
                smem = ctx.memory_for(pe_index)
            start = frame_index * FRAME_SAMPLES
            frame = samples[start:start + FRAME_SAMPLES]

            # The ctx.span annotations mark the phases on the PE's trace
            # timeline; without observability they are no-ops.
            with ctx.span(f"frame{frame_index}"):
                with ctx.span("load"):
                    input_vptr = yield from smem.alloc(FRAME_SAMPLES, DataType.INT16)
                    output_vptr = yield from smem.alloc(PARAMETERS_PER_FRAME,
                                                        DataType.UINT16)
                    yield from smem.write_array(input_vptr,
                                                [v & 0xFFFF for v in frame])

                    # Fetch the frame back (the encoder reads its input from
                    # the shared memory, as the ISS software in the paper
                    # does).
                    fetched = yield from smem.read_array_signed(
                        input_vptr, FRAME_SAMPLES, DataType.INT16
                    )
                with ctx.span("encode"):
                    parameters = encoder.encode_frame(fetched)
                    yield from ctx.compute(_encode_cost_cycles(ctx))

                with ctx.span("store"):
                    words = parameters.flatten()
                    yield from smem.write_array(output_vptr, words)
                    stored = yield from smem.read_array(output_vptr,
                                                        PARAMETERS_PER_FRAME)
                    encoded_frames.append(stored)

                    yield from smem.free(input_vptr)
                    yield from smem.free(output_vptr)
        ctx.note(f"gsm: encoded {num_frames} frames on pe{pe_index}")
        return encoded_frames

    return task


def make_gsm_channels(num_channels: int, frames_per_channel: int,
                      seed: int = 99) -> List[List[int]]:
    """Generate one deterministic speech-like channel per processing element."""
    return [generate_speech_like(frames_per_channel, seed=seed + 17 * channel)
            for channel in range(num_channels)]


def reference_encode(channels: Sequence[Sequence[int]]) -> List[List[List[int]]]:
    """Pure-Python reference: encode every channel without the platform."""
    reference: List[List[List[int]]] = []
    for channel in channels:
        encoder = GsmEncoder()
        frames = encoder.encode_stream(list(channel))
        reference.append([frame.flatten() for frame in frames])
    return reference


def build_gsm_tasks(channels: Sequence[Sequence[int]],
                    placement: str = PLACEMENT_DEDICATED) -> List:
    """One encoder task per channel, ready for :meth:`Platform.add_tasks`."""
    return [make_gsm_encoder_task(channel, pe_index, placement=placement)
            for pe_index, channel in enumerate(channels)]


def check_platform_results(results: Dict[str, object],
                           reference: Sequence[Sequence[Sequence[int]]]) -> bool:
    """Compare per-PE platform results against the reference encoding."""
    for pe_index, expected_frames in enumerate(reference):
        produced = results.get(f"pe{pe_index}")
        if produced is None:
            return False
        if [list(frame) for frame in produced] != [list(f) for f in expected_frames]:
            return False
    return True
