"""Convenience layer over the GSM 06.10 encoder/decoder.

Provides a one-call encode/decode round trip, deterministic synthetic speech
generation (no audio files are shipped), and signal-quality metrics used by
the tests and the evaluation to sanity-check the codec on the simulated
platform against the pure-Python reference run.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from .decoder import GsmDecoder
from .encoder import GsmEncoder, GsmFrameParameters
from .tables import FRAME_SAMPLES


def generate_speech_like(num_frames: int, seed: int = 1234) -> List[int]:
    """Deterministic speech-like test signal (sum of gliding tones + noise).

    The generator is a stand-in for the speech input of the paper's GSM
    workload: it has a strong pitch-like component (so the LTP finds real
    lags), a moving formant-ish component and a noise floor, all bounded to
    the 16-bit input range the codec expects.
    """
    if num_frames <= 0:
        raise ValueError("need at least one frame")
    samples: List[int] = []
    state = seed & 0x7FFFFFFF or 1
    total = num_frames * FRAME_SAMPLES
    for index in range(total):
        # Pitch component around 100-160 Hz equivalent (period ~ 50-80 samples).
        pitch_period = 55 + 20 * math.sin(2 * math.pi * index / (FRAME_SAMPLES * 7))
        pitch = 9000 * math.sin(2 * math.pi * index / pitch_period)
        # Formant-like component.
        formant = 2500 * math.sin(2 * math.pi * index / 23.0 + 1.3)
        # Deterministic pseudo-noise (LCG).
        state = (1103515245 * state + 12345) & 0x7FFFFFFF
        noise = ((state >> 16) & 0x3FF) - 512
        # Slow amplitude envelope so some frames are quiet.
        envelope = 0.25 + 0.75 * abs(math.sin(2 * math.pi * index / (FRAME_SAMPLES * 11)))
        value = int(envelope * (pitch + formant) + noise)
        samples.append(max(-32768, min(32767, value)))
    return samples


def generate_silence(num_frames: int) -> List[int]:
    """All-zero input frames."""
    return [0] * (num_frames * FRAME_SAMPLES)


def encode_decode(samples: Sequence[int]
                  ) -> Tuple[List[GsmFrameParameters], List[int]]:
    """Encode then decode a sample stream with fresh codec state."""
    encoder = GsmEncoder()
    decoder = GsmDecoder()
    frames = encoder.encode_stream(list(samples))
    reconstructed = decoder.decode_stream(frames)
    return frames, reconstructed


def signal_power(samples: Sequence[int]) -> float:
    """Mean square value of a sample sequence."""
    if not samples:
        return 0.0
    return sum(float(v) * float(v) for v in samples) / len(samples)


def segmental_snr_db(original: Sequence[int], reconstructed: Sequence[int],
                     segment: int = FRAME_SAMPLES, skip: int = FRAME_SAMPLES
                     ) -> float:
    """Average per-segment SNR in dB (skipping the first ``skip`` samples).

    The first frame is skipped because the codec's filters start from zero
    state; GSM 06.10 is a lossy coder so values of a few dB already indicate
    that the decoded signal tracks the original.
    """
    length = min(len(original), len(reconstructed))
    snrs: List[float] = []
    for start in range(skip, length - segment + 1, segment):
        orig = original[start:start + segment]
        reco = reconstructed[start:start + segment]
        power = signal_power(orig)
        error = signal_power([o - r for o, r in zip(orig, reco)])
        if power <= 0:
            continue
        if error <= 0:
            snrs.append(60.0)
            continue
        snrs.append(10.0 * math.log10(power / error))
    if not snrs:
        return 0.0
    return sum(snrs) / len(snrs)


def correlation(original: Sequence[int], reconstructed: Sequence[int]) -> float:
    """Pearson correlation between original and reconstructed signals."""
    length = min(len(original), len(reconstructed))
    if length == 0:
        return 0.0
    xs = [float(v) for v in original[:length]]
    ys = [float(v) for v in reconstructed[:length]]
    mean_x = sum(xs) / length
    mean_y = sum(ys) / length
    num = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    den_x = math.sqrt(sum((x - mean_x) ** 2 for x in xs))
    den_y = math.sqrt(sum((y - mean_y) ** 2 for y in ys))
    if den_x == 0 or den_y == 0:
        return 0.0
    return num / (den_x * den_y)
