"""GSM 06.10 constant tables.

Quantisation/dequantisation constants for the log-area ratios (LAR), the
LTP gain quantiser levels and the RPE APCM tables, as defined in the ETSI
GSM 06.10 full-rate specification (Tables 4.1-4.6 of the recommendation).
"""

from __future__ import annotations

#: Frame geometry.
FRAME_SAMPLES = 160
SUBFRAME_SAMPLES = 40
SUBFRAMES_PER_FRAME = 4
LPC_ORDER = 8
RPE_PULSES = 13

#: Number of parameters in one encoded frame:
#: 8 LARs + 4 * (lag, gain, grid, xmax, 13 pulses).
PARAMETERS_PER_FRAME = LPC_ORDER + SUBFRAMES_PER_FRAME * (4 + RPE_PULSES)

#: Table 4.1 — A[i]: inverse of the LAR quantiser step size.
LAR_A = [20480, 20480, 20480, 20480, 13964, 15360, 8534, 9036]

#: Table 4.1 — B[i]: LAR quantiser offset.
LAR_B = [0, 0, 2048, -2560, 94, -1792, -341, -1144]

#: Table 4.1 — MIC[i]: minimum quantised LAR value.
LAR_MIC = [-32, -32, -16, -16, -8, -8, -4, -4]

#: Table 4.1 — MAC[i]: maximum quantised LAR value.
LAR_MAC = [31, 31, 15, 15, 7, 7, 3, 3]

#: Table 4.2 — INVA[i]: inverse of A[i] used by the decoder.
LAR_INVA = [13107, 13107, 13107, 13107, 19223, 17476, 31454, 29708]

#: Table 4.3a — DLB[i]: LTP gain quantiser decision levels.
LTP_DLB = [6554, 16384, 26214, 32767]

#: Table 4.3b — QLB[i]: LTP gain dequantiser levels.
LTP_QLB = [3277, 11469, 21299, 32767]

#: Table 4.4 — H[i]: weighting filter impulse response for the RPE grid.
RPE_H = [-134, -374, 0, 2054, 5741, 8192, 5741, 2054, 0, -374, -134]

#: Table 4.5 — NRFAC[i]: normalised reciprocal factors for APCM quantisation.
RPE_NRFAC = [29128, 26215, 23832, 21846, 20165, 18725, 17476, 16384]

#: Table 4.6 — FAC[i]: normalisation factors for APCM dequantisation.
RPE_FAC = [18431, 20479, 22527, 24575, 26623, 28671, 30719, 32767]

#: Limits of the LTP lag search.
LTP_MIN_LAG = 40
LTP_MAX_LAG = 120

#: Bit widths of the encoded parameters, in transmission order
#: (used by the bit-stream packer): 8 LARs then per sub-frame
#: lag(7) gain(2) grid(2) xmax(6) 13 x pulse(3).
LAR_BITS = [6, 6, 5, 5, 4, 4, 3, 3]
SUBFRAME_BITS = [7, 2, 2, 6] + [3] * RPE_PULSES

#: Total number of bits in one encoded frame (the classic 260 bits / 33 bytes).
FRAME_BITS = sum(LAR_BITS) + SUBFRAMES_PER_FRAME * sum(SUBFRAME_BITS)
