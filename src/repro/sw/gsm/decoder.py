"""GSM 06.10 full-rate decoder.

The decoder reverses the RPE and LTP stages per sub-frame, runs the
short-term synthesis lattice over the reconstructed residual and applies the
de-emphasis post-processing, producing 160 linear PCM samples per frame.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from .arith import add, mult_r, saturate
from .encoder import GsmFrameParameters
from .lpc import ShortTermState, short_term_synthesis
from .ltp import ltp_synthesis
from .rpe import rpe_decode
from .tables import FRAME_SAMPLES, LTP_MAX_LAG, SUBFRAMES_PER_FRAME


@dataclass
class GsmDecoderState:
    """All persistent state of one decoder channel."""

    short_term: ShortTermState = field(default_factory=ShortTermState)
    #: Reconstructed residual history (the last 120 samples).
    drp_history: List[int] = field(default_factory=lambda: [0] * LTP_MAX_LAG)
    #: De-emphasis filter memory.
    msr: int = 0


class GsmDecoder:
    """Stateful GSM 06.10 full-rate decoder for one speech channel."""

    def __init__(self) -> None:
        self.state = GsmDecoderState()
        self.frames_decoded = 0

    def decode_frame(self, parameters: GsmFrameParameters) -> List[int]:
        """Decode one frame of parameters to 160 linear PCM samples."""
        state = self.state
        residual: List[int] = []
        for subframe in range(SUBFRAMES_PER_FRAME):
            erp = rpe_decode(parameters.grids[subframe],
                             parameters.xmaxcs[subframe],
                             parameters.pulses[subframe])
            drp = ltp_synthesis(erp, state.drp_history,
                                parameters.lags[subframe],
                                parameters.gains[subframe])
            state.drp_history = (state.drp_history + drp)[-LTP_MAX_LAG:]
            residual.extend(drp)

        synthesised = short_term_synthesis(state.short_term, parameters.larc,
                                           residual)

        # 4.3.5 — de-emphasis, upscaling and truncation.
        output: List[int] = []
        msr = state.msr
        for sample in synthesised:
            msr = add(sample, mult_r(msr, 28180))
            value = saturate(add(msr, msr))
            output.append(value & ~7)  # truncate the 3 LSBs as the spec does
        state.msr = msr
        self.frames_decoded += 1
        return output

    def decode_words(self, words: Sequence[int]) -> List[int]:
        """Decode one frame given as the flat 76-word parameter list."""
        return self.decode_frame(GsmFrameParameters.from_words(words))

    def decode_stream(self, frames: Sequence[GsmFrameParameters]) -> List[int]:
        """Decode a sequence of frames into one continuous sample stream."""
        samples: List[int] = []
        for frame in frames:
            samples.extend(self.decode_frame(frame))
        return samples


def signed16(value: int) -> int:
    """Helper for tests: reinterpret a decoder output word as signed."""
    value &= 0xFFFF
    return value - 0x10000 if value >= 0x8000 else value


def frames_to_samples(count: int) -> int:
    """Number of PCM samples carried by ``count`` frames."""
    return count * FRAME_SAMPLES
