"""GSM 06.10 section 4.2.11 — long-term predictor (LTP).

For every 40-sample sub-frame the encoder searches the best lag (40..120)
into the reconstructed short-term residual history, quantises the LTP gain
against the DLB decision levels, and produces the long-term residual that
the RPE stage encodes.  The decoder (and the encoder's local feedback loop)
reconstructs ``dpp`` with the dequantised gain.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .arith import abs_s, add, asr, mult, mult_r, norm, saturate, sub
from .tables import LTP_DLB, LTP_MAX_LAG, LTP_MIN_LAG, LTP_QLB, SUBFRAME_SAMPLES


def ltp_parameters(d: Sequence[int], dp_history: Sequence[int]
                   ) -> Tuple[int, int]:
    """Search the LTP lag and quantise the gain for one sub-frame.

    ``d`` is the 40-sample short-term residual of the sub-frame;
    ``dp_history`` holds the last 120 reconstructed residual samples, with
    ``dp_history[-1]`` being the most recent one.

    Returns ``(Nc, bc)``: the lag (40..120) and the 2-bit coded gain.
    """
    if len(d) != SUBFRAME_SAMPLES:
        raise ValueError("LTP works on 40-sample sub-frames")
    if len(dp_history) < LTP_MAX_LAG:
        raise ValueError("LTP history must hold at least 120 samples")

    # Scale d down to avoid overflow in the correlation (spec: based on dmax).
    dmax = 0
    for value in d:
        dmax = max(dmax, abs_s(value))
    if dmax == 0:
        scale = 0
    else:
        scale = max(0, 6 - norm(dmax << 16))
    wt = [asr(value, scale) for value in d]

    # Search the lag maximising the cross-correlation.
    best_lag = LTP_MIN_LAG
    best_correlation = 0
    for lag in range(LTP_MIN_LAG, LTP_MAX_LAG + 1):
        correlation = 0
        for k in range(SUBFRAME_SAMPLES):
            correlation += wt[k] * dp_history[-lag + k]
        if correlation > best_correlation:
            best_correlation = correlation
            best_lag = lag

    # Rescale the winning correlation and compute the power of the history
    # segment, then quantise the gain b = S/R against the DLB table.
    l_max = best_correlation << 1
    l_max = l_max >> (6 - scale) if scale <= 6 else l_max
    l_power = 0
    for k in range(SUBFRAME_SAMPLES):
        sample = asr(dp_history[-best_lag + k], 3)
        l_power += sample * sample
    l_power <<= 1

    if l_max <= 0:
        return best_lag, 0
    if l_max >= l_power:
        return best_lag, 3
    # Normalise both and compare S/R with the decision levels.
    temp = norm(l_power)
    s = saturate((l_max << temp) >> 16)
    r = saturate((l_power << temp) >> 16)
    bc = 0
    for level in range(3):
        if r <= mult(s, LTP_DLB[level]):
            break
        bc = level + 1
    return best_lag, bc


def ltp_filter(d: Sequence[int], dp_history: Sequence[int], lag: int, bc: int
               ) -> Tuple[List[int], List[int]]:
    """Long-term analysis filtering of one sub-frame.

    Returns ``(e, dpp_predicted)``: the long-term residual handed to the RPE
    encoder and the gain-weighted prediction that the caller combines with
    the reconstructed residual to update the history.
    """
    bp = LTP_QLB[bc]
    e: List[int] = []
    predicted: List[int] = []
    for k in range(SUBFRAME_SAMPLES):
        drp = mult_r(bp, dp_history[-lag + k])
        predicted.append(drp)
        e.append(sub(d[k], drp))
    return e, predicted


def ltp_synthesis(erp: Sequence[int], dp_history: Sequence[int], lag: int, bc: int
                  ) -> List[int]:
    """Reconstruct ``drp`` for one sub-frame (decoder side / encoder feedback)."""
    lag = min(LTP_MAX_LAG, max(LTP_MIN_LAG, lag))
    bp = LTP_QLB[bc]
    reconstructed: List[int] = []
    for k in range(SUBFRAME_SAMPLES):
        prediction = mult_r(bp, dp_history[-lag + k])
        reconstructed.append(add(erp[k], prediction))
    return reconstructed
