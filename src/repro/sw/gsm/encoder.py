"""GSM 06.10 full-rate encoder.

One :class:`GsmEncoder` instance encodes a continuous stream of 160-sample
frames into 76 parameters per frame (8 LAR codes plus, per sub-frame, the
LTP lag and gain, the RPE grid index, the coded block maximum and the 13
coded pulses).  The encoder keeps the preprocessing, short-term filter and
LTP-history state between frames, as the recommendation requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from .arith import add
from .lpc import (
    ShortTermState,
    autocorrelation,
    quantize_lar,
    reflection_to_lar,
    schur,
    short_term_analysis,
)
from .ltp import ltp_filter, ltp_parameters
from .preprocess import PreprocessState, preprocess_frame
from .rpe import rpe_encode
from .tables import (
    FRAME_SAMPLES,
    LPC_ORDER,
    LTP_MAX_LAG,
    PARAMETERS_PER_FRAME,
    RPE_PULSES,
    SUBFRAME_SAMPLES,
    SUBFRAMES_PER_FRAME,
)


@dataclass
class GsmFrameParameters:
    """The 76 parameters of one encoded frame, kept in structured form."""

    larc: List[int]
    lags: List[int]
    gains: List[int]
    grids: List[int]
    xmaxcs: List[int]
    pulses: List[List[int]]

    def flatten(self) -> List[int]:
        """Serialise to the canonical 76-word parameter list."""
        words = list(self.larc)
        for subframe in range(SUBFRAMES_PER_FRAME):
            words.append(self.lags[subframe])
            words.append(self.gains[subframe])
            words.append(self.grids[subframe])
            words.append(self.xmaxcs[subframe])
            words.extend(self.pulses[subframe])
        return words

    @classmethod
    def from_words(cls, words: Sequence[int]) -> "GsmFrameParameters":
        """Rebuild the structured form from a 76-word parameter list."""
        if len(words) != PARAMETERS_PER_FRAME:
            raise ValueError(
                f"a GSM frame has {PARAMETERS_PER_FRAME} parameters, got {len(words)}"
            )
        larc = list(words[:LPC_ORDER])
        lags, gains, grids, xmaxcs, pulses = [], [], [], [], []
        cursor = LPC_ORDER
        for _ in range(SUBFRAMES_PER_FRAME):
            lags.append(words[cursor])
            gains.append(words[cursor + 1])
            grids.append(words[cursor + 2])
            xmaxcs.append(words[cursor + 3])
            pulses.append(list(words[cursor + 4:cursor + 4 + RPE_PULSES]))
            cursor += 4 + RPE_PULSES
        return cls(larc, lags, gains, grids, xmaxcs, pulses)


@dataclass
class GsmEncoderState:
    """All persistent state of one encoder channel."""

    preprocess: PreprocessState = field(default_factory=PreprocessState)
    short_term: ShortTermState = field(default_factory=ShortTermState)
    #: Reconstructed short-term residual history (the last 120 samples).
    dp_history: List[int] = field(default_factory=lambda: [0] * LTP_MAX_LAG)


class GsmEncoder:
    """Stateful GSM 06.10 full-rate encoder for one speech channel."""

    def __init__(self) -> None:
        self.state = GsmEncoderState()
        self.frames_encoded = 0

    def encode_frame(self, samples: Sequence[int]) -> GsmFrameParameters:
        """Encode one frame of 160 linear PCM samples."""
        if len(samples) != FRAME_SAMPLES:
            raise ValueError(f"a GSM frame has {FRAME_SAMPLES} samples")
        state = self.state

        # 4.2.0 — preprocessing.
        preprocessed = preprocess_frame(state.preprocess, samples)

        # 4.2.1-4.2.8 — LPC analysis and LAR coding.
        acf = autocorrelation(preprocessed)
        reflection = schur(acf)
        lars = reflection_to_lar(reflection)
        larc = quantize_lar(lars)

        # 4.2.9-4.2.10 — short-term analysis filtering (residual d[0..159]).
        residual = short_term_analysis(state.short_term, larc, preprocessed)

        lags: List[int] = []
        gains: List[int] = []
        grids: List[int] = []
        xmaxcs: List[int] = []
        pulses: List[List[int]] = []

        # 4.2.11-4.2.17 — per-sub-frame LTP + RPE coding with local feedback.
        for subframe in range(SUBFRAMES_PER_FRAME):
            start = subframe * SUBFRAME_SAMPLES
            d_sub = residual[start:start + SUBFRAME_SAMPLES]
            lag, gain = ltp_parameters(d_sub, state.dp_history)
            e, predicted = ltp_filter(d_sub, state.dp_history, lag, gain)
            grid, xmaxc, xmc, ep = rpe_encode(e)
            # Reconstructed residual fed back into the LTP history.
            dpp = [add(ep[k], predicted[k]) for k in range(SUBFRAME_SAMPLES)]
            state.dp_history = (state.dp_history + dpp)[-LTP_MAX_LAG:]
            lags.append(lag)
            gains.append(gain)
            grids.append(grid)
            xmaxcs.append(xmaxc)
            pulses.append(xmc)

        self.frames_encoded += 1
        return GsmFrameParameters(larc, lags, gains, grids, xmaxcs, pulses)

    def encode_stream(self, samples: Sequence[int]) -> List[GsmFrameParameters]:
        """Encode a multiple-of-160 sample stream frame by frame."""
        if len(samples) % FRAME_SAMPLES:
            raise ValueError("stream length must be a multiple of 160 samples")
        frames = []
        for start in range(0, len(samples), FRAME_SAMPLES):
            frames.append(self.encode_frame(samples[start:start + FRAME_SAMPLES]))
        return frames
