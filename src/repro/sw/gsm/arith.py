"""GSM 06.10 fixed-point arithmetic primitives.

The full-rate codec is specified (ETSI GSM 06.10) in terms of saturating
16/32-bit fixed-point operations.  These helpers reproduce the reference
semantics: ``add``/``sub`` saturate to 16 bits, ``l_add``/``l_sub`` to 32
bits, ``mult_r`` is the rounded Q15 multiply, ``gsm_div`` the fractional
divide, ``norm`` the normalisation shift count of a 32-bit value.

Keeping the arithmetic faithful matters for the reproduction: the encoder's
output parameters (LARs, LTP lags/gains, RPE pulses) only take sensible
values when the saturation behaviour matches the spec.
"""

from __future__ import annotations

MIN_WORD = -32768
MAX_WORD = 32767
MIN_LONGWORD = -(1 << 31)
MAX_LONGWORD = (1 << 31) - 1


def saturate(value: int) -> int:
    """Clamp to the signed 16-bit range."""
    if value > MAX_WORD:
        return MAX_WORD
    if value < MIN_WORD:
        return MIN_WORD
    return value


def saturate_long(value: int) -> int:
    """Clamp to the signed 32-bit range."""
    if value > MAX_LONGWORD:
        return MAX_LONGWORD
    if value < MIN_LONGWORD:
        return MIN_LONGWORD
    return value


def add(a: int, b: int) -> int:
    """Saturating 16-bit addition."""
    return saturate(a + b)


def sub(a: int, b: int) -> int:
    """Saturating 16-bit subtraction."""
    return saturate(a - b)


def l_add(a: int, b: int) -> int:
    """Saturating 32-bit addition."""
    return saturate_long(a + b)


def l_sub(a: int, b: int) -> int:
    """Saturating 32-bit subtraction."""
    return saturate_long(a - b)


def mult(a: int, b: int) -> int:
    """Q15 multiply: ``(a*b) >> 15`` with the spec's -32768*-32768 special case."""
    if a == MIN_WORD and b == MIN_WORD:
        return MAX_WORD
    return saturate((a * b) >> 15)


def mult_r(a: int, b: int) -> int:
    """Rounded Q15 multiply."""
    if a == MIN_WORD and b == MIN_WORD:
        return MAX_WORD
    return saturate((a * b + 16384) >> 15)


def l_mult(a: int, b: int) -> int:
    """32-bit Q31 multiply: ``(a*b) << 1`` (undefined -32768*-32768 saturated)."""
    if a == MIN_WORD and b == MIN_WORD:
        return MAX_LONGWORD
    return saturate_long((a * b) << 1)


def abs_s(a: int) -> int:
    """Saturating absolute value (|−32768| = 32767)."""
    if a == MIN_WORD:
        return MAX_WORD
    return -a if a < 0 else a


def asl(a: int, shift: int) -> int:
    """Arithmetic shift left of a 16-bit word (negative shift = right)."""
    if shift >= 16:
        return 0 if a == 0 else (MAX_WORD if a > 0 else MIN_WORD)
    if shift <= -16:
        return -1 if a < 0 else 0
    if shift < 0:
        return asr(a, -shift)
    return saturate(a << shift)


def asr(a: int, shift: int) -> int:
    """Arithmetic shift right of a 16-bit word (negative shift = left)."""
    if shift >= 16:
        return -1 if a < 0 else 0
    if shift < 0:
        return asl(a, -shift)
    # Python's >> is already an arithmetic shift for negative integers.
    return a >> shift


def l_asl(a: int, shift: int) -> int:
    """Arithmetic shift left of a 32-bit word."""
    if shift >= 32:
        return 0 if a == 0 else (MAX_LONGWORD if a > 0 else MIN_LONGWORD)
    if shift <= -32:
        return -1 if a < 0 else 0
    if shift < 0:
        return l_asr(a, -shift)
    return saturate_long(a << shift)


def l_asr(a: int, shift: int) -> int:
    """Arithmetic shift right of a 32-bit word."""
    if shift >= 32:
        return -1 if a < 0 else 0
    if shift < 0:
        return l_asl(a, -shift)
    return a >> shift


def norm(a: int) -> int:
    """Number of left shifts needed to normalise a non-zero 32-bit value."""
    if a == 0:
        raise ValueError("norm() of zero is undefined in GSM 06.10")
    if a == MIN_LONGWORD:
        return 0
    if a < 0:
        a = ~a
        if a == 0:
            return 31
    count = 0
    while a < 0x40000000:
        a <<= 1
        count += 1
    return count


def gsm_div(numerator: int, denominator: int) -> int:
    """Fractional division: num/den in Q15 with 0 <= num <= den, den > 0."""
    if numerator == 0:
        return 0
    if denominator <= 0 or numerator < 0 or numerator > denominator:
        raise ValueError("gsm_div requires 0 <= num <= den and den > 0")
    result = 0
    num = numerator
    for _ in range(15):
        result <<= 1
        num <<= 1
        if num >= denominator:
            num -= denominator
            result += 1
    return result
