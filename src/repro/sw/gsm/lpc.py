"""GSM 06.10 sections 4.2.1-4.2.10 — short-term (LPC) analysis and filtering.

Autocorrelation with dynamic scaling, Schur recursion to reflection
coefficients, LAR transformation, quantisation/decoding, per-region
interpolation and the short-term analysis / synthesis lattice filters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from .arith import (
    abs_s,
    add,
    asl,
    asr,
    gsm_div,
    mult,
    mult_r,
    norm,
    saturate,
    sub,
)
from .tables import (
    FRAME_SAMPLES,
    LAR_A,
    LAR_B,
    LAR_INVA,
    LAR_MAC,
    LAR_MIC,
    LPC_ORDER,
)


# ---------------------------------------------------------------------------
# 4.2.1 / 4.2.2 — autocorrelation and Schur recursion
# ---------------------------------------------------------------------------

def autocorrelation(samples: Sequence[int]) -> List[int]:
    """Compute L_ACF[0..8] with the spec's dynamic scaling."""
    if len(samples) != FRAME_SAMPLES:
        raise ValueError("autocorrelation works on one 160-sample frame")
    s = list(samples)
    smax = 0
    for value in s:
        smax = max(smax, abs_s(value))
    if smax == 0:
        scale = 0
    else:
        # Dynamic scaling: leave 4 bits of headroom for the 160-term sums.
        scale = max(0, 4 - norm(smax << 16))
    scaled = [asr(value, scale) for value in s]
    acf: List[int] = []
    for lag in range(LPC_ORDER + 1):
        total = 0
        for index in range(lag, FRAME_SAMPLES):
            total += scaled[index] * scaled[index - lag]
        acf.append(total << 1)
    return acf


def schur(acf: Sequence[int]) -> List[int]:
    """Schur recursion: 9 autocorrelation values → 8 reflection coefficients."""
    if len(acf) != LPC_ORDER + 1:
        raise ValueError("schur() expects 9 autocorrelation values")
    reflection = [0] * LPC_ORDER
    if acf[0] == 0:
        return reflection
    shift = norm(acf[0])
    normalised = [asr(asl(value, shift), 16) for value in acf]
    # Initialise the P and K arrays as in the reference implementation
    # (P[0..8] and K[1..8] both start from the normalised autocorrelation).
    p = [normalised[index] for index in range(9)]
    k = [0] + [normalised[index] for index in range(1, 9)]
    for order in range(LPC_ORDER):
        if p[0] <= 0 or p[0] < abs_s(p[1]):
            # Unstable or degenerate frame: remaining coefficients are zero.
            for rest in range(order, LPC_ORDER):
                reflection[rest] = 0
            break
        coefficient = gsm_div(abs_s(p[1]), p[0])
        if p[1] > 0:
            coefficient = -coefficient
        reflection[order] = saturate(coefficient)
        if order == LPC_ORDER - 1:
            break
        # Schur recursion update.
        p[0] = add(p[0], mult_r(p[1], coefficient))
        for i in range(1, LPC_ORDER - order):
            p[i] = add(p[i + 1], mult_r(k[i], coefficient))
            k[i] = add(k[i], mult_r(p[i + 1], coefficient))
    return reflection


# ---------------------------------------------------------------------------
# 4.2.3 / 4.2.4 — reflection coefficients → LAR, quantisation
# ---------------------------------------------------------------------------

def reflection_to_lar(reflection: Sequence[int]) -> List[int]:
    """Piecewise-linear approximation of the log-area ratio transform."""
    lars: List[int] = []
    for r in reflection:
        temp = abs_s(r)
        if temp < 22118:
            temp >>= 1
        elif temp < 31130:
            temp = sub(temp, 11059)
        else:
            temp = sub(temp, 26112) << 2
        lars.append(-temp if r < 0 else temp)
    return lars


def quantize_lar(lars: Sequence[int]) -> List[int]:
    """Quantise and code the 8 LARs (output includes the MIC offset)."""
    larc: List[int] = []
    for index, lar in enumerate(lars):
        temp = mult(LAR_A[index], lar)
        temp = add(temp, LAR_B[index])
        temp = add(temp, 256)
        temp = asr(temp, 9)
        temp = max(LAR_MIC[index], min(LAR_MAC[index], temp))
        larc.append(temp - LAR_MIC[index])  # coded value is always >= 0
    return larc


def decode_lar(larc: Sequence[int]) -> List[int]:
    """Decode coded LARs back to LARpp (used by both encoder and decoder)."""
    larpp: List[int] = []
    for index, coded in enumerate(larc):
        temp1 = (coded + LAR_MIC[index]) << 10
        temp2 = LAR_B[index] << 1
        temp1 = sub(temp1, temp2)
        temp1 = mult_r(LAR_INVA[index], temp1)
        larpp.append(add(temp1, temp1))
    return larpp


# ---------------------------------------------------------------------------
# 4.2.9 — interpolation of the LARs over the four sub-frame regions
# ---------------------------------------------------------------------------

def interpolate_lar(previous: Sequence[int], current: Sequence[int], region: int
                    ) -> List[int]:
    """LARp for one of the four interpolation regions (0..3)."""
    larp: List[int] = []
    for index in range(LPC_ORDER):
        old, new = previous[index], current[index]
        if region == 0:
            value = add(asr(old, 2), asr(new, 2))
            value = add(value, asr(old, 1))
        elif region == 1:
            value = add(asr(old, 1), asr(new, 1))
        elif region == 2:
            value = add(asr(old, 2), asr(new, 2))
            value = add(value, asr(new, 1))
        else:
            value = new
        larp.append(value)
    return larp


def lar_to_reflection(larp: Sequence[int]) -> List[int]:
    """Convert interpolated LARp values back to reflection coefficients rp."""
    rp: List[int] = []
    for lar in larp:
        temp = abs_s(lar)
        if temp < 11059:
            temp <<= 1
        elif temp < 20070:
            temp = add(temp, 11059)
        else:
            temp = add(asr(temp, 2), 26112)
        rp.append(-temp if lar < 0 else temp)
    return rp


# ---------------------------------------------------------------------------
# 4.2.10 — short-term analysis and synthesis lattice filters
# ---------------------------------------------------------------------------

@dataclass
class ShortTermState:
    """Lattice filter memories of the short-term analysis/synthesis filters."""

    analysis_u: List[int] = field(default_factory=lambda: [0] * LPC_ORDER)
    synthesis_v: List[int] = field(default_factory=lambda: [0] * (LPC_ORDER + 1))
    #: LARpp of the previous frame (for interpolation).
    previous_larpp: List[int] = field(default_factory=lambda: [0] * LPC_ORDER)


#: Sample ranges of the four interpolation regions within a frame.
INTERPOLATION_REGIONS: List[Tuple[int, int]] = [(0, 13), (13, 27), (27, 40), (40, 160)]


def short_term_analysis(state: ShortTermState, larc: Sequence[int],
                        samples: Sequence[int]) -> List[int]:
    """Short-term analysis filtering of one frame; returns the residual d[]."""
    current_larpp = decode_lar(larc)
    output = [0] * FRAME_SAMPLES
    u = state.analysis_u
    for region, (start, end) in enumerate(INTERPOLATION_REGIONS):
        larp = interpolate_lar(state.previous_larpp, current_larpp, region)
        rp = lar_to_reflection(larp)
        for position in range(start, end):
            di = samples[position]
            sav = di
            for order in range(LPC_ORDER):
                temp = add(u[order], mult_r(rp[order], di))
                di = add(di, mult_r(rp[order], u[order]))
                u[order] = sav
                sav = temp
            output[position] = di
    state.previous_larpp = current_larpp
    return output


def short_term_synthesis(state: ShortTermState, larc: Sequence[int],
                         residual: Sequence[int]) -> List[int]:
    """Short-term synthesis filtering of one frame of reconstructed residual."""
    current_larpp = decode_lar(larc)
    output = [0] * FRAME_SAMPLES
    v = state.synthesis_v
    for region, (start, end) in enumerate(INTERPOLATION_REGIONS):
        larp = interpolate_lar(state.previous_larpp, current_larpp, region)
        rp = lar_to_reflection(larp)
        for position in range(start, end):
            sri = residual[position]
            for order in range(LPC_ORDER - 1, -1, -1):
                sri = sub(sri, mult_r(rp[order], v[order]))
                v[order + 1] = add(v[order], mult_r(rp[order], sri))
            output[position] = sri
            v[0] = sri
    state.previous_larpp = current_larpp
    return output
