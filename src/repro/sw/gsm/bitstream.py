"""GSM 06.10 frame packing.

An encoded frame carries 260 bits (76 parameters with the bit widths of
Tables 1.1/1.2 of the recommendation), conventionally stored in 33 bytes
with the 4-bit ``0xD`` signature used by the common file format.  The packer
here is used by the workloads to move encoded frames through the shared
memories as byte arrays and by the tests to check the 260-bit budget.
"""

from __future__ import annotations

from typing import List, Sequence

from .encoder import GsmFrameParameters
from .tables import FRAME_BITS, LAR_BITS, SUBFRAME_BITS, SUBFRAMES_PER_FRAME

#: Upper nibble of the first byte in the conventional "gsm" file format.
MAGIC = 0xD


class BitstreamError(Exception):
    """Raised when a packed frame is malformed."""


def parameter_bit_widths() -> List[int]:
    """Bit width of each of the 76 parameters, in transmission order."""
    widths = list(LAR_BITS)
    for _ in range(SUBFRAMES_PER_FRAME):
        widths.extend(SUBFRAME_BITS)
    return widths


def pack_frame(parameters: GsmFrameParameters) -> bytes:
    """Pack one frame into 33 bytes (4-bit magic + 260 payload bits)."""
    words = parameters.flatten()
    widths = parameter_bit_widths()
    bits: List[int] = []
    for value, width in zip(words, widths):
        if value < 0 or value >= (1 << width):
            raise BitstreamError(
                f"parameter value {value} does not fit in {width} bits"
            )
        for position in range(width - 1, -1, -1):
            bits.append((value >> position) & 1)
    if len(bits) != FRAME_BITS:
        raise BitstreamError(f"expected {FRAME_BITS} bits, built {len(bits)}")
    # Prepend the 4-bit magic so the total is 264 bits = 33 bytes.
    all_bits = [(MAGIC >> 3) & 1, (MAGIC >> 2) & 1, (MAGIC >> 1) & 1, MAGIC & 1] + bits
    payload = bytearray()
    for byte_index in range(len(all_bits) // 8):
        value = 0
        for bit in all_bits[byte_index * 8:(byte_index + 1) * 8]:
            value = (value << 1) | bit
        payload.append(value)
    return bytes(payload)


def unpack_frame(payload: bytes) -> GsmFrameParameters:
    """Unpack 33 bytes into the 76 frame parameters."""
    if len(payload) != 33:
        raise BitstreamError(f"a packed GSM frame is 33 bytes, got {len(payload)}")
    bits: List[int] = []
    for byte in payload:
        for position in range(7, -1, -1):
            bits.append((byte >> position) & 1)
    magic = (bits[0] << 3) | (bits[1] << 2) | (bits[2] << 1) | bits[3]
    if magic != MAGIC:
        raise BitstreamError(f"bad frame signature {magic:#x}")
    cursor = 4
    words: List[int] = []
    for width in parameter_bit_widths():
        value = 0
        for _ in range(width):
            value = (value << 1) | bits[cursor]
            cursor += 1
        words.append(value)
    return GsmFrameParameters.from_words(words)


def pack_stream(frames: Sequence[GsmFrameParameters]) -> bytes:
    """Pack a sequence of frames back to back (the usual ``.gsm`` layout)."""
    return b"".join(pack_frame(frame) for frame in frames)


def unpack_stream(payload: bytes) -> List[GsmFrameParameters]:
    """Unpack a concatenation of 33-byte frames."""
    if len(payload) % 33:
        raise BitstreamError("packed stream length must be a multiple of 33 bytes")
    return [unpack_frame(payload[start:start + 33])
            for start in range(0, len(payload), 33)]
