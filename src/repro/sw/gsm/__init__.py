"""GSM 06.10 full-rate (RPE-LTP) speech codec — the paper's workload.

A self-contained fixed-point implementation of the encoder and decoder plus
the task mapping that runs the encoder on the simulated MPSoC platform with
all dynamic buffers managed through the shared-memory wrapper API.
"""

from .arith import (
    MAX_LONGWORD,
    MAX_WORD,
    MIN_LONGWORD,
    MIN_WORD,
    abs_s,
    add,
    asl,
    asr,
    gsm_div,
    l_add,
    l_asl,
    l_asr,
    l_mult,
    l_sub,
    mult,
    mult_r,
    norm,
    saturate,
    sub,
)
from .bitstream import (
    BitstreamError,
    pack_frame,
    pack_stream,
    parameter_bit_widths,
    unpack_frame,
    unpack_stream,
)
from .codec import (
    correlation,
    encode_decode,
    generate_silence,
    generate_speech_like,
    segmental_snr_db,
    signal_power,
)
from .decoder import GsmDecoder, GsmDecoderState
from .encoder import GsmEncoder, GsmEncoderState, GsmFrameParameters
from .mapping import (
    PLACEMENT_DEDICATED,
    PLACEMENT_STRIPED,
    build_gsm_tasks,
    check_platform_results,
    make_gsm_channels,
    make_gsm_encoder_task,
    reference_encode,
)
from .tables import (
    FRAME_BITS,
    FRAME_SAMPLES,
    LPC_ORDER,
    LTP_MAX_LAG,
    LTP_MIN_LAG,
    PARAMETERS_PER_FRAME,
    RPE_PULSES,
    SUBFRAME_SAMPLES,
    SUBFRAMES_PER_FRAME,
)

__all__ = [
    "BitstreamError",
    "FRAME_BITS",
    "FRAME_SAMPLES",
    "GsmDecoder",
    "GsmDecoderState",
    "GsmEncoder",
    "GsmEncoderState",
    "GsmFrameParameters",
    "LPC_ORDER",
    "LTP_MAX_LAG",
    "LTP_MIN_LAG",
    "PARAMETERS_PER_FRAME",
    "PLACEMENT_DEDICATED",
    "PLACEMENT_STRIPED",
    "RPE_PULSES",
    "SUBFRAME_SAMPLES",
    "SUBFRAMES_PER_FRAME",
    "build_gsm_tasks",
    "check_platform_results",
    "correlation",
    "encode_decode",
    "generate_silence",
    "generate_speech_like",
    "make_gsm_channels",
    "make_gsm_encoder_task",
    "pack_frame",
    "pack_stream",
    "parameter_bit_widths",
    "reference_encode",
    "segmental_snr_db",
    "signal_power",
    "unpack_frame",
    "unpack_stream",
]
