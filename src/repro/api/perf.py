"""Kernel performance tracking: normalized bench results in ``BENCH_kernel.json``.

The evaluation benches measure host wall-clock, but until this module the
numbers only lived in free-text result blocks — there was no machine-readable
perf trajectory to compare PRs against.  This module provides:

* :class:`PerfTimer` — a tiny context-manager stopwatch;
* :class:`BenchResult` — one normalized perf record (wall-clock, kernel
  scheduler stats, derived events/sec and activations/sec rates) built from
  a :class:`~repro.soc.stats.SimulationReport`, a
  :class:`~repro.api.scenario.ScenarioResult` or a raw measurement;
* :class:`PerfRecorder` — a keyed, merge-on-write collector: every record
  updates its ``bench/scenario`` entry in the JSON file, so the six benches
  (and partial runs) compose into one ``BENCH_kernel.json``.

The file lives at the repository root by default (CI uploads it as an
artifact); override with the ``REPRO_BENCH_JSON`` environment variable or
the ``path`` argument.  Scheduler *count* stats (``delta_cycles``,
``process_activations``) are deterministic for fixed-seed scenarios, which
is what lets CI diff them against a golden baseline to catch semantic
regressions of the scheduler fast path.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

SCHEMA = "repro.api.perf/v1"

#: Environment variable overriding the default output path.
ENV_PATH = "REPRO_BENCH_JSON"
DEFAULT_PATH = "BENCH_kernel.json"


def bench_json_path(path: Optional[str] = None) -> str:
    """Resolve the output path: argument > ``REPRO_BENCH_JSON`` > default."""
    return path or os.environ.get(ENV_PATH) or DEFAULT_PATH


class PerfTimer:
    """Context-manager stopwatch: ``with PerfTimer() as t: ...; t.seconds``."""

    __slots__ = ("start", "seconds")

    def __init__(self) -> None:
        self.start = 0.0
        self.seconds = 0.0

    def __enter__(self) -> "PerfTimer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.seconds = time.perf_counter() - self.start


@dataclass
class BenchResult:
    """One normalized perf record of a bench scenario."""

    #: Bench the record belongs to (e.g. ``"e4_scaling"``).
    bench: str
    #: Scenario label, unique within the bench.
    scenario: str
    #: Host seconds of the measured region.
    wallclock_seconds: float
    #: Parameters / grid overrides of the scenario.
    params: Dict[str, object] = field(default_factory=dict)
    #: Simulated time units covered (0 for host-only micro measurements).
    simulated_time: int = 0
    #: Simulated cycles covered (0 for host-only micro measurements).
    simulated_cycles: int = 0
    #: Kernel scheduler counters (empty for host-only micro measurements).
    delta_cycles: int = 0
    timed_steps: int = 0
    process_activations: int = 0
    events_fired: int = 0

    # -- derived rates -------------------------------------------------------
    @property
    def events_per_second(self) -> float:
        """Fired events per host second (kernel notification throughput)."""
        if self.wallclock_seconds <= 0:
            return 0.0
        return self.events_fired / self.wallclock_seconds

    @property
    def activations_per_second(self) -> float:
        """Process activations per host second (kernel scheduling throughput)."""
        if self.wallclock_seconds <= 0:
            return 0.0
        return self.process_activations / self.wallclock_seconds

    @property
    def cycles_per_second(self) -> float:
        """Simulated cycles per host second (the paper's speed metric)."""
        if self.wallclock_seconds <= 0:
            return 0.0
        return self.simulated_cycles / self.wallclock_seconds

    @property
    def key(self) -> str:
        """Merge key of the record inside the JSON file."""
        return f"{self.bench}/{self.scenario}"

    def as_dict(self) -> dict:
        """JSON-ready view, derived rates included."""
        return {
            "bench": self.bench,
            "scenario": self.scenario,
            "params": {key: _plain(value) for key, value in self.params.items()},
            "wallclock_seconds": self.wallclock_seconds,
            "simulated_time": self.simulated_time,
            "simulated_cycles": self.simulated_cycles,
            "delta_cycles": self.delta_cycles,
            "timed_steps": self.timed_steps,
            "process_activations": self.process_activations,
            "events_fired": self.events_fired,
            "events_per_second": round(self.events_per_second, 1),
            "activations_per_second": round(self.activations_per_second, 1),
            "cycles_per_second": round(self.cycles_per_second, 1),
        }

    # -- constructors --------------------------------------------------------
    @classmethod
    def from_report(cls, bench: str, scenario: str, report,
                    params: Optional[Dict[str, object]] = None) -> "BenchResult":
        """Build a record from a :class:`~repro.soc.stats.SimulationReport`."""
        kernel = report.kernel_stats
        return cls(
            bench=bench,
            scenario=scenario,
            params=dict(params or {}),
            wallclock_seconds=report.wallclock_seconds,
            simulated_time=report.simulated_time,
            simulated_cycles=report.simulated_cycles,
            delta_cycles=int(kernel.get("delta_cycles", 0)),
            timed_steps=int(kernel.get("timed_steps", 0)),
            process_activations=int(kernel.get("process_activations", 0)),
            events_fired=int(kernel.get("events_fired", 0)),
        )

    @classmethod
    def from_scenario_result(cls, bench: str, result) -> "BenchResult":
        """Build a record from a passed :class:`ScenarioResult`."""
        record = cls.from_report(bench, result.scenario, result.report,
                                 params=dict(result.overrides, **result.params))
        return record

    @classmethod
    def from_measurement(cls, bench: str, scenario: str, seconds: float,
                         params: Optional[Dict[str, object]] = None,
                         simulated_cycles: int = 0) -> "BenchResult":
        """Build a host-time-only record (micro benches without a kernel run)."""
        return cls(bench=bench, scenario=scenario, params=dict(params or {}),
                   wallclock_seconds=seconds, simulated_cycles=simulated_cycles)


def _plain(value: object) -> object:
    """JSON-safe view of a parameter value."""
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return str(getattr(value, "value", value))


class PerfRecorder:
    """Collects :class:`BenchResult` records and merges them into the JSON file.

    Records are keyed by ``bench/scenario``: re-running a bench (or one
    bench out of six) updates only its own entries, so the file accumulates
    a complete picture across partial runs.
    """

    def __init__(self, bench: str, path: Optional[str] = None) -> None:
        self.bench = bench
        self.path = bench_json_path(path)
        self.records: list = []

    # -- recording -----------------------------------------------------------
    def record(self, result: BenchResult) -> BenchResult:
        """Add one record (without writing; call :meth:`flush`)."""
        self.records.append(result)
        return result

    def record_report(self, scenario: str, report,
                      params: Optional[Dict[str, object]] = None) -> BenchResult:
        """Record a simulation report under this recorder's bench."""
        return self.record(BenchResult.from_report(self.bench, scenario, report,
                                                   params=params))

    def record_results(self, results: Iterable) -> None:
        """Record every passed scenario result of an experiment run."""
        for result in results:
            if result.report is not None:
                self.record(BenchResult.from_scenario_result(self.bench, result))

    def record_measurement(self, scenario: str, seconds: float,
                           params: Optional[Dict[str, object]] = None,
                           simulated_cycles: int = 0) -> BenchResult:
        """Record a host-only timing (micro benches)."""
        return self.record(BenchResult.from_measurement(
            self.bench, scenario, seconds, params=params,
            simulated_cycles=simulated_cycles))

    # -- persistence ---------------------------------------------------------
    def flush(self) -> str:
        """Merge the collected records into the JSON file; returns the path.

        Crash-safe and concurrent-safe: the read-merge-write cycle runs
        under an exclusive lock file (so two bench processes flushing the
        same file cannot drop each other's rows) and the new content lands
        via a uniquely named temp file + atomic ``os.replace`` (so a crash
        mid-write never leaves a truncated ``BENCH_kernel.json`` behind).
        """
        with _flush_lock(self.path):
            payload = self._load()
            entries = payload.setdefault("entries", {})
            for record in self.records:
                entries[record.key] = record.as_dict()
            payload["schema"] = SCHEMA
            payload["count"] = len(entries)
            directory = os.path.dirname(os.path.abspath(self.path))
            fd, tmp_path = tempfile.mkstemp(
                dir=directory, prefix=os.path.basename(self.path) + ".",
                suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(payload, handle, indent=1, sort_keys=True)
                    handle.write("\n")
                os.replace(tmp_path, self.path)
            except BaseException:
                with contextlib.suppress(OSError):
                    os.unlink(tmp_path)
                raise
        return self.path

    def _load(self) -> dict:
        if not os.path.exists(self.path):
            return {}
        try:
            with open(self.path) as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return {}
        if not isinstance(payload, dict) or payload.get("schema") != SCHEMA:
            return {}
        return payload


#: Seconds a flush waits for a competing process's lock before failing.
_LOCK_TIMEOUT_S = 30.0
#: A lock file older than this is presumed abandoned (crashed holder).
_LOCK_STALE_S = 60.0


@contextlib.contextmanager
def _flush_lock(path: str):
    """Exclusive cross-process lock guarding one bench file's flush cycle.

    Portable stdlib locking: ``O_CREAT | O_EXCL`` on a ``<path>.lock``
    sidecar — the creation either succeeds atomically or raises.  Waiters
    back off briefly and retry; a lock whose mtime is older than
    ``_LOCK_STALE_S`` is treated as abandoned by a crashed holder and
    broken.  The break itself is an atomic rename to a per-process name,
    so when several waiters observe the same stale lock exactly one of
    them removes it — a slow waiter can never unlink the *fresh* lock a
    faster waiter just created.  Raises ``TimeoutError`` after
    ``_LOCK_TIMEOUT_S`` so a stuck lock is a loud failure, not a silent
    hang.
    """
    lock_path = f"{path}.lock"
    deadline = time.monotonic() + _LOCK_TIMEOUT_S
    while True:
        try:
            fd = os.open(lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            break
        except FileExistsError:
            if _break_stale_lock(lock_path):
                continue
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"could not acquire {lock_path} within "
                    f"{_LOCK_TIMEOUT_S:.0f}s; remove it if its owner died"
                ) from None
            time.sleep(0.01)  # noqa: RC002 - host-side lock backoff
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(f"{os.getpid()}\n")
        yield
    finally:
        with contextlib.suppress(OSError):
            os.unlink(lock_path)


def _break_stale_lock(lock_path: str) -> bool:
    """Atomically remove ``lock_path`` if abandoned; True when broken.

    The removal renames the lock to a unique per-process name — rename is
    atomic, so of any number of waiters racing on the same stale lock at
    most one succeeds and the rest see ``FileNotFoundError``.  After the
    rename the captured file's identity is compared against the pre-check
    stat: if a fresh lock replaced the stale one between stat and rename
    (the lost-update window of a naive unlink) the live lock is restored
    via ``os.link`` — which fails instead of clobbering if yet another
    lock appeared meanwhile — and the break is not claimed.
    """
    try:
        stat = os.stat(lock_path)
    except OSError:
        return True  # gone already: retry acquisition
    if time.time() - stat.st_mtime <= _LOCK_STALE_S:
        return False
    grabbed = f"{lock_path}.break.{os.getpid()}"
    try:
        os.rename(lock_path, grabbed)
    except OSError:
        return False  # another waiter won the break (or the holder left)
    try:
        taken = os.stat(grabbed)
        if (taken.st_ino, taken.st_mtime) == (stat.st_ino, stat.st_mtime):
            return True  # we removed exactly the stale lock we measured
        # We grabbed a *fresh* lock created inside the stat->rename
        # window: hand it back without clobbering any newer one.
        with contextlib.suppress(OSError):
            os.link(grabbed, lock_path)
        return False
    finally:
        with contextlib.suppress(OSError):
            os.unlink(grabbed)


def load_bench_entries(path: Optional[str] = None) -> Dict[str, dict]:
    """Load the merged entries of a ``BENCH_kernel.json`` file (empty if absent)."""
    resolved = bench_json_path(path)
    if not os.path.exists(resolved):
        return {}
    with open(resolved) as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        return {}
    entries = payload.get("entries", {})
    return entries if isinstance(entries, dict) else {}
