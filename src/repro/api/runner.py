"""Experiment execution: serial or process-sharded scenario runs.

:class:`ExperimentRunner` executes a list of :class:`~repro.api.scenario.Scenario`
objects and returns one :class:`~repro.api.scenario.ScenarioResult` per
scenario, in scenario order, regardless of how the runs were scheduled:

* **serial** (the default): every scenario runs in this process — the right
  mode for speed measurements, where concurrent runs would steal host
  cycles from each other, and the only mode that can hand back the live
  ``Platform`` objects (``keep_platforms=True``);
* **sharded** (``shards > 1`` or ``timeout_s`` set): each scenario runs in
  its own child process, at most ``shards`` at a time, with an optional
  per-run wall-clock timeout enforced by terminating the child.  Results
  travel back as pickled reports, so sharded scenarios should reference
  their workloads by registry name (plain data pickles; closures only
  survive on fork-based platforms).  The scheduler blocks in
  :func:`multiprocessing.connection.wait` on the worker pipes — no polling
  loop burns host CPU while workers simulate.

Two optional collaborators turn a run into an *observable, incremental*
sweep (see :mod:`repro.store`):

* ``store=`` — a :class:`~repro.store.store.ResultStore` (or a path to
  one): every scenario is content-hashed (config + workload name + params
  + seed + code-version salt) and looked up first; hits return the cached
  result without simulating, misses run and are persisted as they
  complete, so re-runs are incremental and a sweep killed mid-grid
  resumes from what it already finished;
* ``monitor=`` — a :class:`~repro.store.telemetry.SweepMonitor` (or
  ``True`` for a default one): the runner and its workers stream
  structured events (``scheduled`` / ``started`` / ``heartbeat`` /
  ``cache_hit`` / ``finished`` / ``failed`` / ``timeout``) that drive a
  live progress line, a JSONL event log next to the store, and an
  end-of-sweep straggler/failure summary.

Runs are reproducible: each scenario's ``seed`` is applied to ``random``
immediately before its workload is instantiated, and the simulation itself
is deterministic, so a serial run, a 2-shard run and a cached re-run of the
same grid produce identical simulated results.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import threading
import time
from multiprocessing import connection as _mp_connection
from typing import Dict, List, Optional, Sequence, Union

from ..soc.platform import Platform
from ..store.hashing import UncacheableScenarioError
from ..store.store import DEFAULT_FILENAME, ResultStore
from ..store.telemetry import SweepEvent, SweepMonitor
from .scenario import Scenario, ScenarioResult

#: Default seconds between worker heartbeat events on monitored runs.
_HEARTBEAT_S = 2.0


def run_scenario(scenario: Scenario, *, index: int = 0,
                 keep_platform: bool = False,
                 capture_errors: bool = True) -> ScenarioResult:
    """Run one scenario in this process and return its result.

    With ``capture_errors=False`` exceptions from the workload factory or
    the simulation propagate to the caller instead of being recorded in
    ``result.error`` (fail-fast mode, used by the ``run_sweep`` shim).
    """
    start = time.perf_counter()
    result = ScenarioResult(
        scenario=scenario.name,
        params=dict(scenario.params),
        overrides=dict(scenario.overrides),
        index=index,
    )
    platform = None
    try:
        bundle = _build_seeded_workload(scenario)
        if scenario.config.partitions > 1:
            # Partitioned (PDES) execution: the coordinator builds one
            # platform shard per partition itself (each worker rebuilds
            # the seeded workload), so no platform exists in this process.
            from ..pdes.coordinator import run_partitioned

            report = run_partitioned(scenario)
        else:
            platform = Platform(scenario.config)
            platform.add_tasks(bundle.tasks)
            report = platform.run(max_time=scenario.max_time)
        result.report = report
        if scenario.expect_finished and not report.all_pes_finished:
            unfinished = sorted(name for name, done in report.finished.items()
                                if not done)
            result.failures.append(
                f"unfinished PEs: {', '.join(unfinished) or 'unknown'}"
            )
        for check in list(bundle.checks) + list(scenario.checks):
            result.failures.extend(_run_check(check, report))
        result.passed = not result.failures
    except Exception as exc:
        if not capture_errors:
            raise
        result.error = f"{type(exc).__name__}: {exc}"
        result.passed = False
    finally:
        result.host_seconds = time.perf_counter() - start
        if keep_platform:
            result.platform = platform
    return result


def _build_seeded_workload(scenario: Scenario):
    """Instantiate the workload under the scenario's seed, if any.

    The global ``random`` state is restored afterwards so a serial run
    inside a larger process (e.g. a test session) does not leak
    deterministic RNG state to unrelated code.
    """
    if scenario.seed is None:
        return scenario.build_workload()
    state = random.getstate()
    try:
        random.seed(scenario.seed)
        return scenario.build_workload()
    finally:
        random.setstate(state)


def _run_check(check, report) -> List[str]:
    """Run one result check; returns failure messages (empty = passed)."""
    label = getattr(check, "__name__", None) or "check"
    try:
        verdict = check(report)
    except AssertionError as exc:
        return [f"{label}: {exc or 'assertion failed'}"]
    except Exception as exc:
        # A crashing check (e.g. indexing the None result of an unfinished
        # PE) is a failed check, not a failed run: containing it here keeps
        # the other checks' verdicts and the unfinished-PE message visible.
        return [f"{label}: raised {type(exc).__name__}: {exc}"]
    if verdict is None or verdict is True:
        return []
    if verdict is False:
        return [f"{label}: failed"]
    return [str(verdict)]


def _cacheable_report(report) -> bool:
    """Whether a report may enter the result store.

    Partitioned runs share the sequential scenario key (the partition
    count is execution strategy, not simulated hardware), which is only
    sound when the run was bit-identical to sequential — i.e. no message
    ever paid the boundary-cut latency.  Cross-partition traffic makes
    the timing a function of the tiling, so those runs are never cached.
    """
    pdes = getattr(report, "pdes", None)
    return pdes is None or pdes.get("boundary_messages") == 0


def _scenario_worker(connection, scenario: Scenario, index: int,
                     heartbeat_s: Optional[float] = None) -> None:
    """Child-process entry: run one scenario, stream telemetry, ship the
    result back.

    The pipe carries tagged messages: ``("event", dict)`` telemetry frames
    (a ``started`` event at entry, then ``heartbeat`` frames every
    ``heartbeat_s`` while the simulation runs) and one final
    ``("result", ScenarioResult)``.  A lock serialises the heartbeat
    thread's sends against the main thread's.
    """
    send_lock = threading.Lock()
    stop = threading.Event()

    def send(message) -> None:
        with send_lock:
            try:
                connection.send(message)
            except (OSError, ValueError):  # parent went away mid-send
                stop.set()

    started = time.perf_counter()
    send(("event", SweepEvent.now("started", scenario.name, index).as_dict()))
    heartbeat_thread = None
    if heartbeat_s is not None and heartbeat_s > 0:
        def _beat() -> None:
            while not stop.wait(heartbeat_s):
                send(("event", SweepEvent.now(
                    "heartbeat", scenario.name, index,
                    host_seconds=time.perf_counter() - started).as_dict()))

        heartbeat_thread = threading.Thread(target=_beat, daemon=True)
        heartbeat_thread.start()
    try:
        result = run_scenario(scenario, index=index)
        stop.set()
        send(("result", result))
    except Exception as exc:  # pragma: no cover - transport-level failure
        stop.set()
        send(("result", ScenarioResult(
            scenario=scenario.name, params=dict(scenario.params),
            overrides=dict(scenario.overrides), index=index,
            error=f"worker failed: {type(exc).__name__}: {exc}",
        )))
    finally:
        stop.set()
        if heartbeat_thread is not None:
            heartbeat_thread.join()
        with send_lock:
            connection.close()


class ExperimentRunner:
    """Executes a scenario list serially or sharded across processes."""

    def __init__(
        self,
        scenarios: Sequence[Scenario],
        *,
        shards: int = 1,
        timeout_s: Optional[float] = None,
        keep_platforms: bool = False,
        start_method: Optional[str] = None,
        recorder=None,
        store: Union[ResultStore, str, os.PathLike, None] = None,
        monitor: Union[SweepMonitor, bool, None] = None,
        heartbeat_s: float = _HEARTBEAT_S,
        code_version: Optional[str] = None,
    ) -> None:
        self.scenarios: List[Scenario] = list(scenarios)
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        if heartbeat_s <= 0:
            raise ValueError("heartbeat_s must be positive")
        self.shards = shards
        self.timeout_s = timeout_s
        self.keep_platforms = keep_platforms
        self.start_method = start_method
        #: Optional :class:`repro.api.perf.PerfRecorder`: every completed
        #: run's report is recorded and flushed to ``BENCH_kernel.json``.
        self.recorder = recorder
        if isinstance(store, (str, os.PathLike)):
            store = ResultStore(os.fspath(store))
        self.store = store
        if monitor is True:
            log_path = None
            if store is not None:
                log_path = os.path.join(
                    os.path.dirname(os.path.abspath(store.path)),
                    "sweep.events.jsonl")
            monitor = SweepMonitor(log_path=log_path)
        self.monitor: Optional[SweepMonitor] = monitor or None
        self.heartbeat_s = heartbeat_s
        self.code_version = code_version
        if keep_platforms and (shards > 1 or timeout_s is not None):
            raise ValueError(
                "keep_platforms requires a serial in-process run "
                "(shards=1 and no timeout)"
            )

    # -- execution ----------------------------------------------------------------------
    def run(self) -> List[ScenarioResult]:
        """Run every scenario; results come back in scenario order.

        With a result store attached, scenarios whose content key is
        already present return their cached result without simulating;
        only the misses run (serially or in worker processes), and each
        completed simulation is persisted the moment it finishes.
        """
        if not self.scenarios:
            return []
        results: List[Optional[ScenarioResult]] = [None] * len(self.scenarios)
        keys = [self._cache_key(scenario) for scenario in self.scenarios]
        self._emit(SweepEvent.now("sweep_begin",
                                  counters={"total": len(self.scenarios)}))
        for index, scenario in enumerate(self.scenarios):
            self._emit(SweepEvent.now("scheduled", scenario.name, index))
        pending: List[int] = []
        for index, scenario in enumerate(self.scenarios):
            cached = self._lookup(keys[index])
            if cached is not None:
                cached.index = index
                cached.cached = True
                cached.cache_key = keys[index]
                results[index] = cached
                self._emit(SweepEvent.now(
                    "cache_hit", scenario.name, index,
                    host_seconds=cached.host_seconds,
                    counters=self._result_counters(cached)))
            else:
                pending.append(index)
        if pending:
            if self.shards == 1 and self.timeout_s is None:
                self._run_serial(pending, keys, results)
            else:
                self._run_sharded(pending, keys, results)
        self._emit(SweepEvent.now("sweep_end"))
        if self.recorder is not None:
            self.recorder.record_results(results)
            self.recorder.flush()
        return list(results)  # type: ignore[arg-type]

    def _run_serial(self, pending: List[int], keys: List[Optional[str]],
                    results: List[Optional[ScenarioResult]]) -> None:
        for index in pending:
            scenario = self.scenarios[index]
            self._emit(SweepEvent.now("started", scenario.name, index))
            result = run_scenario(scenario, index=index,
                                  keep_platform=self.keep_platforms)
            self._complete(index, keys[index], result, results)

    def _run_sharded(self, pending: List[int], keys: List[Optional[str]],
                     results: List[Optional[ScenarioResult]]) -> None:
        context = multiprocessing.get_context(self.start_method)
        position = 0
        #: index -> (process, parent connection, start timestamp)
        active: Dict[int, tuple] = {}
        heartbeat_s = self.heartbeat_s if self.monitor is not None else None
        try:
            while position < len(pending) or active:
                while position < len(pending) and len(active) < self.shards:
                    index = pending[position]
                    position += 1
                    parent_conn, child_conn = context.Pipe(duplex=False)
                    process = context.Process(
                        target=_scenario_worker,
                        args=(child_conn, self.scenarios[index], index,
                              heartbeat_s),
                        daemon=True,
                    )
                    process.start()
                    child_conn.close()
                    active[index] = (process, parent_conn, time.monotonic())
                # Block on the worker pipes: a message, a worker death
                # (EOF) and the nearest per-run deadline all wake us —
                # no polling interval, no idle host burn.
                by_conn = {conn: index
                           for index, (_, conn, _) in active.items()}
                ready = _mp_connection.wait(list(by_conn),
                                            self._wait_timeout(active))
                finished = []
                for conn in ready:
                    index = by_conn[conn]
                    process = active[index][0]
                    if self._drain_worker(index, conn, process, keys, results):
                        finished.append(index)
                if self.timeout_s is not None:
                    now = time.monotonic()
                    for index, (process, _conn, started) in active.items():
                        if index in finished or results[index] is not None:
                            continue
                        if now - started > self.timeout_s:
                            process.terminate()
                            process.join()
                            scenario = self.scenarios[index]
                            result = self._failure(
                                scenario, index,
                                f"timed out after {self.timeout_s:.3g}s")
                            result.timed_out = True
                            result.host_seconds = now - started
                            self._complete(index, keys[index], result, results)
                            finished.append(index)
                for index in finished:
                    process, conn, _ = active.pop(index)
                    conn.close()
        finally:
            for process, conn, _ in active.values():
                process.terminate()
                process.join()
                conn.close()

    def _drain_worker(self, index: int, conn, process, keys, results) -> bool:
        """Consume every available message of one ready worker pipe.

        Returns True when the worker is done — its result arrived or the
        pipe hit EOF (worker death).  ``multiprocessing.connection.wait``
        guarantees the first ``recv`` will not block.
        """
        scenario = self.scenarios[index]
        first = True
        while first or conn.poll(0):
            first = False
            try:
                message = conn.recv()
            except EOFError:
                process.join()
                if results[index] is None:
                    result = self._failure(
                        scenario, index,
                        f"worker process died "
                        f"(exit code {process.exitcode})")
                    self._complete(index, keys[index], result, results)
                return True
            kind, payload = message
            if kind == "event":
                self._emit(SweepEvent.from_dict(payload))
            elif kind == "result":
                process.join()
                self._complete(index, keys[index], payload, results)
                return True
        return False

    def _wait_timeout(self, active: Dict[int, tuple]) -> Optional[float]:
        """Seconds until the nearest per-run deadline (None = no timeout)."""
        if self.timeout_s is None or not active:
            return None
        now = time.monotonic()
        nearest = min(started for _, _, started in active.values())
        return max(0.0, nearest + self.timeout_s - now)

    # -- store & telemetry --------------------------------------------------------------
    def _cache_key(self, scenario: Scenario) -> Optional[str]:
        """Content key of a scenario, or None when it cannot be cached."""
        if self.store is None:
            return None
        try:
            return scenario.cache_key(self.code_version)
        except UncacheableScenarioError:
            return None

    def _lookup(self, key: Optional[str]) -> Optional[ScenarioResult]:
        """Store lookup; ``keep_platforms`` runs always re-simulate (a
        cached result cannot carry a live platform)."""
        if self.store is None or key is None or self.keep_platforms:
            return None
        return self.store.get(key)

    def _complete(self, index: int, key: Optional[str],
                  result: ScenarioResult,
                  results: List[Optional[ScenarioResult]]) -> None:
        """Record one freshly simulated result: store row + terminal event."""
        result.cache_key = key
        results[index] = result
        if (self.store is not None and key is not None
                and result.report is not None and result.error is None
                and not result.timed_out
                and _cacheable_report(result.report)):
            self.store.put(key, result,
                           workload=self.scenarios[index].workload_name)
        if result.timed_out:
            kind, detail = "timeout", result.error or "timed out"
        elif result.error is not None:
            kind, detail = "failed", result.error
        else:
            kind, detail = "finished", "; ".join(result.failures)
        self._emit(SweepEvent.now(
            kind, result.scenario, index,
            host_seconds=result.host_seconds,
            counters=self._result_counters(result), detail=detail))

    def _emit(self, event: SweepEvent) -> None:
        if self.monitor is not None:
            self.monitor.emit(event)

    @staticmethod
    def _result_counters(result: ScenarioResult) -> Dict[str, object]:
        counters: Dict[str, object] = {"passed": result.passed}
        if result.report is not None:
            counters["simulated_cycles"] = result.report.simulated_cycles
            counters["events_fired"] = int(
                result.report.kernel_stats.get("events_fired", 0))
        return counters

    @staticmethod
    def _failure(scenario: Scenario, index: int, message: str) -> ScenarioResult:
        return ScenarioResult(
            scenario=scenario.name, params=dict(scenario.params),
            overrides=dict(scenario.overrides), index=index, error=message,
        )


def run_tasks(config, tasks, max_time: Optional[int] = None, host=None):
    """Build a platform for ``config``, place ``tasks`` and run it.

    The programmatic one-shot entry point (used by the ``run_platform``
    back-compat shim); returns the :class:`SimulationReport`.
    """
    platform = Platform(config, host=host)
    platform.add_tasks(list(tasks))
    return platform.run(max_time=max_time)


#: Re-exported for convenience: the default store filename sweeps use.
DEFAULT_STORE_FILENAME = DEFAULT_FILENAME
