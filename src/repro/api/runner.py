"""Experiment execution: serial or process-sharded scenario runs.

:class:`ExperimentRunner` executes a list of :class:`~repro.api.scenario.Scenario`
objects and returns one :class:`~repro.api.scenario.ScenarioResult` per
scenario, in scenario order, regardless of how the runs were scheduled:

* **serial** (the default): every scenario runs in this process — the right
  mode for speed measurements, where concurrent runs would steal host
  cycles from each other, and the only mode that can hand back the live
  ``Platform`` objects (``keep_platforms=True``);
* **sharded** (``shards > 1`` or ``timeout_s`` set): each scenario runs in
  its own child process, at most ``shards`` at a time, with an optional
  per-run wall-clock timeout enforced by terminating the child.  Results
  travel back as pickled reports, so sharded scenarios should reference
  their workloads by registry name (plain data pickles; closures only
  survive on fork-based platforms).

Runs are reproducible: each scenario's ``seed`` is applied to ``random``
immediately before its workload is instantiated, and the simulation itself
is deterministic, so a serial run and a 2-shard run of the same grid
produce identical simulated results.
"""

from __future__ import annotations

import multiprocessing
import random
import time
from typing import Dict, List, Optional, Sequence

from ..soc.platform import Platform
from .scenario import Scenario, ScenarioResult

#: Seconds between scheduler polls of the active worker processes.
_POLL_INTERVAL_S = 0.005


def run_scenario(scenario: Scenario, *, index: int = 0,
                 keep_platform: bool = False,
                 capture_errors: bool = True) -> ScenarioResult:
    """Run one scenario in this process and return its result.

    With ``capture_errors=False`` exceptions from the workload factory or
    the simulation propagate to the caller instead of being recorded in
    ``result.error`` (fail-fast mode, used by the ``run_sweep`` shim).
    """
    start = time.perf_counter()
    result = ScenarioResult(
        scenario=scenario.name,
        params=dict(scenario.params),
        overrides=dict(scenario.overrides),
        index=index,
    )
    platform = None
    try:
        bundle = _build_seeded_workload(scenario)
        platform = Platform(scenario.config)
        platform.add_tasks(bundle.tasks)
        report = platform.run(max_time=scenario.max_time)
        result.report = report
        if scenario.expect_finished and not report.all_pes_finished:
            unfinished = sorted(name for name, done in report.finished.items()
                                if not done)
            result.failures.append(
                f"unfinished PEs: {', '.join(unfinished) or 'unknown'}"
            )
        for check in list(bundle.checks) + list(scenario.checks):
            result.failures.extend(_run_check(check, report))
        result.passed = not result.failures
    except Exception as exc:
        if not capture_errors:
            raise
        result.error = f"{type(exc).__name__}: {exc}"
        result.passed = False
    finally:
        result.host_seconds = time.perf_counter() - start
        if keep_platform:
            result.platform = platform
    return result


def _build_seeded_workload(scenario: Scenario):
    """Instantiate the workload under the scenario's seed, if any.

    The global ``random`` state is restored afterwards so a serial run
    inside a larger process (e.g. a test session) does not leak
    deterministic RNG state to unrelated code.
    """
    if scenario.seed is None:
        return scenario.build_workload()
    state = random.getstate()
    try:
        random.seed(scenario.seed)
        return scenario.build_workload()
    finally:
        random.setstate(state)


def _run_check(check, report) -> List[str]:
    """Run one result check; returns failure messages (empty = passed)."""
    label = getattr(check, "__name__", None) or "check"
    try:
        verdict = check(report)
    except AssertionError as exc:
        return [f"{label}: {exc or 'assertion failed'}"]
    except Exception as exc:
        # A crashing check (e.g. indexing the None result of an unfinished
        # PE) is a failed check, not a failed run: containing it here keeps
        # the other checks' verdicts and the unfinished-PE message visible.
        return [f"{label}: raised {type(exc).__name__}: {exc}"]
    if verdict is None or verdict is True:
        return []
    if verdict is False:
        return [f"{label}: failed"]
    return [str(verdict)]


def _scenario_worker(connection, scenario: Scenario, index: int) -> None:
    """Child-process entry: run one scenario, ship the result back."""
    try:
        result = run_scenario(scenario, index=index)
        connection.send(result)
    except Exception as exc:  # pragma: no cover - transport-level failure
        connection.send(ScenarioResult(
            scenario=scenario.name, params=dict(scenario.params),
            overrides=dict(scenario.overrides), index=index,
            error=f"worker failed: {type(exc).__name__}: {exc}",
        ))
    finally:
        connection.close()


class ExperimentRunner:
    """Executes a scenario list serially or sharded across processes."""

    def __init__(
        self,
        scenarios: Sequence[Scenario],
        *,
        shards: int = 1,
        timeout_s: Optional[float] = None,
        keep_platforms: bool = False,
        start_method: Optional[str] = None,
        recorder=None,
    ) -> None:
        self.scenarios: List[Scenario] = list(scenarios)
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        self.shards = shards
        self.timeout_s = timeout_s
        self.keep_platforms = keep_platforms
        self.start_method = start_method
        #: Optional :class:`repro.api.perf.PerfRecorder`: every completed
        #: run's report is recorded and flushed to ``BENCH_kernel.json``.
        self.recorder = recorder
        if keep_platforms and (shards > 1 or timeout_s is not None):
            raise ValueError(
                "keep_platforms requires a serial in-process run "
                "(shards=1 and no timeout)"
            )

    # -- execution ----------------------------------------------------------------------
    def run(self) -> List[ScenarioResult]:
        """Run every scenario; results come back in scenario order."""
        if not self.scenarios:
            return []
        if self.shards == 1 and self.timeout_s is None:
            results = [
                run_scenario(scenario, index=index,
                             keep_platform=self.keep_platforms)
                for index, scenario in enumerate(self.scenarios)
            ]
        else:
            results = self._run_sharded()
        if self.recorder is not None:
            self.recorder.record_results(results)
            self.recorder.flush()
        return results

    def _run_sharded(self) -> List[ScenarioResult]:
        context = multiprocessing.get_context(self.start_method)
        results: List[Optional[ScenarioResult]] = [None] * len(self.scenarios)
        next_index = 0
        #: index -> (process, parent connection, start timestamp)
        active: Dict[int, tuple] = {}
        try:
            while next_index < len(self.scenarios) or active:
                while next_index < len(self.scenarios) and len(active) < self.shards:
                    index = next_index
                    next_index += 1
                    parent_conn, child_conn = context.Pipe(duplex=False)
                    process = context.Process(
                        target=_scenario_worker,
                        args=(child_conn, self.scenarios[index], index),
                        daemon=True,
                    )
                    process.start()
                    child_conn.close()
                    active[index] = (process, parent_conn, time.monotonic())
                finished = []
                for index, (process, conn, started) in active.items():
                    scenario = self.scenarios[index]
                    if conn.poll(0):
                        try:
                            results[index] = conn.recv()
                        except EOFError:
                            results[index] = self._failure(
                                scenario, index, "worker closed the pipe "
                                "without sending a result")
                        process.join()
                        finished.append(index)
                    elif not process.is_alive():
                        # The worker may have sent its result between the
                        # poll above and this liveness check — drain once
                        # before declaring it dead.
                        if conn.poll(0):
                            try:
                                results[index] = conn.recv()
                            except EOFError:
                                results[index] = self._failure(
                                    scenario, index, "worker closed the pipe "
                                    "without sending a result")
                        else:
                            results[index] = self._failure(
                                scenario, index,
                                f"worker process died "
                                f"(exit code {process.exitcode})")
                        process.join()
                        finished.append(index)
                    elif (self.timeout_s is not None
                          and time.monotonic() - started > self.timeout_s):
                        process.terminate()
                        process.join()
                        result = self._failure(
                            scenario, index,
                            f"timed out after {self.timeout_s:.3g}s")
                        result.timed_out = True
                        result.host_seconds = time.monotonic() - started
                        results[index] = result
                        finished.append(index)
                for index in finished:
                    process, conn, _ = active.pop(index)
                    conn.close()
                if not finished and active:
                    # Host-side worker-process polling, not simulation code.
                    time.sleep(_POLL_INTERVAL_S)  # noqa: RC002
        finally:
            for process, conn, _ in active.values():
                process.terminate()
                process.join()
                conn.close()
        return list(results)  # type: ignore[arg-type]

    @staticmethod
    def _failure(scenario: Scenario, index: int, message: str) -> ScenarioResult:
        return ScenarioResult(
            scenario=scenario.name, params=dict(scenario.params),
            overrides=dict(scenario.overrides), index=index, error=message,
        )


def run_tasks(config, tasks, max_time: Optional[int] = None, host=None):
    """Build a platform for ``config``, place ``tasks`` and run it.

    The programmatic one-shot entry point (used by the ``run_platform``
    back-compat shim); returns the :class:`SimulationReport`.
    """
    platform = Platform(config, host=host)
    platform.add_tasks(list(tasks))
    return platform.run(max_time=max_time)
