"""repro.api — the declarative experiment layer.

The single public entry point for composing and running experiments on the
co-simulation platform:

* :class:`PlatformBuilder` — fluent, validating construction of
  :class:`~repro.soc.config.PlatformConfig`;
* :class:`Scenario` / :func:`scenario_grid` — declarative experiment
  points referencing workloads by registry name (see
  :data:`repro.sw.workload`);
* :class:`ExperimentRunner` / :func:`run_scenario` — serial or
  process-sharded execution with per-run timeouts and seeded
  reproducibility;
* :class:`~repro.store.ResultStore` / :class:`~repro.store.SweepMonitor`
  — content-addressed result caching and live sweep telemetry
  (re-exported from :mod:`repro.store`);
* :func:`results_table` / :func:`write_json` / :func:`write_csv` —
  structured result output;
* :func:`drive` / :func:`single_memory_testbench` — micro-benchmark
  helpers for driving one memory module directly.

A complete experiment in a few lines::

    from repro.api import ExperimentRunner, PlatformBuilder, scenario_grid

    base = PlatformBuilder().pes(4).wrapper_memories(1).cycle_driven().build()
    scenarios = scenario_grid(
        "gsm", base, "gsm_encode",
        config_grid={"num_memories": [1, 2, 4]},
        params={"frames": 2, "seed": 42},
    )
    results = ExperimentRunner(scenarios, shards=2).run()
    for result in results:
        result.raise_for_status()
"""

from ..sw.registry import (
    Workload,
    WorkloadError,
    WorkloadRegistry,
    as_workload,
    workload,
)
from ..cache import CacheConfig, CacheGeometry, WritePolicy
from ..check import CheckConfig
from ..dev import DmaConfig, DmaDriver, IrqControllerConfig, TimerConfig
from ..obs import ObsConfig, render_timeline, write_timeseries_csv, write_timeseries_json, write_trace
from .builder import BuilderError, COST_MODELS, DELAY_PRESETS, PlatformBuilder
from .micro import DriveResult, MemoryTestbench, drive, single_memory_testbench
from .perf import BenchResult, PerfRecorder, PerfTimer, bench_json_path, load_bench_entries
from .results import kernel_rates_table, results_table, write_csv, write_json
from .runner import ExperimentRunner, run_scenario, run_tasks
from .scenario import Scenario, ScenarioResult, expand_grid, scenario_grid
from ..store import ResultStore, SweepMonitor, UncacheableScenarioError

__all__ = [
    "BenchResult",
    "BuilderError",
    "COST_MODELS",
    "CacheConfig",
    "CacheGeometry",
    "CheckConfig",
    "DELAY_PRESETS",
    "DmaConfig",
    "DmaDriver",
    "DriveResult",
    "ExperimentRunner",
    "IrqControllerConfig",
    "MemoryTestbench",
    "ObsConfig",
    "PerfRecorder",
    "PerfTimer",
    "PlatformBuilder",
    "ResultStore",
    "Scenario",
    "ScenarioResult",
    "SweepMonitor",
    "TimerConfig",
    "UncacheableScenarioError",
    "Workload",
    "WorkloadError",
    "WorkloadRegistry",
    "WritePolicy",
    "as_workload",
    "bench_json_path",
    "drive",
    "expand_grid",
    "kernel_rates_table",
    "load_bench_entries",
    "render_timeline",
    "results_table",
    "run_scenario",
    "run_tasks",
    "scenario_grid",
    "single_memory_testbench",
    "workload",
    "write_csv",
    "write_json",
    "write_timeseries_csv",
    "write_timeseries_json",
    "write_trace",
]
