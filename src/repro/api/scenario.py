"""Declarative scenarios: *what* to run, separated from *how* it is driven.

A :class:`Scenario` bundles one platform configuration with one workload
reference (a registry name or an inline factory), the workload parameters,
the run limits and the expected-result checks.  Scenarios are plain data:
when the workload is referenced by registry name, a scenario pickles, which
is what lets :class:`~repro.api.runner.ExperimentRunner` shard a grid of
scenarios across processes.

:func:`scenario_grid` expands a cartesian grid of configuration overrides
and workload parameters into a scenario list — the declarative replacement
for the hand-written nested sweep loops in the evaluation benches.
"""

from __future__ import annotations

import dataclasses
import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..soc.config import PlatformConfig
from ..soc.stats import SimulationReport
from ..sw.registry import ResultCheck, Workload, as_workload, workload as _registry

#: A workload reference: a registry name, or an inline factory with the
#: same signature as registered factories (``factory(config, **params)``).
WorkloadRef = Union[str, Callable[..., object]]


def display_value(value: object) -> object:
    """Human-readable form of a grid value (enums render as their value)."""
    if isinstance(value, enum.Enum):
        return value.value
    return value


def expand_grid(grid: Dict[str, Sequence]) -> List[Dict[str, object]]:
    """Cartesian product of a parameter grid, in deterministic order."""
    if not grid:
        return [{}]
    names = sorted(grid)
    combinations = itertools.product(*(grid[name] for name in names))
    return [dict(zip(names, values)) for values in combinations]


@dataclass
class Scenario:
    """One named, reproducible experiment point."""

    #: Scenario name (used as the result label).
    name: str
    #: The platform to build (typically from :class:`PlatformBuilder`).
    config: PlatformConfig
    #: Workload reference: registry name or inline factory.
    workload: WorkloadRef
    #: Keyword parameters handed to the workload factory.
    params: Dict[str, object] = field(default_factory=dict)
    #: Optional simulated-time bound passed to ``Platform.run``.
    max_time: Optional[int] = None
    #: Seed applied to ``random`` before the workload is instantiated.
    seed: Optional[int] = None
    #: Extra result checks, run after the workload's own checks.
    checks: Tuple[ResultCheck, ...] = ()
    #: Fail the scenario if any PE did not run to completion.
    expect_finished: bool = True
    #: Configuration overrides this scenario was expanded from (labels).
    overrides: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a scenario needs a non-empty name")
        if not isinstance(self.config, PlatformConfig):
            raise TypeError(
                f"scenario {self.name!r}: config must be a PlatformConfig, "
                f"got {type(self.config).__name__}"
            )
        if not (isinstance(self.workload, str) or callable(self.workload)):
            raise TypeError(
                f"scenario {self.name!r}: workload must be a registry name "
                f"or a factory callable"
            )

    # -- workload resolution ---------------------------------------------------------
    def build_workload(self) -> Workload:
        """Instantiate the referenced workload for this scenario's config."""
        if isinstance(self.workload, str):
            return _registry.create(self.workload, self.config, **self.params)
        return as_workload(self.workload(self.config, **self.params))

    @property
    def workload_name(self) -> str:
        """Printable name of the workload reference."""
        if isinstance(self.workload, str):
            return self.workload
        return getattr(self.workload, "__name__", repr(self.workload))

    # -- content addressing ------------------------------------------------------
    def cache_key(self, code_version: Optional[str] = None) -> str:
        """Stable content key of this scenario (see :mod:`repro.store`).

        Two scenarios share a key exactly when they describe the same
        simulation under the same code: canonicalized config, registry
        workload name, params, seed, run limits and checks all equal —
        dict ordering never matters.  Raises
        :class:`~repro.store.hashing.UncacheableScenarioError` for inline
        workload factories, whose behaviour no content key can observe.
        """
        from ..store.hashing import scenario_key
        return scenario_key(self, code_version=code_version)


@dataclass
class ScenarioResult:
    """Outcome of running one scenario."""

    #: Name of the scenario that produced this result.
    scenario: str
    #: Workload parameters the scenario ran with.
    params: Dict[str, object] = field(default_factory=dict)
    #: Configuration overrides of the grid point (empty for ad-hoc runs).
    overrides: Dict[str, object] = field(default_factory=dict)
    #: The simulation report (``None`` when the run crashed or timed out).
    report: Optional[SimulationReport] = None
    #: True when the run completed and every check passed.
    passed: bool = False
    #: Messages of failed checks.
    failures: List[str] = field(default_factory=list)
    #: Error string when the run raised or the worker process died.
    error: Optional[str] = None
    #: True when the per-run host timeout expired.
    timed_out: bool = False
    #: Host seconds the scenario took end to end (build + run + checks).
    host_seconds: float = 0.0
    #: Position of the scenario in the experiment list.
    index: int = 0
    #: The platform instance (serial in-process runs with
    #: ``keep_platforms=True`` only; never crosses a process boundary).
    platform: object = None
    #: Content key the result is stored under (runs with a result store
    #: only; ``None`` for uncacheable scenarios and store-less runs).
    cache_key: Optional[str] = None
    #: True when this result came out of the store instead of a fresh
    #: simulation.  Runtime provenance, like ``platform``: deliberately
    #: excluded from :meth:`as_dict` so a cached re-run serialises
    #: byte-identically to the cold run that produced it.
    cached: bool = False

    # -- views ------------------------------------------------------------------------
    def row(self) -> Dict[str, object]:
        """Flat row for tables and CSV export."""
        row: Dict[str, object] = {"scenario": self.scenario}
        row.update({key: display_value(value)
                    for key, value in self.overrides.items()})
        row.update({key: display_value(value)
                    for key, value in self.params.items()})
        status = "ok" if self.passed else (
            "timeout" if self.timed_out else ("error" if self.error else "failed")
        )
        row["status"] = status
        if self.report is not None:
            row["simulated_cycles"] = self.report.simulated_cycles
            row["wallclock_seconds"] = round(self.report.wallclock_seconds, 4)
            speed = self.report.simulation_speed_or_none
            row["simulation_speed"] = None if speed is None else round(speed, 1)
        return row

    def as_dict(self) -> dict:
        """JSON-friendly view of the result (excludes the platform)."""
        return {
            "scenario": self.scenario,
            "params": {key: display_value(value)
                       for key, value in self.params.items()},
            "overrides": {key: display_value(value)
                          for key, value in self.overrides.items()},
            "passed": self.passed,
            "failures": list(self.failures),
            "error": self.error,
            "timed_out": self.timed_out,
            "host_seconds": self.host_seconds,
            "index": self.index,
            "cache_key": self.cache_key,
            "report": None if self.report is None else self.report.as_dict(),
        }

    @property
    def timeseries(self) -> List[dict]:
        """The run's metrics time-series (``repro.obs``); empty without a
        report or with the metrics head off."""
        return self.report.timeseries if self.report is not None else []

    @property
    def obs_summary(self) -> Optional[dict]:
        """The run's observability summary (``None`` when obs was off)."""
        return self.report.obs_summary if self.report is not None else None

    def raise_for_status(self) -> "ScenarioResult":
        """Raise ``RuntimeError`` unless the scenario passed; else return self."""
        if not self.passed:
            details = self.error or "; ".join(self.failures) or "did not pass"
            raise RuntimeError(f"scenario {self.scenario!r} failed: {details}")
        return self


def scenario_grid(
    name: str,
    base_config: PlatformConfig,
    workload: WorkloadRef,
    *,
    config_grid: Optional[Dict[str, Sequence]] = None,
    param_grid: Optional[Dict[str, Sequence]] = None,
    params: Optional[Dict[str, object]] = None,
    max_time: Optional[int] = None,
    seed: Optional[int] = None,
    checks: Tuple[ResultCheck, ...] = (),
    expect_finished: bool = True,
) -> List[Scenario]:
    """Expand grids of config overrides and workload params into scenarios.

    ``config_grid`` keys must be ``PlatformConfig`` fields; ``param_grid``
    keys are workload parameters.  The cartesian product of both grids is
    expanded in deterministic (sorted-key) order and every point becomes a
    scenario named ``{name}[{overrides}]``.
    """
    config_points = expand_grid(config_grid or {})
    param_points = expand_grid(param_grid or {})
    base_params = dict(params or {})
    scenarios: List[Scenario] = []
    for config_overrides in config_points:
        config = (dataclasses.replace(base_config, **config_overrides)
                  if config_overrides else base_config)
        for param_overrides in param_points:
            merged_params = dict(base_params)
            merged_params.update(param_overrides)
            label_parts = [f"{key}={display_value(value)}" for key, value in
                           sorted({**config_overrides, **param_overrides}.items())]
            label = ",".join(label_parts)
            scenarios.append(Scenario(
                name=f"{name}[{label}]" if label else name,
                config=config,
                workload=workload,
                params=merged_params,
                max_time=max_time,
                seed=seed,
                checks=checks,
                expect_finished=expect_finished,
                overrides=dict(config_overrides, **param_overrides),
            ))
    return scenarios
