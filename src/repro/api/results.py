"""Structured result output: tables, JSON and CSV writers.

The experiment runner hands back :class:`ScenarioResult` objects; these
helpers render them for humans (:func:`results_table`) or persist them for
downstream tooling (:func:`write_json`, :func:`write_csv`) — replacing the
bespoke printing loops of the evaluation benches.
"""

from __future__ import annotations

import csv
import json
from typing import Iterable, List, Optional, Sequence

from ..soc.stats import format_table
from .perf import BenchResult
from .scenario import ScenarioResult


def _columns(rows: List[dict]) -> List[str]:
    """Union of all row keys, first-seen order, so sparse grids render."""
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    return columns


def results_table(results: Iterable[ScenarioResult],
                  columns: Optional[List[str]] = None) -> str:
    """Aligned text table over the flat rows of every result."""
    rows = [result.row() for result in results]
    if columns is None and rows:
        columns = _columns(rows)
    return format_table(rows, columns)


def kernel_rates_table(results: Iterable[ScenarioResult],
                       bench: str = "") -> str:
    """Aligned table of normalized kernel throughput per scenario.

    Renders the same rates recorded into ``BENCH_kernel.json``
    (events/sec, activations/sec, cycles/sec) for human-readable bench
    output; results without a report are skipped.
    """
    rows = []
    for result in results:
        if result.report is None:
            continue
        record = BenchResult.from_scenario_result(bench, result)
        rows.append({
            "scenario": result.scenario,
            "wall s": round(record.wallclock_seconds, 3),
            "delta cycles": record.delta_cycles,
            "activations": record.process_activations,
            "events/s": round(record.events_per_second),
            "activations/s": round(record.activations_per_second),
            "cycles/s": round(record.cycles_per_second),
        })
    return format_table(rows)


def write_json(results: Sequence[ScenarioResult], path: str, *,
               indent: int = 2) -> str:
    """Write the full structured results (reports included) as JSON."""
    payload = {
        "schema": "repro.api.results/v1",
        "count": len(results),
        "passed": sum(1 for result in results if result.passed),
        "results": [result.as_dict() for result in results],
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=indent, default=str)
        handle.write("\n")
    return path


def write_csv(results: Sequence[ScenarioResult], path: str) -> str:
    """Write the flat result rows as CSV (one line per scenario)."""
    rows = [result.row() for result in results]
    columns = _columns(rows)
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns, restval="")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return path
