"""Fluent platform builder wrapping :class:`~repro.soc.config.PlatformConfig`.

The builder is the declarative front door for composing platforms::

    config = (PlatformBuilder()
              .pes(4)
              .crossbar()
              .wrapper_memories(2)
              .cycle_driven(memory_work=4, pe_work=12)
              .build())

Every method stages one aspect of the configuration and returns the builder,
so platform descriptions read as a single expression.  :meth:`build`
validates the staged values (on top of ``PlatformConfig``'s own invariant
checks) and returns a plain :class:`PlatformConfig`; :meth:`build_platform`
additionally instantiates the :class:`~repro.soc.platform.Platform`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence, Union

from ..cache.geometry import CacheConfig, CacheError, CacheGeometry, WritePolicy
from ..check.config import CheckConfig
from ..dev.config import DmaConfig, IrqControllerConfig, TimerConfig
from ..fabric import canonical_kind
from ..memory.latency import LatencyModel
from ..memory.protocol import Endianness
from ..noc.config import NocConfig
from ..obs.config import ObsConfig
from ..soc.config import (
    ArbitrationKind,
    InterconnectKind,
    MemoryKind,
    PlatformConfig,
)
from ..sw.instruction_costs import ARM7_LIKE, FAST_CORE, CostModel
from ..wrapper.delays import WrapperDelays

#: Named wrapper-delay presets accepted by :meth:`PlatformBuilder.delays`.
DELAY_PRESETS = {
    "default": WrapperDelays,
    "sram": WrapperDelays.sram_like,
    "sdram": WrapperDelays.sdram_like,
}

#: Named cost models accepted by :meth:`PlatformBuilder.cost_model`.
COST_MODELS = {
    "arm7": ARM7_LIKE,
    "fast": FAST_CORE,
}

_CONFIG_FIELDS = {f.name for f in dataclasses.fields(PlatformConfig)}


class BuilderError(ValueError):
    """Raised when the builder is given inconsistent or invalid values."""


class PlatformBuilder:
    """Composable, validating front end for :class:`PlatformConfig`."""

    def __init__(self, base: Optional[PlatformConfig] = None) -> None:
        self._overrides: Dict[str, object] = {}
        if base is not None:
            if not isinstance(base, PlatformConfig):
                raise BuilderError(
                    f"base must be a PlatformConfig, got {type(base).__name__}"
                )
            # Shallow per-field copy (asdict() would recursively turn nested
            # dataclasses like WrapperDelays into plain dicts).
            self._overrides.update(
                {f.name: getattr(base, f.name)
                 for f in dataclasses.fields(base)}
            )

    @classmethod
    def from_config(cls, config: PlatformConfig) -> "PlatformBuilder":
        """A builder pre-seeded with every field of ``config``."""
        return cls(base=config)

    # -- staging helpers -----------------------------------------------------------
    def _set(self, **fields: object) -> "PlatformBuilder":
        self._overrides.update(fields)
        return self

    def _positive_int(self, value: object, what: str) -> int:
        if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
            raise BuilderError(f"{what} must be a positive integer, got {value!r}")
        return value

    # -- topology ----------------------------------------------------------------------
    def pes(self, count: int) -> "PlatformBuilder":
        """Number of processing elements."""
        return self._set(num_pes=self._positive_int(count, "PE count"))

    def memories(self, count: int,
                 kind: Union[MemoryKind, str] = MemoryKind.WRAPPER
                 ) -> "PlatformBuilder":
        """Number of dynamic shared memories and their model."""
        if isinstance(kind, str):
            try:
                kind = MemoryKind(kind)
            except ValueError:
                raise BuilderError(
                    f"unknown memory kind {kind!r}; use one of "
                    f"{[k.value for k in MemoryKind]}"
                ) from None
        return self._set(num_memories=self._positive_int(count, "memory count"),
                         memory_kind=kind)

    def wrapper_memories(self, count: int) -> "PlatformBuilder":
        """``count`` host-backed wrapper memories (the paper's model)."""
        return self.memories(count, MemoryKind.WRAPPER)

    def modeled_memories(self, count: int) -> "PlatformBuilder":
        """``count`` fully-modelled baseline memories."""
        return self.memories(count, MemoryKind.MODELED)

    def capacity(self, capacity_bytes: Optional[int]) -> "PlatformBuilder":
        """Simulated capacity per memory (``None`` = unlimited wrapper)."""
        if capacity_bytes is not None:
            self._positive_int(capacity_bytes, "memory capacity")
        return self._set(memory_capacity_bytes=capacity_bytes)

    # -- interconnect -----------------------------------------------------------------
    def crossbar(self, arbitration_cycles: Optional[int] = None
                 ) -> "PlatformBuilder":
        """Use the crossbar interconnect."""
        self._set(interconnect=InterconnectKind.CROSSBAR)
        if arbitration_cycles is not None:
            self._set(arbitration_cycles=arbitration_cycles)
        return self

    def mesh(self, rows: Optional[int] = None, cols: Optional[int] = None,
             *, flit_bytes: int = 4, link_cycles: int = 1,
             router_cycles: int = 1, buffer_packets: int = 2,
             memory_nodes: Optional[tuple] = None,
             pe_nodes: Optional[tuple] = None) -> "PlatformBuilder":
        """Use the packet-switched 2D-mesh NoC interconnect.

        ``rows``/``cols`` default to a near-square mesh sized for the
        platform; the remaining knobs are the link width (bytes per flit),
        link/router pipeline latencies in cycles, the per-port input
        buffer depth (packets) and optional explicit node placements.
        """
        try:
            noc = NocConfig(
                rows=rows, cols=cols, flit_bytes=flit_bytes,
                link_cycles=link_cycles, router_cycles=router_cycles,
                buffer_packets=buffer_packets,
                memory_nodes=(tuple(memory_nodes)
                              if memory_nodes is not None else None),
                pe_nodes=tuple(pe_nodes) if pe_nodes is not None else None,
            )
        except ValueError as exc:
            raise BuilderError(f"invalid mesh description: {exc}") from exc
        return self._set(interconnect=InterconnectKind.MESH, noc=noc)

    def partitions(self, count: int,
                   epoch_cycles: Optional[int] = None) -> "PlatformBuilder":
        """Partitioned (PDES) execution: shard the mesh into ``count``
        spatial partitions, each simulated by its own worker process.

        ``count`` must be a power of two (1 disables partitioning);
        ``epoch_cycles`` overrides the conservative-sync window — the
        modelled latency of every boundary-crossing link.
        """
        count = self._positive_int(count, "partition count")
        if count & (count - 1):
            raise BuilderError(
                f"partition count must be a power of two, got {count}")
        if epoch_cycles is not None:
            self._positive_int(epoch_cycles, "epoch cycles")
        return self._set(partitions=count, pdes_epoch_cycles=epoch_cycles)

    def arbitration(self,
                    kind: Union[ArbitrationKind, str] = ArbitrationKind.ROUND_ROBIN,
                    *,
                    weights=None,
                    priority_order=None,
                    schedule=None) -> "PlatformBuilder":
        """Arbitration policy of every grant point of the interconnect.

        Works on every topology — the bus channel, each crossbar channel
        and each mesh slave server apply the same policy.  ``kind`` is an
        :class:`~repro.soc.config.ArbitrationKind` or its value string;
        the fabric aliases (``"priority"``, ``"weighted"``, ``"rr"``...)
        are accepted.  Optional parameters:

        * ``weights`` — weighted-RR grant budgets: a sequence indexed by
          master id, or a ``{master_id: weight}`` mapping (gaps get 1);
        * ``priority_order`` — fixed-priority order, most important first;
        * ``schedule`` — TDMA slot schedule of master ids.

        Unset parameters fall back to PE-count-derived defaults (see
        :meth:`~repro.soc.config.PlatformConfig.arbitration_spec`).
        """
        if isinstance(kind, str):
            try:
                kind = ArbitrationKind(canonical_kind(kind))
            except ValueError:
                raise BuilderError(
                    f"unknown arbitration {kind!r}; use one of "
                    f"{[k.value for k in ArbitrationKind]}"
                ) from None
        elif not isinstance(kind, ArbitrationKind):
            raise BuilderError(
                f"arbitration kind must be an ArbitrationKind or string, "
                f"got {type(kind).__name__}"
            )
        staged: Dict[str, object] = {"arbitration": kind}
        if weights is not None:
            if isinstance(weights, dict):
                if not weights:
                    raise BuilderError("arbitration weights must not be empty")
                if not all(isinstance(master, int)
                           and not isinstance(master, bool) and master >= 0
                           for master in weights):
                    raise BuilderError(
                        f"arbitration weight keys must be non-negative "
                        f"master ids, got {sorted(weights, key=repr)}"
                    )
                span = max(weights) + 1
                weights = tuple(weights.get(i, 1) for i in range(span))
            staged["arbitration_weights"] = tuple(weights)
        if priority_order is not None:
            staged["arbitration_priority"] = tuple(priority_order)
        if schedule is not None:
            staged["arbitration_schedule"] = tuple(schedule)
        return self._set(**staged)

    def shared_bus(self,
                   arbitration: Union[ArbitrationKind, str, None] = None,
                   arbitration_cycles: Optional[int] = None) -> "PlatformBuilder":
        """Use the shared bus, optionally selecting an arbitration policy.

        ``arbitration`` left unset keeps whatever :meth:`arbitration`
        staged (or the round-robin default); passing a value delegates to
        :meth:`arbitration`, so the same kinds and aliases are accepted.
        """
        self._set(interconnect=InterconnectKind.SHARED_BUS)
        if arbitration is not None:
            self.arbitration(arbitration)
        if arbitration_cycles is not None:
            self._set(arbitration_cycles=arbitration_cycles)
        return self

    # -- memory hierarchy --------------------------------------------------------------
    def l1_cache(self, sets: int = 64, ways: int = 2, line_bytes: int = 32,
                 policy: Union[WritePolicy, str] = WritePolicy.WRITE_BACK,
                 hit_cycles: int = 1) -> "PlatformBuilder":
        """Give every PE an L1 data cache (MSI-coherent across PEs).

        ``policy`` is a :class:`~repro.cache.geometry.WritePolicy` or its
        value string (``"write_back"`` / ``"write_through"``).
        """
        if isinstance(policy, str):
            try:
                policy = WritePolicy(policy)
            except ValueError:
                raise BuilderError(
                    f"unknown write policy {policy!r}; use one of "
                    f"{[p.value for p in WritePolicy]}"
                ) from None
        try:
            config = CacheConfig(
                geometry=CacheGeometry(sets=sets, ways=ways,
                                       line_bytes=line_bytes),
                policy=policy, hit_cycles=hit_cycles,
            )
        except CacheError as exc:
            raise BuilderError(f"invalid cache description: {exc}") from exc
        return self._set(cache=config)

    def no_cache(self) -> "PlatformBuilder":
        """Remove the L1 layer: the flat (bit-identical) PE -> bus model."""
        return self._set(cache=None)

    def monitored(self, enable: bool = True) -> "PlatformBuilder":
        """Wrap every memory in a timing-transparent :class:`BusMonitor`
        (per-memory transaction counts and latency percentiles in reports)."""
        return self._set(monitor_memories=bool(enable))

    # -- sanitizers ------------------------------------------------------------------
    def sanitize(self, *, race: bool = True, protocol: bool = True,
                 coherence: bool = True, max_reports: int = 32,
                 capture_stacks: bool = True) -> "PlatformBuilder":
        """Attach the simulation sanitizers (:mod:`repro.check`).

        Enables the happens-before data-race detector, the protocol
        checkers (lock leaks, reserve reentry, port lifecycle, register
        misuse) and — on cached platforms — the coherence invariant
        scanner.  Sanitizers are timing-transparent: simulated time and
        every kernel counter are identical with and without them.
        Findings land in ``report.sanitizer_reports``.
        """
        try:
            config = CheckConfig(race=race, protocol=protocol,
                                 coherence=coherence,
                                 max_reports=max_reports,
                                 capture_stacks=capture_stacks)
        except ValueError as exc:
            raise BuilderError(f"invalid sanitizer description: {exc}") from exc
        return self._set(check=config)

    def no_sanitize(self) -> "PlatformBuilder":
        """Detach every sanitizer (the default, zero-overhead platform)."""
        return self._set(check=None)

    # -- observability -----------------------------------------------------------------
    def _merge_obs(self, **changes: object) -> "PlatformBuilder":
        """Stage an :class:`ObsConfig`, merging into one already staged
        (so ``.trace().metrics(...)`` composes)."""
        staged = self._overrides.get("obs")
        base = staged if isinstance(staged, ObsConfig) else None
        fields = {
            "trace": base.trace if base else False,
            "metrics_interval_cycles": (base.metrics_interval_cycles
                                        if base else 0),
            "categories": base.categories if base else None,
            "max_events": base.max_events if base else 200_000,
            "host_profile": base.host_profile if base else False,
        }
        fields.update(changes)
        try:
            config = ObsConfig(**fields)
        except ValueError as exc:
            raise BuilderError(
                f"invalid observability description: {exc}") from exc
        return self._set(obs=config)

    def trace(self, *, categories: Optional[Sequence[str]] = None,
              max_events: int = 200_000,
              host_profile: bool = False) -> "PlatformBuilder":
        """Attach timeline tracing (:mod:`repro.obs`).

        Records per-PE task/wait spans, per-master fabric transactions,
        cache fills/writebacks, DMA bursts, IRQ edges and ``ctx.span``
        workload annotations in simulated time; export with
        :func:`repro.obs.write_trace` or ``python -m repro.obs.export``.
        ``categories`` filters at emission; ``max_events`` bounds the
        buffer (overflow counts as dropped).  Tracing is
        timing-transparent: simulated time and every kernel counter are
        identical with and without it.
        """
        return self._merge_obs(
            trace=True,
            categories=None if categories is None else tuple(categories),
            max_events=max_events, host_profile=host_profile)

    def metrics(self, interval_cycles: int = 1000) -> "PlatformBuilder":
        """Attach the metrics time-series sampler (:mod:`repro.obs`).

        Snapshots counter deltas (bus/link utilization, cache hit rate,
        runnable depth, IRQ pending mask, outstanding transactions) every
        ``interval_cycles`` simulated clock cycles into
        ``report.timeseries``.  Composes with :meth:`trace`.
        """
        self._positive_int(interval_cycles, "metrics interval cycles")
        return self._merge_obs(metrics_interval_cycles=interval_cycles)

    def no_obs(self) -> "PlatformBuilder":
        """Detach observability (the default, zero-hook platform)."""
        return self._set(obs=None)

    # -- devices ---------------------------------------------------------------------
    def _add_device(self, config: object) -> "PlatformBuilder":
        staged = tuple(self._overrides.get("devices", ()))
        return self._set(devices=staged + (config,))

    def irq_controller(self, lines: int = 32) -> "PlatformBuilder":
        """Attach the platform interrupt controller with ``lines`` IRQ lines.

        Optional when DMA engines or timers are declared — those imply a
        default controller — but explicit declaration controls the line
        count.
        """
        if any(isinstance(device, IrqControllerConfig)
               for device in self._overrides.get("devices", ())):
            raise BuilderError("the platform already has an interrupt "
                               "controller")
        try:
            return self._add_device(IrqControllerConfig(lines=lines))
        except ValueError as exc:
            raise BuilderError(str(exc)) from exc

    def dma(self, count: int = 1, burst_words: int = 64,
            irq_line: Optional[int] = None) -> "PlatformBuilder":
        """Attach ``count`` DMA engines (each its own fabric master).

        ``irq_line`` pins the completion line of a single engine; with
        ``count > 1`` lines are always auto-assigned.
        """
        self._positive_int(count, "DMA engine count")
        self._positive_int(burst_words, "DMA burst words")
        if count > 1 and irq_line is not None:
            raise BuilderError("irq_line only applies to a single DMA engine")
        builder = self
        for _ in range(count):
            builder = builder._add_device(
                DmaConfig(burst_words=burst_words, irq_line=irq_line))
        return builder

    def timer(self, compare_cycles: int = 1000, periodic: bool = False,
              auto_start: bool = False,
              irq_line: Optional[int] = None) -> "PlatformBuilder":
        """Attach one compare-match timer (IRQ on expiry)."""
        self._positive_int(compare_cycles, "timer compare cycles")
        return self._add_device(TimerConfig(
            compare_cycles=compare_cycles, periodic=bool(periodic),
            auto_start=bool(auto_start), irq_line=irq_line,
        ))

    def no_devices(self) -> "PlatformBuilder":
        """Drop every staged device: the device-free platform."""
        return self._set(devices=())

    # -- timing -----------------------------------------------------------------------
    def clock_period(self, period: int) -> "PlatformBuilder":
        """Clock period in kernel time units."""
        return self._set(clock_period=self._positive_int(period, "clock period"))

    def cycle_driven(self, memory_work: int = 4, pe_work: int = 12
                     ) -> "PlatformBuilder":
        """Cycle-driven co-simulation: every module evaluated every cycle.

        ``memory_work``/``pe_work`` are the host work units per cycle per
        memory wrapper FSM and per ISS, reproducing the cost structure the
        paper's speed-degradation experiment measures.
        """
        if memory_work < 0 or pe_work < 0:
            raise BuilderError("per-cycle work units must be >= 0")
        return self._set(idle_tick_memories=True, idle_tick_work=memory_work,
                         pe_tick_work=pe_work)

    def event_driven(self) -> "PlatformBuilder":
        """Pure event-driven simulation (modules evaluated on demand)."""
        return self._set(idle_tick_memories=False, pe_tick_work=0)

    # -- models --------------------------------------------------------------------------
    def delays(self, delays: Union[WrapperDelays, str]) -> "PlatformBuilder":
        """Wrapper FSM delay parameters, or a preset name (sram/sdram)."""
        if isinstance(delays, str):
            try:
                delays = DELAY_PRESETS[delays]()
            except KeyError:
                raise BuilderError(
                    f"unknown delay preset {delays!r}; use one of "
                    f"{sorted(DELAY_PRESETS)}"
                ) from None
        if not isinstance(delays, WrapperDelays):
            raise BuilderError(
                f"delays must be a WrapperDelays or preset name, got "
                f"{type(delays).__name__}"
            )
        return self._set(wrapper_delays=delays)

    def latency(self, model: LatencyModel) -> "PlatformBuilder":
        """Latency model of the fully-modelled baseline memories."""
        return self._set(modeled_latency=model)

    def endianness(self, order: Union[Endianness, str]) -> "PlatformBuilder":
        """Byte order of the simulated architecture."""
        if isinstance(order, str):
            try:
                order = Endianness(order)
            except ValueError:
                raise BuilderError(
                    f"unknown endianness {order!r}; use 'little' or 'big'"
                ) from None
        return self._set(endianness=order)

    def cost_model(self, model: Union[CostModel, str]) -> "PlatformBuilder":
        """Cost model of local PE computation, or a name (arm7/fast)."""
        if isinstance(model, str):
            try:
                model = COST_MODELS[model]
            except KeyError:
                raise BuilderError(
                    f"unknown cost model {model!r}; use one of "
                    f"{sorted(COST_MODELS)}"
                ) from None
        return self._set(cost_model=model)

    def address_map(self, base: int, stride: int) -> "PlatformBuilder":
        """Base address and stride of the memory windows on the bus."""
        if not isinstance(base, int) or isinstance(base, bool) or base < 0:
            raise BuilderError(
                f"base address must be a non-negative integer, got {base!r}"
            )
        return self._set(
            memory_base_address=base,
            memory_window_stride=self._positive_int(stride, "window stride"),
        )

    def named(self, name: str) -> "PlatformBuilder":
        """Name of the top module (shows up in reports)."""
        if not name or not isinstance(name, str):
            raise BuilderError("platform name must be a non-empty string")
        return self._set(name=name)

    def replace(self, **fields: object) -> "PlatformBuilder":
        """Escape hatch: stage raw ``PlatformConfig`` fields by name."""
        unknown = set(fields) - _CONFIG_FIELDS
        if unknown:
            raise BuilderError(
                f"unknown PlatformConfig field(s): {sorted(unknown)}"
            )
        return self._set(**fields)

    # -- terminal operations -------------------------------------------------------------
    def build(self) -> PlatformConfig:
        """Validate the staged values and produce the configuration."""
        try:
            return PlatformConfig(**self._overrides)
        except (TypeError, ValueError) as exc:
            raise BuilderError(f"invalid platform description: {exc}") from exc

    def build_platform(self, host=None):
        """Build the configuration and instantiate the platform."""
        from ..soc.platform import Platform

        return Platform(self.build(), host=host)

    def __repr__(self) -> str:
        staged = ", ".join(f"{k}={v!r}" for k, v in sorted(self._overrides.items()))
        return f"PlatformBuilder({staged})"
