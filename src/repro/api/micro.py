"""Micro-benchmark helpers: drive a single memory module directly.

The operation-cost and capacity experiments (E3, E5, E6) exercise one
memory module at a time, without a full platform around it.  These helpers
replace the per-bench copies of the command-driving loop:

* :func:`drive` feeds one packed command (or raw bus request) to a memory
  module's ``serve`` generator and reports the response, the simulated
  slave cycles it took, and the host time spent serving it;
* :func:`single_memory_testbench` assembles the minimal bus + one-memory
  fabric used by instruction-accurate (ISS) experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..fabric import BusOp, BusRequest
from ..interconnect.bus import SharedBus
from ..kernel import Module
from ..memory.protocol import MemCommand, REGISTER_WINDOW_BYTES
from ..wrapper.api import SharedMemoryAPI
from ..wrapper.shared_memory import SharedMemoryWrapper
from .perf import PerfTimer


@dataclass
class DriveResult:
    """Outcome of serving one command on a memory module."""

    #: The memory's response object (opcode dependent).
    response: object
    #: Simulated slave cycles observed while serving the command.
    cycles: int
    #: Host seconds spent inside the ``serve`` generator.
    host_seconds: float

    @property
    def host_us(self) -> float:
        """Host microseconds (the unit the cost tables print)."""
        return self.host_seconds * 1e6


def drive(memory, command: Union[MemCommand, BusRequest], *,
          offset: int = 0, master_id: int = 0) -> DriveResult:
    """Serve one command on ``memory`` and measure cycles and host time.

    ``command`` is either a high-level :class:`MemCommand` (packed into a
    register-window write, as the wrapper API does) or a pre-built
    :class:`BusRequest` (e.g. an I/O-array burst).  The cycle count follows
    the slave handshake: one cycle per ``yield`` plus the completing cycle.
    """
    if isinstance(command, MemCommand):
        request = BusRequest(master_id, BusOp.WRITE, 0,
                             burst_data=command.to_words())
    else:
        request = command
    generator = memory.serve(request, offset)
    cycles = 0
    with PerfTimer() as timer:
        while True:
            try:
                next(generator)
                cycles += 1
            except StopIteration as stop:
                cycles += 1
                response = stop.value
                break
    return DriveResult(
        response=response,
        cycles=cycles,
        host_seconds=timer.seconds,
    )


@dataclass
class MemoryTestbench:
    """The minimal fabric around one shared memory module."""

    top: Module
    bus: SharedBus
    memory: object
    port: object
    api: SharedMemoryAPI


def single_memory_testbench(
    memory=None, *,
    base_address: int = 0x1000_0000,
    clock_period: int = 10,
    master_name: str = "pe0",
    name: str = "tb",
) -> MemoryTestbench:
    """Build ``top ── bus ── memory`` with one master port and API.

    ``memory`` defaults to a fresh :class:`SharedMemoryWrapper`.  The
    caller owns attaching a processor (ISS or task processor) to
    ``testbench.port`` and running a :class:`~repro.kernel.Simulator` over
    ``testbench.top``.
    """
    top = Module(name)
    bus = SharedBus("bus", period=clock_period, parent=top)
    if memory is None:
        memory = SharedMemoryWrapper(name="smem0")
    bus.attach_slave("smem0", base_address, REGISTER_WINDOW_BYTES, memory)
    port = bus.master_port(0, name=master_name)
    api = SharedMemoryAPI(port, base_address=base_address, sm_addr=0)
    return MemoryTestbench(top=top, bus=bus, memory=memory, port=port, api=api)
