"""Live sweep telemetry: structured worker events, JSONL log, progress.

A sharded sweep used to be a black box until it returned; this module makes
the fleet observable.  Workers (and the runner itself) emit
:class:`SweepEvent` records — ``scheduled`` / ``started`` / ``heartbeat`` /
``cache_hit`` / ``finished`` / ``failed`` / ``timeout`` — which a
:class:`SweepMonitor` folds into:

* a **JSONL event log** written next to the result store (one event per
  line, append-only, corrupt lines skipped on read), the durable record a
  dashboard or a post-mortem reads;
* a **live progress line** (``\\r``-rewritten on TTYs) showing done /
  cached / failed / running counts and elapsed host time;
* an **end-of-sweep summary** naming the stragglers (slowest scenarios)
  and every failure.

Every scenario appears in the log exactly once per terminal state: one
``scheduled`` plus exactly one of ``cache_hit`` / ``finished`` / ``failed``
/ ``timeout``; ``started`` and ``heartbeat`` events in between carry the
liveness signal for long runs.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, TextIO

#: Terminal states: exactly one of these per scenario per sweep.
TERMINAL_KINDS = ("cache_hit", "finished", "failed", "timeout")

#: Every event kind the log may contain.
EVENT_KINDS = ("sweep_begin", "scheduled", "started", "heartbeat",
               *TERMINAL_KINDS, "sweep_end")


@dataclass(frozen=True)
class SweepEvent:
    """One structured telemetry record of a sweep."""

    #: Event kind (one of :data:`EVENT_KINDS`).
    kind: str
    #: Scenario name the event concerns ("" for sweep-level events).
    scenario: str = ""
    #: Position of the scenario in the experiment list (-1 for sweep-level).
    index: int = -1
    #: Wall-clock timestamp (``time.time()``) at emission.
    wall_time: float = 0.0
    #: Host seconds attributable to the event (run duration, heartbeat age).
    host_seconds: float = 0.0
    #: Small key counters (simulated cycles, total scenarios, ...).
    counters: Dict[str, object] = field(default_factory=dict)
    #: Free-text detail (error message, timeout description).
    detail: str = ""

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"unknown sweep event kind {self.kind!r}")

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "scenario": self.scenario,
            "index": self.index,
            "wall_time": self.wall_time,
            "host_seconds": self.host_seconds,
            "counters": dict(self.counters),
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SweepEvent":
        return cls(
            kind=str(payload.get("kind", "")),
            scenario=str(payload.get("scenario", "")),
            index=int(payload.get("index", -1)),
            wall_time=float(payload.get("wall_time", 0.0)),
            host_seconds=float(payload.get("host_seconds", 0.0)),
            counters=dict(payload.get("counters") or {}),
            detail=str(payload.get("detail", "")),
        )

    @classmethod
    def now(cls, kind: str, scenario: str = "", index: int = -1, *,
            host_seconds: float = 0.0,
            counters: Optional[Dict[str, object]] = None,
            detail: str = "") -> "SweepEvent":
        """Build an event stamped with the current wall clock."""
        return cls(kind=kind, scenario=scenario, index=index,
                   wall_time=time.time(), host_seconds=host_seconds,
                   counters=dict(counters or {}), detail=detail)


def read_events(path: str) -> List[SweepEvent]:
    """Parse a JSONL event log; unreadable lines are skipped, not fatal."""
    events: List[SweepEvent] = []
    try:
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                    events.append(SweepEvent.from_dict(payload))
                except (ValueError, TypeError):
                    continue
    except OSError:
        return []
    return events


def sweep_progress(events: List[SweepEvent]) -> dict:
    """Fold an event stream into one progress snapshot.

    Returns total / per-state counts, the currently running scenarios with
    the age of their last liveness signal, the slowest finished scenarios
    (``stragglers``) and every failure — the payload behind the monitor's
    progress line and the dashboard's ``/api/progress``.
    """
    total: Optional[int] = None
    state: Dict[str, str] = {}
    last_signal: Dict[str, float] = {}
    host_seconds: Dict[str, float] = {}
    failures: List[dict] = []
    ended = False
    for event in events:
        if event.kind == "sweep_begin":
            counted = event.counters.get("total")
            total = int(counted) if isinstance(counted, (int, float)) else None
            continue
        if event.kind == "sweep_end":
            ended = True
            continue
        name = event.scenario
        if event.kind == "scheduled":
            state.setdefault(name, "scheduled")
        elif event.kind == "started":
            state[name] = "running"
            last_signal[name] = event.wall_time
        elif event.kind == "heartbeat":
            last_signal[name] = event.wall_time
            host_seconds[name] = event.host_seconds
        elif event.kind in TERMINAL_KINDS:
            state[name] = event.kind
            host_seconds[name] = event.host_seconds
            if event.kind in ("failed", "timeout"):
                failures.append({"scenario": name, "kind": event.kind,
                                 "detail": event.detail})
    counts = {kind: 0 for kind in ("scheduled", "running", *TERMINAL_KINDS)}
    for value in state.values():
        counts[value] = counts.get(value, 0) + 1
    now = time.time()
    running = [{"scenario": name,
                "last_signal_age_s": round(max(0.0, now - stamp), 3)}
               for name, stamp in sorted(last_signal.items())
               if state.get(name) == "running"]
    done = counts["finished"] + counts["failed"] + counts["timeout"]
    stragglers = sorted(
        ({"scenario": name, "host_seconds": seconds}
         for name, seconds in host_seconds.items()
         if state.get(name) in ("finished", "failed", "timeout")),
        key=lambda row: -row["host_seconds"])
    return {
        "total": total if total is not None else len(state),
        "counts": counts,
        "done": done + counts["cache_hit"],
        "ended": ended,
        "running": running,
        "stragglers": stragglers[:5],
        "failures": failures,
    }


class SweepMonitor:
    """Receives sweep events: logs them, renders live progress, summarizes.

    ``log_path`` appends every event as one JSON line (the durable record);
    ``stream`` receives the live progress line, rewritten in place when the
    stream is a TTY (or when ``live=True`` forces it) and silent otherwise,
    so batch logs are not flooded with carriage returns.
    """

    def __init__(self, *, log_path: Optional[str] = None,
                 stream: Optional[TextIO] = None,
                 live: Optional[bool] = None) -> None:
        self.log_path = log_path
        self.stream = stream if stream is not None else sys.stderr
        if live is None:
            live = bool(getattr(self.stream, "isatty", lambda: False)())
        self.live = live
        self.events: List[SweepEvent] = []
        self._log_handle = open(log_path, "a") if log_path else None
        self._started_monotonic = time.monotonic()

    # -- event intake --------------------------------------------------------
    def emit(self, event: SweepEvent) -> SweepEvent:
        """Record one event (log line + progress refresh); returns it."""
        self.events.append(event)
        if self._log_handle is not None:
            json.dump(event.as_dict(), self._log_handle,
                      separators=(",", ":"))
            self._log_handle.write("\n")
            self._log_handle.flush()
        if self.live:
            self.stream.write("\r" + self.progress_line())
            if event.kind == "sweep_end":
                self.stream.write("\n")
            self.stream.flush()
        return event

    def begin(self, total: int) -> None:
        self.emit(SweepEvent.now("sweep_begin", counters={"total": total}))

    def end(self) -> None:
        self.emit(SweepEvent.now("sweep_end",
                                 counters=dict(self.progress()["counts"])))

    def close(self) -> None:
        if self._log_handle is not None:
            self._log_handle.close()
            self._log_handle = None

    def __enter__(self) -> "SweepMonitor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- views ---------------------------------------------------------------
    def progress(self) -> dict:
        """Current progress snapshot (see :func:`sweep_progress`)."""
        return sweep_progress(self.events)

    def progress_line(self) -> str:
        """One-line live progress summary."""
        snapshot = self.progress()
        counts = snapshot["counts"]
        elapsed = time.monotonic() - self._started_monotonic
        return (f"sweep {snapshot['done']}/{snapshot['total']} done "
                f"({counts['cache_hit']} cached, {counts['failed']} failed, "
                f"{counts['timeout']} timed out) · "
                f"{counts['running']} running · {elapsed:.1f}s")

    def summary(self) -> dict:
        """End-of-sweep digest: counts, stragglers, failures."""
        return self.progress()

    def render_summary(self) -> str:
        """Human-readable end-of-sweep summary (stragglers + failures)."""
        snapshot = self.progress()
        counts = snapshot["counts"]
        lines = [
            f"sweep: {snapshot['done']}/{snapshot['total']} done — "
            f"{counts['finished']} simulated, {counts['cache_hit']} cached, "
            f"{counts['failed']} failed, {counts['timeout']} timed out",
        ]
        if snapshot["stragglers"]:
            slowest = ", ".join(
                f"{row['scenario']} ({row['host_seconds']:.2f}s)"
                for row in snapshot["stragglers"])
            lines.append(f"stragglers: {slowest}")
        for failure in snapshot["failures"]:
            lines.append(f"{failure['kind']}: {failure['scenario']}"
                         f" — {failure['detail'] or 'no detail'}")
        return "\n".join(lines)
