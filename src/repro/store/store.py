"""Persistent scenario-result store: SQLite-backed, content-addressed.

:class:`ResultStore` maps :func:`~repro.store.hashing.scenario_key` content
keys to pickled :class:`~repro.api.scenario.ScenarioResult` payloads plus a
JSON summary row the dashboard can query without unpickling.  Design rules:

* **schema-versioned** — the database carries its schema version in
  ``PRAGMA user_version``; opening a store written by a different schema
  rebuilds it empty instead of misreading old rows;
* **corruption-tolerant** — a row whose payload fails to unpickle (or a
  database file that fails to open) is treated as a cache *miss*, never a
  crash: the bad row is dropped, the bad file is rebuilt, and the sweep
  recomputes what it lost;
* **incremental** — every :meth:`put` commits immediately, so a sweep
  killed mid-grid has everything it completed on disk and the next run
  resumes from there.

The store keeps in-memory :attr:`stats` (hits / misses / puts / corrupt /
invalidated) for progress reporting and tests.
"""

from __future__ import annotations

import dataclasses
import io
import json
import os
import pickle
import sqlite3
import time
from typing import Dict, List, Optional

#: Bump whenever the table layout or payload format changes: stores written
#: by other schema versions are rebuilt empty on open.
SCHEMA_VERSION = 1

#: Default store filename (inside a sweep's artifact directory).
DEFAULT_FILENAME = "sweep.sqlite"


class ResultStore:
    """Content-addressed persistent cache of scenario results."""

    def __init__(self, path: str) -> None:
        self.path = os.fspath(path)
        self.stats: Dict[str, int] = {
            "hits": 0, "misses": 0, "puts": 0, "corrupt": 0, "invalidated": 0,
        }
        self._conn = self._open()

    # -- lifecycle -----------------------------------------------------------
    def _open(self) -> sqlite3.Connection:
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        try:
            return self._connect()
        except sqlite3.DatabaseError:
            # Not a database (truncated file, foreign format): a corrupt
            # store is an empty store, not a crash.
            self.stats["corrupt"] += 1
            os.replace(self.path, self.path + ".corrupt")
            return self._connect()

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.path)
        version = conn.execute("PRAGMA user_version").fetchone()[0]
        if version not in (0, SCHEMA_VERSION):
            # Another schema generation wrote this file; rebuild empty.
            conn.execute("DROP TABLE IF EXISTS results")
            version = 0
        conn.execute(
            "CREATE TABLE IF NOT EXISTS results ("
            " key TEXT PRIMARY KEY,"
            " scenario TEXT NOT NULL,"
            " workload TEXT NOT NULL,"
            " passed INTEGER NOT NULL,"
            " host_seconds REAL NOT NULL,"
            " created REAL NOT NULL,"
            " hits INTEGER NOT NULL DEFAULT 0,"
            " summary TEXT NOT NULL,"
            " payload BLOB NOT NULL)"
        )
        if version == 0:
            conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION}")
        conn.commit()
        return conn

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- cache interface -----------------------------------------------------
    def get(self, key: str):
        """The cached :class:`ScenarioResult` for ``key``, or ``None``.

        A row that exists but cannot be decoded counts as corrupt, is
        deleted, and reads as a miss.
        """
        row = self._conn.execute(
            "SELECT payload FROM results WHERE key = ?", (key,)).fetchone()
        if row is None:
            self.stats["misses"] += 1
            return None
        try:
            result = _restricted_loads(row[0])
            if type(result).__name__ != "ScenarioResult":
                raise pickle.UnpicklingError(
                    f"payload is a {type(result).__name__}")
        except Exception:
            self.stats["corrupt"] += 1
            self.stats["misses"] += 1
            self._conn.execute("DELETE FROM results WHERE key = ?", (key,))
            self._conn.commit()
            return None
        self.stats["hits"] += 1
        self._conn.execute(
            "UPDATE results SET hits = hits + 1 WHERE key = ?", (key,))
        self._conn.commit()
        return result

    def put(self, key: str, result, *, workload: str = "") -> None:
        """Persist one result under ``key`` (committed immediately).

        The live platform handle (serial ``keep_platforms`` runs) never
        enters the store; the stored payload always reads back with
        ``platform=None`` and ``cached=False``.
        """
        stored = dataclasses.replace(result, platform=None, cached=False)
        payload = pickle.dumps(stored, protocol=pickle.HIGHEST_PROTOCOL)
        summary = json.dumps({
            "scenario": stored.scenario,
            "workload": workload,
            "params": {k: _plain(v) for k, v in stored.params.items()},
            "overrides": {k: _plain(v) for k, v in stored.overrides.items()},
            "passed": stored.passed,
            "failures": list(stored.failures),
            "error": stored.error,
            "host_seconds": stored.host_seconds,
            "simulated_cycles": (stored.report.simulated_cycles
                                 if stored.report is not None else None),
        }, default=str)
        self._conn.execute(
            "INSERT OR REPLACE INTO results "
            "(key, scenario, workload, passed, host_seconds, created, hits, "
            " summary, payload) VALUES (?, ?, ?, ?, ?, ?, 0, ?, ?)",
            (key, stored.scenario, workload, int(stored.passed),
             stored.host_seconds, time.time(), summary, payload),
        )
        self._conn.commit()
        self.stats["puts"] += 1

    def invalidate(self, key: Optional[str] = None) -> int:
        """Drop one cached result (or every result with ``key=None``);
        returns the number of rows removed."""
        if key is None:
            cursor = self._conn.execute("DELETE FROM results")
        else:
            cursor = self._conn.execute(
                "DELETE FROM results WHERE key = ?", (key,))
        self._conn.commit()
        removed = cursor.rowcount if cursor.rowcount >= 0 else 0
        self.stats["invalidated"] += removed
        return removed

    # -- queries -------------------------------------------------------------
    def __len__(self) -> int:
        return self._conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]

    def __contains__(self, key: str) -> bool:
        return self._conn.execute(
            "SELECT 1 FROM results WHERE key = ?", (key,)).fetchone() is not None

    def keys(self) -> List[str]:
        """Every stored content key, sorted by scenario name."""
        return [row[0] for row in self._conn.execute(
            "SELECT key FROM results ORDER BY scenario, key")]

    def rows(self) -> List[dict]:
        """Summary rows for tables and the dashboard (no payload decode).

        A row whose summary JSON is unreadable still appears (the store
        favours visibility over perfection) with an ``"unreadable"`` note.
        """
        rows: List[dict] = []
        for key, scenario, workload, passed, host_seconds, created, hits, \
                summary in self._conn.execute(
                    "SELECT key, scenario, workload, passed, host_seconds, "
                    "created, hits, summary FROM results "
                    "ORDER BY scenario, key"):
            try:
                details = json.loads(summary)
            except ValueError:
                details = {"note": "unreadable summary"}
            row = dict(details)
            row.update({
                "key": key, "scenario": scenario, "workload": workload,
                "passed": bool(passed), "host_seconds": host_seconds,
                "created": created, "hits": hits,
            })
            rows.append(row)
        return rows

    def describe(self) -> str:
        """One-line summary for logs."""
        stats = self.stats
        return (f"store {self.path}: {len(self)} rows "
                f"({stats['hits']} hits / {stats['misses']} misses / "
                f"{stats['puts']} puts this session)")


class _RestrictedUnpickler(pickle.Unpickler):
    """Unpickler that only resolves classes from this package's modules.

    The store only ever contains payloads this package wrote, but the file
    sits on disk where anything may have scribbled on it — refusing
    non-``repro`` globals turns a tampered payload into an ordinary corrupt
    row (a miss) instead of arbitrary object construction.  The allowlist
    is exact: our own package plus the container types stdlib pickling
    legitimately references by global; never ``eval``/``exec``/``getattr``
    or any other builtin with call-time side effects.
    """

    #: Exact stdlib modules a ScenarioResult payload may reference.
    _EXACT_MODULES = frozenset({"collections", "enum"})
    #: Side-effect-free builtins pickling emits as GLOBAL/STACK_GLOBAL.
    _SAFE_BUILTINS = frozenset({
        "set", "frozenset", "dict", "list", "tuple",
        "bytearray", "complex", "range", "slice",
    })

    def find_class(self, module: str, name: str):
        allowed = (
            module == "repro" or module.startswith("repro.")
            or module in self._EXACT_MODULES
            or (module == "builtins" and name in self._SAFE_BUILTINS)
        )
        if allowed:
            return super().find_class(module, name)
        raise pickle.UnpicklingError(
            f"payload references forbidden global {module}.{name}")


def _restricted_loads(payload: bytes):
    return _RestrictedUnpickler(io.BytesIO(payload)).load()


def _plain(value: object) -> object:
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return str(getattr(value, "value", value))
