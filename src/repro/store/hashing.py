"""Stable content hashing of scenarios — the result-store cache key.

A :class:`~repro.api.scenario.Scenario` is plain data (config dataclass +
registry workload name + params + seed + limits), so two scenarios that
describe the same experiment can be given the same *content key*:
:func:`scenario_key` canonicalizes the scenario into a JSON document with
deterministic ordering (dict keys sorted, enums by class+value, dataclasses
by class+field map, floats by ``repr``) and hashes it with SHA-256.  The key
is what :class:`~repro.store.store.ResultStore` indexes results by — equal
key means "this exact simulation has already been run".

Every key is salted with a *code version* (:data:`CODE_VERSION`, bumped with
the package version) so results cached by an older build of the simulator
never masquerade as results of the current one; callers running from a
working tree can pass their own salt (e.g. a git commit hash) for stricter
invalidation.

Not everything is hashable: a scenario whose workload is an inline factory
(not a registry name) has behaviour the key cannot see, and
:func:`scenario_key` raises :class:`UncacheableScenarioError` for it — the
runner treats such scenarios as permanent cache misses.  Result *checks*
are represented by their ``module.qualname`` (their code is covered by the
code-version salt like all other repo code).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Optional

from .. import __version__

#: Schema tag of the canonical document; bump on canonicalization changes.
KEY_SCHEMA = "repro.store.key/v2"

#: Default code-version salt: results cached by one package version are
#: invisible to every other version.
CODE_VERSION = f"repro/{__version__}"


class UncacheableScenarioError(ValueError):
    """The scenario has no stable content key (e.g. an inline workload
    factory, whose behaviour the key cannot observe)."""


def canonical_value(value: object) -> object:
    """Recursively convert ``value`` into a JSON-stable representation.

    The output is deterministic across processes and interpreter runs and
    *unambiguous*: JSON scalars (``None``/bool/int/str) pass through, and
    every other value becomes a ``[tag, ...]`` list whose first element
    names its kind — including plain lists (``["list", ...]``) and dicts
    (``["dict", [[key, value], ...]]``) — so a literal param value such as
    ``["float", "1.0"]`` can never canonicalize to the same document as
    the float ``1.0``, and dict keys ``1`` and ``"1"`` stay distinct.
    Container ordering is preserved for sequences, dict/set entries are
    sorted by their canonical encoding, enums and dataclasses carry their
    class names, and floats go through ``repr`` so the full precision
    participates in the key.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return ["float", repr(value)]
    if isinstance(value, bytes):
        return ["bytes", value.hex()]
    if isinstance(value, enum.Enum):
        return ["enum", _type_name(type(value)), canonical_value(value.value)]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = [[f.name, canonical_value(getattr(value, f.name))]
                  for f in dataclasses.fields(value)]
        return ["dataclass", _type_name(type(value)),
                sorted(fields, key=lambda pair: pair[0])]
    if isinstance(value, dict):
        items = [[canonical_value(key), canonical_value(item)]
                 for key, item in value.items()]
        return ["dict", sorted(items, key=lambda pair: _encode(pair[0]))]
    if isinstance(value, (list, tuple)):
        return ["list"] + [canonical_value(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return ["set", sorted(_encode(canonical_value(item))
                              for item in value)]
    if callable(value):
        return ["callable", _callable_name(value)]
    if hasattr(value, "__dict__"):
        return ["object", _type_name(type(value)),
                canonical_value(vars(value))]
    return ["repr", repr(value)]


def _encode(canonical: object) -> str:
    """Deterministic JSON encoding of an already-canonical node (used to
    order dict/set entries)."""
    return json.dumps(canonical, sort_keys=True, separators=(",", ":"))


def _type_name(cls: type) -> str:
    return f"{cls.__module__}.{cls.__qualname__}"


def _callable_name(fn: object) -> str:
    module = getattr(fn, "__module__", None) or "?"
    qualname = getattr(fn, "__qualname__", None) or repr(fn)
    return f"{module}.{qualname}"


def canonical_scenario(scenario, *, code_version: Optional[str] = None) -> dict:
    """The canonical key document of one scenario (pre-hash form).

    Raises :class:`UncacheableScenarioError` when the scenario's workload
    is an inline factory: the registry *name* is the only workload
    reference whose behaviour is pinned by repo code (and therefore by the
    code-version salt).
    """
    if not isinstance(scenario.workload, str):
        raise UncacheableScenarioError(
            f"scenario {scenario.name!r} references an inline workload "
            f"factory ({_callable_name(scenario.workload)}); only "
            f"registry-named workloads have a stable content key"
        )
    return {
        "schema": KEY_SCHEMA,
        "code_version": code_version or CODE_VERSION,
        "name": scenario.name,
        # Partitioning is execution strategy, not simulated hardware: a
        # partitioned run only enters the store when bit-identical to the
        # sequential one, so both share a key (normalized to partitions=1).
        "config": canonical_value(dataclasses.replace(
            scenario.config, partitions=1, pdes_epoch_cycles=None)),
        "workload": scenario.workload,
        "params": canonical_value(scenario.params),
        "seed": scenario.seed,
        "max_time": scenario.max_time,
        "expect_finished": scenario.expect_finished,
        "checks": [_callable_name(check) for check in scenario.checks],
        "overrides": canonical_value(scenario.overrides),
    }


def scenario_key(scenario, *, code_version: Optional[str] = None) -> str:
    """SHA-256 content key of a scenario (64 hex chars).

    Equal keys mean "the same simulation under the same code": the same
    canonicalized config, workload name, params, seed, limits, checks and
    code-version salt.  Dict ordering never matters; any value change —
    one config field, one param, the seed — produces a different key.
    """
    document = canonical_scenario(scenario, code_version=code_version)
    encoded = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()
