"""repro.store — the persistent sweep observatory substrate.

Three pieces that turn :class:`~repro.api.runner.ExperimentRunner` sweeps
from fire-and-forget scripts into an incremental, observable service:

* :mod:`repro.store.hashing` — stable content keys for scenarios
  (:func:`scenario_key`): canonicalized config + workload name + params +
  seed, salted with a code version;
* :mod:`repro.store.store` — :class:`ResultStore`, the SQLite-backed,
  schema-versioned, corruption-tolerant result cache (``get``/``put``/
  ``invalidate``); re-running an unchanged scenario is a cache hit, a
  killed sweep resumes from what it already completed;
* :mod:`repro.store.telemetry` — :class:`SweepEvent` structured worker
  events, the JSONL event log, and :class:`SweepMonitor`'s live progress
  line + straggler/failure summary.

The query front door over all of it is ``python -m repro.analysis.serve``.
"""

from .hashing import (
    CODE_VERSION,
    UncacheableScenarioError,
    canonical_scenario,
    canonical_value,
    scenario_key,
)
from .store import DEFAULT_FILENAME, SCHEMA_VERSION, ResultStore
from .telemetry import (
    EVENT_KINDS,
    TERMINAL_KINDS,
    SweepEvent,
    SweepMonitor,
    read_events,
    sweep_progress,
)

__all__ = [
    "CODE_VERSION",
    "DEFAULT_FILENAME",
    "EVENT_KINDS",
    "ResultStore",
    "SCHEMA_VERSION",
    "SweepEvent",
    "SweepMonitor",
    "TERMINAL_KINDS",
    "UncacheableScenarioError",
    "canonical_scenario",
    "canonical_value",
    "read_events",
    "scenario_key",
    "sweep_progress",
]
