"""Address decoding for the system interconnect.

An :class:`AddressMap` is an ordered collection of non-overlapping
:class:`Region` entries, each mapping a byte-address range onto a slave
object.  The map performs decode (address → slave, local offset) and reverse
lookup (slave → base address), and validates overlaps at construction time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple


class AddressDecodeError(Exception):
    """Raised when an address does not fall into any mapped region."""


class AddressMapConflict(Exception):
    """Raised when two regions overlap or a name is reused."""


@dataclass(frozen=True)
class Region:
    """A contiguous address window assigned to one slave."""

    name: str
    base: int
    size: int
    slave: Any

    def __post_init__(self) -> None:
        if self.base < 0:
            raise ValueError("region base must be non-negative")
        if self.size <= 0:
            raise ValueError("region size must be positive")

    @property
    def end(self) -> int:
        """First byte address *after* the region."""
        return self.base + self.size

    def contains(self, address: int) -> bool:
        """True if ``address`` falls inside this region."""
        return self.base <= address < self.end

    def overlaps(self, other: "Region") -> bool:
        """True if this region shares any address with ``other``."""
        return self.base < other.end and other.base < self.end


class AddressMap:
    """The system memory map used by buses and crossbars to route requests."""

    def __init__(self) -> None:
        self._regions: List[Region] = []

    def add_region(self, name: str, base: int, size: int, slave: Any) -> Region:
        """Register a new window; raises :class:`AddressMapConflict` on overlap."""
        region = Region(name, base, size, slave)
        for existing in self._regions:
            if existing.name == name:
                raise AddressMapConflict(f"region name {name!r} already used")
            if existing.overlaps(region):
                raise AddressMapConflict(
                    f"region {name!r} [{base:#x}, {region.end:#x}) overlaps "
                    f"{existing.name!r} [{existing.base:#x}, {existing.end:#x})"
                )
        self._regions.append(region)
        self._regions.sort(key=lambda r: r.base)
        return region

    @property
    def regions(self) -> List[Region]:
        """Registered regions sorted by base address."""
        return list(self._regions)

    def decode(self, address: int) -> Tuple[Any, int, Region]:
        """Resolve ``address`` to ``(slave, offset_within_region, region)``."""
        region = self.find_region(address)
        if region is None:
            raise AddressDecodeError(f"no slave mapped at address {address:#x}")
        return region.slave, address - region.base, region

    def find_region(self, address: int) -> Optional[Region]:
        """Return the region containing ``address``, or ``None``."""
        # Linear scan is fine: maps have a handful of regions and decode is
        # not the bottleneck compared with slave behaviour.
        for region in self._regions:
            if region.contains(address):
                return region
        return None

    def region_by_name(self, name: str) -> Region:
        """Look a region up by its name."""
        for region in self._regions:
            if region.name == name:
                return region
        raise KeyError(f"no region named {name!r}")

    def base_of(self, slave: Any) -> int:
        """Base address of the first region mapping ``slave``."""
        for region in self._regions:
            if region.slave is slave:
                return region.base
        raise KeyError(f"slave {slave!r} is not mapped")

    def slaves(self) -> List[Any]:
        """Distinct slaves in base-address order."""
        seen: List[Any] = []
        for region in self._regions:
            if region.slave not in seen:
                seen.append(region.slave)
        return seen

    def total_mapped_bytes(self) -> int:
        """Sum of the sizes of every region."""
        return sum(region.size for region in self._regions)

    def __len__(self) -> int:
        return len(self._regions)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        parts = ", ".join(
            f"{r.name}@[{r.base:#x},{r.end:#x})" for r in self._regions
        )
        return f"AddressMap({parts})"
