"""Bus transaction data types.

The interconnect carries memory-mapped word transactions between masters
(processing elements, DMA engines) and slaves (static memories, the dynamic
shared-memory wrappers, peripherals).  A transaction is a
:class:`BusRequest` answered by a :class:`BusResponse`.

Scalar transfers move one word of ``size`` bytes.  Burst transfers carry a
list of words (``burst_data`` for writes, ``burst_length`` for reads); the
paper's wrapper uses bursts for its *I/O arrays* when indexed structures are
exchanged.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional


class BusOp(enum.Enum):
    """The two operations a memory-mapped transaction may perform."""

    READ = "read"
    WRITE = "write"


class ResponseStatus(enum.Enum):
    """Completion status of a transaction."""

    OK = "ok"
    #: The slave understood the request but refused it (e.g. reservation held
    #: by another master, allocation beyond the configured capacity).
    NACK = "nack"
    #: No slave is mapped at the requested address.
    DECODE_ERROR = "decode_error"
    #: The slave detected an internal error (bad opcode, invalid pointer...).
    SLAVE_ERROR = "slave_error"


#: Default word width in bytes used throughout the platform (ARM-style 32-bit).
WORD_SIZE = 4


@dataclass
class BusRequest:
    """A single master-initiated transfer."""

    master_id: int
    op: BusOp
    address: int
    #: Word payload for scalar writes; ignored for reads.
    data: int = 0
    #: Transfer size in bytes (1, 2 or 4) for scalar transfers.
    size: int = WORD_SIZE
    #: Payload words for burst writes (takes precedence over ``data``).
    burst_data: Optional[List[int]] = None
    #: Number of words to read for burst reads.
    burst_length: int = 0
    #: Free-form label used by monitors (e.g. "fetch", "api.alloc").
    tag: str = ""

    def __post_init__(self) -> None:
        if self.size not in (1, 2, WORD_SIZE):
            raise ValueError(f"unsupported transfer size {self.size}")
        if self.address < 0:
            raise ValueError("address must be non-negative")
        if self.burst_length < 0:
            raise ValueError("burst length must be non-negative")

    @property
    def is_burst(self) -> bool:
        """True when the request transfers more than one word."""
        return bool(self.burst_data) or self.burst_length > 0

    @property
    def word_count(self) -> int:
        """Number of data words moved by this request."""
        if self.burst_data is not None:
            return len(self.burst_data)
        if self.burst_length:
            return self.burst_length
        return 1

    def describe(self) -> str:
        """Short human-readable description used in logs and error messages."""
        kind = "burst " if self.is_burst else ""
        return (
            f"{kind}{self.op.value} m{self.master_id} @0x{self.address:08x} "
            f"({self.word_count} word{'s' if self.word_count != 1 else ''})"
        )


@dataclass
class BusResponse:
    """The slave's answer to a :class:`BusRequest`."""

    status: ResponseStatus = ResponseStatus.OK
    #: Word returned by scalar reads (or a status/result word for wrappers).
    data: int = 0
    #: Words returned by burst reads.
    burst_data: List[int] = field(default_factory=list)
    #: Cycles the slave spent serving the request (filled by the slave).
    slave_cycles: int = 0
    #: Total cycles from grant to completion (filled by the interconnect).
    total_cycles: int = 0

    @property
    def ok(self) -> bool:
        """True when the transaction completed successfully."""
        return self.status is ResponseStatus.OK


def decode_error_response() -> BusResponse:
    """A canned response for requests that hit an unmapped address."""
    return BusResponse(status=ResponseStatus.DECODE_ERROR)
