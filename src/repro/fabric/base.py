"""The interconnect fabric base class.

:class:`Fabric` owns everything the platform's interconnects have in
common, so a topology only implements transport timing:

* slave attachment through one shared, validating
  :class:`~repro.fabric.address_map.AddressMap` path (overlapping,
  zero-size or name-clashing regions fail identically on every topology);
* the :class:`~repro.fabric.port.MasterPort` issue/complete lifecycle —
  port registration, request posting, response delivery and per-master
  wait accounting;
* snooper registration, fired once per completed transfer at the
  topology's completion point (cache coherence hooks, protocol checkers);
* decode-error accounting and the immediate-completion error path;
* uniform :class:`~repro.fabric.stats.BusStats` accounting plus a
  per-transaction latency sample, emitted by :meth:`interconnect_stats`
  with the same ``percentile_summary`` columns for every topology;
* arbitration-policy creation from one :class:`ArbitrationSpec`, so every
  arbitration point of a topology (single bus channel, per-slave crossbar
  channels, mesh slave servers) applies the same pluggable policy.

Subclasses implement :meth:`_post` (route a request into the transport)
and may hook :meth:`_on_attach` (per-slave transport state) and
:meth:`_decorate_stats` (topology-specific report blocks).  They must
assign ``self._anchor_event`` to one of their kernel events — the fabric
uses it to observe simulated time and to bind completion events on the
immediate decode-error path.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional, Union

from ..kernel import Event, Module
from .address_map import AddressMap, Region
from .transaction import (
    BusOp,
    BusRequest,
    BusResponse,
    ResponseStatus,
    decode_error_response,
)
from .policy import (
    ArbitrationPolicy,
    ArbitrationSpec,
    FixedPriorityArbiter,
    RoundRobinArbiter,
    TdmaArbiter,
    WeightedRoundRobinArbiter,
)
from .port import BusSlave, MasterPort
from .stats import BusStats, percentile_summary


def _infer_kind(policy: ArbitrationPolicy) -> str:
    """Reported policy kind of a ready instance (legacy ``arbiter=``)."""
    if isinstance(policy, TdmaArbiter):
        return "tdma"
    if isinstance(policy, WeightedRoundRobinArbiter):
        return "weighted_round_robin"
    if isinstance(policy, FixedPriorityArbiter):
        return "fixed_priority"
    if isinstance(policy, RoundRobinArbiter):
        return "round_robin"
    return type(policy).__name__


class Fabric(Module):
    """Common machinery of every interconnect topology.

    Parameters
    ----------
    name:
        Module name.
    period:
        Clock period of the interconnect in kernel time units.
    arbitration_cycles:
        Fixed overhead cycles added to every granted transfer (address
        phase); topologies without a per-transfer address phase pass 0.
    arbitration:
        Arbitration policy description: an :class:`ArbitrationSpec`, a
        policy-kind string, a ready :class:`ArbitrationPolicy` instance
        (single-arbitration-point topologies only) or ``None`` for the
        round-robin default.
    """

    def __init__(
        self,
        name: str,
        period: int,
        arbitration_cycles: int = 1,
        arbitration: Union[ArbitrationSpec, ArbitrationPolicy, str, None] = None,
        parent: Optional[Module] = None,
    ) -> None:
        super().__init__(name, parent)
        if period <= 0:
            raise ValueError(f"{type(self).__name__} period must be positive")
        if arbitration_cycles < 0:
            raise ValueError("arbitration cycles must be >= 0")
        self.period = period
        self.arbitration_cycles = arbitration_cycles
        if isinstance(arbitration, ArbitrationPolicy):
            self._policy_instance: Optional[ArbitrationPolicy] = arbitration
            self.arbitration = ArbitrationSpec()
            self._arbitration_kind = _infer_kind(arbitration)
        else:
            self._policy_instance = None
            self.arbitration = ArbitrationSpec.coerce(arbitration)
            self._arbitration_kind = self.arbitration.kind
        self._instance_consumed = False
        #: Policy instances handed out so far (for merged grant reporting).
        self._policies: List[ArbitrationPolicy] = []
        self.address_map = AddressMap()
        self.stats = BusStats()
        self._master_ports: Dict[int, MasterPort] = {}
        self._snoopers: List = []
        #: Port-lifecycle observers (sanitizers): issue hooks fire when a
        #: master posts a request, complete hooks when it is delivered.
        self._issue_hooks: List = []
        self._complete_hooks: List = []
        #: ``total_cycles`` of every completed transaction, in completion
        #: order — the uniform latency column of ``interconnect_stats``.
        #: A packed int64 array: one machine word per transaction, so
        #: million-transfer runs cost megabytes, not a list of boxed ints.
        self._latencies = array("q")
        #: Subclasses must point this at one of their events; the fabric
        #: reads simulated time through it (no event of its own, so the
        #: kernel event set of each topology stays exactly as designed).
        self._anchor_event: Optional[Event] = None

    # -- arbitration -------------------------------------------------------------
    def new_policy(self) -> ArbitrationPolicy:
        """A fresh arbitration policy for one arbitration point.

        Every grant point of a topology calls this once, so all points run
        the same :class:`ArbitrationSpec`-described policy with independent
        state.  A ready policy *instance* passed at construction is handed
        out exactly once (it cannot be cloned): only single-point
        topologies such as the shared bus accept one.
        """
        if self._policy_instance is not None:
            policy, self._policy_instance = self._policy_instance, None
            self._instance_consumed = True
            self._policies.append(policy)
            return policy
        if self._instance_consumed:
            raise RuntimeError(
                f"{self.name}: a ready ArbitrationPolicy instance serves a "
                f"single arbitration point; pass an ArbitrationSpec instead"
            )
        policy = self.arbitration.create()
        self._policies.append(policy)
        return policy

    def _grant(self, policy: ArbitrationPolicy, requesters) -> int:
        """Ask ``policy`` for a winner; ``None`` with requesters pending is
        a policy bug and raises instead of letting the caller's grant loop
        spin (or crash on a ``None`` lookup) without a diagnostic."""
        winner = policy.grant(requesters)
        if winner is None:
            raise RuntimeError(
                f"{self.name}: arbitration policy "
                f"{type(policy).__name__} granted nobody with requesters "
                f"pending ({list(requesters)})"
            )
        return winner

    @property
    def arbitration_policies(self) -> List[ArbitrationPolicy]:
        """The policy instances created for this fabric's grant points."""
        return list(self._policies)

    def merged_grant_counts(self) -> Dict[int, int]:
        """Grants per master id, summed over every arbitration point."""
        merged: Dict[int, int] = {}
        for policy in self._policies:
            for master_id, count in getattr(policy, "grant_counts",
                                            {}).items():
                merged[master_id] = merged.get(master_id, 0) + count
        return merged

    # -- construction-time wiring ------------------------------------------------
    def attach_slave(self, name: str, base: int, size: int,
                     slave: BusSlave) -> None:
        """Map ``slave`` at ``[base, base+size)`` on this fabric.

        The one shared validation path of every topology: overlapping
        regions, reused names, zero/negative sizes and negative bases all
        raise here — identically on bus, crossbar and mesh — before any
        topology-specific transport state is created.
        """
        region = self.address_map.add_region(name, base, size, slave)
        self._on_attach(region, slave)

    def _on_attach(self, region: Region, slave: BusSlave) -> None:
        """Topology hook: build per-slave transport state (default none)."""

    def add_snooper(self, snooper) -> None:
        """Register ``snooper(request, response)``, called once per
        completed transfer at the topology's completion point (cache
        coherence hooks, protocol checkers)."""
        self._snoopers.append(snooper)

    def _fire_snoopers(self, request: BusRequest,
                       response: BusResponse) -> None:
        for snooper in self._snoopers:
            snooper(request, response)

    def add_port_observer(self, on_issue=None, on_complete=None) -> None:
        """Register port-lifecycle hooks.

        ``on_issue(port, request)`` fires when a master posts a request
        (before transport); ``on_complete(port, request, response)`` fires
        at delivery, after snoopers — including the decode-error path
        (which snoopers never see).  Used by :mod:`repro.check`.
        """
        if on_issue is not None:
            self._issue_hooks.append(on_issue)
        if on_complete is not None:
            self._complete_hooks.append(on_complete)

    def _register_port(self, port: MasterPort) -> None:
        if port.master_id in self._master_ports:
            raise ValueError(f"master id {port.master_id} registered twice")
        self._master_ports[port.master_id] = port

    def master_port(self, master_id: int, name: str = "") -> MasterPort:
        """Create (and register) a new master port on this fabric."""
        return MasterPort(self, master_id, name)

    # -- time helpers ------------------------------------------------------------
    def sim_now(self) -> int:
        """Current simulated time (0 before elaboration)."""
        assert self._anchor_event is not None, (
            f"{type(self).__name__} never assigned its anchor event"
        )
        sim = self._anchor_event._sim
        return sim.now if sim is not None else 0

    def time_to_cycles(self, duration: int) -> int:
        """Convert a kernel duration to whole interconnect cycles."""
        return duration // self.period

    # -- master-side entry point ---------------------------------------------------
    def _post(self, port: MasterPort, request: BusRequest) -> None:
        """Route ``request`` into the transport (topology-specific)."""
        raise NotImplementedError

    # -- shared transfer machinery --------------------------------------------------
    def _drive_slave(self, slave: BusSlave, request: BusRequest, offset: int):
        """Advance ``slave.serve`` one interconnect cycle per ``yield``.

        Driven with ``yield from`` inside a topology's channel/server
        process; returns ``(response, slave_cycles)``.
        """
        generator = slave.serve(request, offset)
        cycles = 0
        while True:
            try:
                next(generator)
            except StopIteration as stop:
                cycles += 1
                yield self.period
                response = stop.value if stop.value is not None else BusResponse()
                return response, cycles
            cycles += 1
            yield self.period

    def _finish(self, port: MasterPort, request: BusRequest,
                response: BusResponse) -> None:
        """Complete a transfer: account, snoop, deliver, wake the master."""
        self._account(request, response)
        self._fire_snoopers(request, response)
        for hook in self._complete_hooks:
            hook(port, request, response)
        port._response = response
        port._completion.notify()

    def _complete_decode_error(self, port: MasterPort,
                               request: BusRequest) -> None:
        """Immediate-completion decode-error path (no channel involved).

        Completes after one interconnect cycle with a decode error; the
        completion event may not have been bound yet (that normally
        happens when the master first waits on it), so it is bound
        explicitly here.  The failed transfer is accounted per master
        exactly like a served one, so topology comparisons see the same
        columns.
        """
        self.stats.decode_errors += 1
        response = decode_error_response()
        response.slave_cycles = 1
        response.total_cycles = 1
        self._account(request, response)
        for hook in self._complete_hooks:
            hook(port, request, response)
        port._response = response
        assert self._anchor_event is not None
        sim = self._anchor_event._sim
        if sim is not None:
            port._completion._bind(sim)
        port._completion.notify(self.period)

    # -- accounting ---------------------------------------------------------------
    def _account(self, request: BusRequest, response: BusResponse) -> None:
        self.stats.transactions += 1
        self.stats.busy_cycles += response.total_cycles
        self._latencies.append(response.total_cycles)
        per_master = self.stats.master(request.master_id)
        per_master.transactions += 1
        per_master.words += request.word_count
        per_master.busy_cycles += response.total_cycles
        if request.op is BusOp.READ:
            per_master.reads += 1
        else:
            per_master.writes += 1
        if response.status is not ResponseStatus.OK:
            per_master.errors += 1

    # -- reporting ----------------------------------------------------------------
    def utilization(self, elapsed_time: int) -> float:
        """Fraction of ``elapsed_time`` the fabric spent busy (0.0–1.0).

        The default treats the fabric as one serialized channel (the
        shared-bus view); concurrent topologies override it.
        """
        if elapsed_time <= 0:
            return 0.0
        busy_time = self.stats.busy_cycles * self.period
        return min(1.0, busy_time / elapsed_time)

    def interconnect_stats(self, elapsed_time: int = 0) -> Dict[str, object]:
        """The uniform JSON-ready interconnect block of a platform report.

        Same columns on every topology: the :class:`BusStats` counters
        (with the per-master table), utilization, the end-to-end
        transaction-latency percentiles and the merged arbitration grant
        counts.  Topologies append their own blocks via
        :meth:`_decorate_stats` (the mesh's ``"noc"`` section).
        """
        block: Dict[str, object] = {
            **self.stats.as_dict(),
            "utilization": self.utilization(elapsed_time),
            "latency_percentiles": percentile_summary(self._latencies),
            "arbitration": {
                "kind": self._arbitration_kind,
                "grant_counts": {master_id: count for master_id, count in
                                 sorted(self.merged_grant_counts().items())},
            },
        }
        self._decorate_stats(block, elapsed_time)
        return block

    def _decorate_stats(self, block: Dict[str, object],
                        elapsed_time: int) -> None:
        """Topology hook: add extra report sections (default none)."""
