"""Uniform interconnect statistics shared by every fabric topology.

Whatever transport runs underneath — serialized bus, per-slave crossbar
channels, a packet-switched mesh — the fabric layer accounts every
completed transaction into the same :class:`BusStats`/:class:`MasterStats`
counters, so topology comparisons always see the same columns.

:func:`percentile_summary` is the one latency aggregator of the platform
(per-slave monitors, the NoC's end-to-end packet statistics and the
fabric's own transaction-latency column all use it), nearest-rank so the
reported values are deterministic and always equal to observed samples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional


@dataclass
class MasterStats:
    """Per-master interconnect statistics."""

    transactions: int = 0
    reads: int = 0
    writes: int = 0
    words: int = 0
    busy_cycles: int = 0
    wait_cycles: int = 0
    errors: int = 0

    def as_dict(self) -> Dict[str, int]:
        """JSON-ready view (one row of the per-master stats table)."""
        return {
            "transactions": self.transactions,
            "reads": self.reads,
            "writes": self.writes,
            "words": self.words,
            "busy_cycles": self.busy_cycles,
            "wait_cycles": self.wait_cycles,
            "errors": self.errors,
        }


@dataclass
class BusStats:
    """Aggregate interconnect statistics."""

    transactions: int = 0
    busy_cycles: int = 0
    decode_errors: int = 0
    per_master: Dict[int, MasterStats] = field(default_factory=dict)

    def master(self, master_id: int) -> MasterStats:
        """Statistics record for ``master_id`` (created on first use)."""
        if master_id not in self.per_master:
            self.per_master[master_id] = MasterStats()
        return self.per_master[master_id]

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready view including the per-master breakdown."""
        return {
            "transactions": self.transactions,
            "busy_cycles": self.busy_cycles,
            "decode_errors": self.decode_errors,
            "per_master": {master_id: stats.as_dict() for master_id, stats
                           in sorted(self.per_master.items())},
        }


def _nearest_rank(ordered: List[int], quantile: float) -> int:
    """Nearest-rank percentile of an already-sorted sample."""
    if not ordered:
        return 0
    rank = max(1, math.ceil(quantile * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


def percentile_summary(latencies: Iterable[int]) -> Dict[str, Optional[float]]:
    """p50/p95/max nearest-rank summary of a latency sample.

    An empty sample yields ``{"count": 0, "p50": None, "p95": None,
    "max": None}`` — explicitly *no data*, never a fake ``0`` latency that
    could be mistaken for an observed instant response.
    """
    ordered = sorted(latencies)
    if not ordered:
        return {"count": 0, "p50": None, "p95": None, "max": None}
    return {
        "count": len(ordered),
        "p50": _nearest_rank(ordered, 0.50),
        "p95": _nearest_rank(ordered, 0.95),
        "max": ordered[-1],
    }
