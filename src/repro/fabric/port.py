"""Master- and slave-side endpoints of the interconnect fabric.

These two classes define the *one* memory-access surface of the platform:
processing elements talk to a :class:`MasterPort`, memory modules and
peripherals implement :class:`BusSlave` — and neither side ever sees which
topology (shared bus, crossbar, mesh NoC) carries the transfer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, List, Optional

from ..kernel import Event
from .transaction import BusOp, BusRequest, BusResponse

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .base import Fabric


class BusSlave:
    """Base class for everything that can be mapped on the interconnect.

    Slaves implement either:

    * :meth:`access` and :meth:`latency` — the convenient fixed/function
      latency flavour (static memories, peripherals); or
    * :meth:`serve` directly — a generator the interconnect advances once per
      clock cycle, for cycle-true models (the wrapper FSM).
    """

    def access(self, request: BusRequest, offset: int) -> BusResponse:
        """Perform the access functionally and return the response."""
        raise NotImplementedError(
            f"{type(self).__name__} implements neither access() nor serve()"
        )

    def latency(self, request: BusRequest) -> int:
        """Number of cycles :meth:`serve` should consume (default 1)."""
        return 1

    def serve(self, request: BusRequest, offset: int
              ) -> Generator[None, None, BusResponse]:
        """Cycle-driven service generator.

        Each ``yield`` consumes one interconnect clock cycle; the returned
        value is the transaction response.  The default implementation calls
        :meth:`access` once and stretches the transfer to :meth:`latency`
        cycles.
        """
        cycles = max(1, self.latency(request))
        for _ in range(cycles - 1):
            yield None
        return self.access(request, offset)


class MasterPort:
    """A master-side handle used to issue transactions on an interconnect."""

    def __init__(self, interconnect: "Fabric", master_id: int,
                 name: str = "") -> None:
        self._interconnect = interconnect
        self.master_id = master_id
        self.name = name or f"master{master_id}"
        self._completion = Event(f"{self.name}.completion")
        self._response: Optional[BusResponse] = None
        interconnect._register_port(self)

    @property
    def last_response(self) -> Optional[BusResponse]:
        """The response of the most recently completed transfer."""
        return self._response

    def transfer(self, request: BusRequest
                 ) -> Generator[object, None, BusResponse]:
        """Issue ``request`` and suspend until it completes (``yield from``)."""
        if request.master_id != self.master_id:
            request.master_id = self.master_id
        hooks = self._interconnect._issue_hooks
        if hooks:
            for hook in hooks:
                hook(self, request)
        post_time = self._interconnect.sim_now()
        self._interconnect._post(self, request)
        yield self._completion
        response = self._response
        assert response is not None, "bus completed a transfer without a response"
        wait_cycles = self._interconnect.time_to_cycles(
            self._interconnect.sim_now() - post_time
        )
        stats = self._interconnect.stats.master(self.master_id)
        stats.wait_cycles += max(0, wait_cycles - response.total_cycles)
        return response

    # Convenience wrappers -----------------------------------------------------
    def read(self, address: int, size: int = 4, tag: str = ""
             ) -> Generator[object, None, BusResponse]:
        """Scalar read helper (``yield from port.read(addr)``)."""
        return self.transfer(
            BusRequest(self.master_id, BusOp.READ, address, size=size, tag=tag)
        )

    def write(self, address: int, data: int, size: int = 4, tag: str = ""
              ) -> Generator[object, None, BusResponse]:
        """Scalar write helper."""
        return self.transfer(
            BusRequest(self.master_id, BusOp.WRITE, address, data=data, size=size,
                       tag=tag)
        )

    def burst_read(self, address: int, length: int, tag: str = ""
                   ) -> Generator[object, None, BusResponse]:
        """Burst read helper (``length`` words)."""
        return self.transfer(
            BusRequest(self.master_id, BusOp.READ, address, burst_length=length,
                       tag=tag)
        )

    def burst_write(self, address: int, words: List[int], tag: str = ""
                    ) -> Generator[object, None, BusResponse]:
        """Burst write helper."""
        return self.transfer(
            BusRequest(self.master_id, BusOp.WRITE, address, burst_data=list(words),
                       tag=tag)
        )
