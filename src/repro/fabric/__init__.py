"""repro.fabric — the unified interconnect fabric layer.

One memory-access surface, many transports: every interconnect topology of
the platform (shared bus, crossbar, 2D-mesh NoC) subclasses
:class:`Fabric`, which owns the shared machinery — slave attachment via a
validating address map, the :class:`MasterPort` issue/complete lifecycle,
snooper registration, decode-error accounting, uniform
:class:`BusStats`/:class:`MasterStats` counters with latency percentiles —
while a pluggable :class:`ArbitrationPolicy` family (round-robin,
fixed-priority, weighted round-robin, TDMA) decides who wins each
contended grant, identically on every topology.

Adding an arbitration policy or a topology is a one-class plug-in:
policies implement :meth:`ArbitrationPolicy.grant`, topologies implement
:meth:`Fabric._post` plus their transport timing.
"""

from .address_map import AddressDecodeError, AddressMap, AddressMapConflict, Region
from .base import Fabric
from .policy import (
    POLICY_ALIASES,
    POLICY_KINDS,
    Arbiter,
    ArbitrationPolicy,
    ArbitrationSpec,
    FixedPriorityArbiter,
    RoundRobinArbiter,
    TdmaArbiter,
    WeightedRoundRobinArbiter,
    canonical_kind,
    make_arbiter,
    make_policy,
)
from .port import BusSlave, MasterPort
from .stats import BusStats, MasterStats, percentile_summary
from .transaction import (
    WORD_SIZE,
    BusOp,
    BusRequest,
    BusResponse,
    ResponseStatus,
    decode_error_response,
)

__all__ = [
    "AddressDecodeError",
    "AddressMap",
    "AddressMapConflict",
    "Arbiter",
    "ArbitrationPolicy",
    "ArbitrationSpec",
    "BusOp",
    "BusRequest",
    "BusResponse",
    "BusSlave",
    "BusStats",
    "Fabric",
    "FixedPriorityArbiter",
    "MasterPort",
    "MasterStats",
    "POLICY_ALIASES",
    "POLICY_KINDS",
    "Region",
    "ResponseStatus",
    "RoundRobinArbiter",
    "TdmaArbiter",
    "WORD_SIZE",
    "WeightedRoundRobinArbiter",
    "canonical_kind",
    "decode_error_response",
    "make_arbiter",
    "make_policy",
    "percentile_summary",
]
