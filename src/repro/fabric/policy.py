"""Pluggable arbitration policies of the interconnect fabric.

An arbitration policy chooses which of the masters with a pending request
is granted the contended resource for the next transfer.  Policies are
plain strategy objects, deliberately stateless with respect to the kernel:
the fabric invokes :meth:`ArbitrationPolicy.grant` with the sorted ids of
the requesters and applies the decision, which makes policies trivial to
unit-test and to swap in configuration sweeps.

Four families are provided:

* :class:`RoundRobinArbiter` — fair rotation, the platform default.
* :class:`FixedPriorityArbiter` — lower master id (or an explicit priority
  list) always wins; simple but can starve.
* :class:`WeightedRoundRobinArbiter` — rotation with per-master grant
  budgets: a master keeps the grant for up to ``weight`` consecutive
  transfers before the rotation moves on, so bandwidth shares follow the
  weights while every requester still gets its turn (starvation-free).
* :class:`TdmaArbiter` — time-division slots, useful for predictable MPSoC
  interconnects (work-conserving: an idle slot falls back to round-robin).

Because a fabric may have *several* arbitration points (one per crossbar
channel, one per mesh slave server), policies are usually described by an
:class:`ArbitrationSpec` — a small, picklable value object the fabric turns
into fresh policy instances wherever it needs one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union


class ArbitrationPolicy:
    """Interface shared by all arbitration policies."""

    def grant(self, requesters: Sequence[int]) -> Optional[int]:
        """Pick one master id from ``requesters`` (empty → ``None``)."""
        raise NotImplementedError

    def reset(self) -> None:
        """Forget any internal rotation/slot state."""


#: Historical name of the policy interface (pre-fabric API).
Arbiter = ArbitrationPolicy


class FixedPriorityArbiter(ArbitrationPolicy):
    """Grants the requester with the highest static priority.

    By default lower master ids have higher priority; an explicit priority
    order (most-important first) may be supplied instead.
    """

    def __init__(self, priority_order: Optional[Sequence[int]] = None) -> None:
        self._order = list(priority_order) if priority_order is not None else None
        self.grant_counts: Dict[int, int] = {}

    def grant(self, requesters: Sequence[int]) -> Optional[int]:
        if not requesters:
            return None
        if self._order is None:
            winner = min(requesters)
        else:
            ranked = [m for m in self._order if m in requesters]
            winner = ranked[0] if ranked else min(requesters)
        self.grant_counts[winner] = self.grant_counts.get(winner, 0) + 1
        return winner

    def reset(self) -> None:
        self.grant_counts.clear()


class RoundRobinArbiter(ArbitrationPolicy):
    """Rotating-priority arbitration: the last granted master becomes lowest."""

    def __init__(self) -> None:
        self._last_granted: Optional[int] = None
        self.grant_counts: Dict[int, int] = {}

    def grant(self, requesters: Sequence[int]) -> Optional[int]:
        if not requesters:
            return None
        ordered = sorted(requesters)
        if self._last_granted is None:
            winner = ordered[0]
        else:
            after = [m for m in ordered if m > self._last_granted]
            winner = after[0] if after else ordered[0]
        self._last_granted = winner
        self.grant_counts[winner] = self.grant_counts.get(winner, 0) + 1
        return winner

    def reset(self) -> None:
        self._last_granted = None
        self.grant_counts.clear()


class WeightedRoundRobinArbiter(ArbitrationPolicy):
    """Round-robin rotation with per-master consecutive-grant budgets.

    ``weights`` maps master ids to their budget (a sequence indexed by
    master id, or a mapping); masters not covered get ``default_weight``.
    While the current owner keeps requesting and has budget left, it keeps
    the grant; once the budget is spent (or the owner goes idle) the
    rotation advances to the next requester, which receives a fresh budget.
    Bandwidth shares approach the weight ratio under saturation, yet no
    requester ever waits more than the sum of the other masters' weights —
    the policy is starvation-free for any positive weights.
    """

    def __init__(self,
                 weights: Union[Sequence[int], Dict[int, int], None] = None,
                 default_weight: int = 1) -> None:
        if default_weight < 1:
            raise ValueError("default weight must be >= 1")
        if weights is None:
            resolved: Dict[int, int] = {}
        elif isinstance(weights, dict):
            resolved = dict(weights)
        else:
            resolved = dict(enumerate(weights))
        for master, weight in resolved.items():
            if not isinstance(weight, int) or weight < 1:
                raise ValueError(
                    f"weight of master {master} must be a positive integer, "
                    f"got {weight!r}"
                )
        self._weights = resolved
        self._default_weight = default_weight
        self._current: Optional[int] = None
        self._budget = 0
        self.grant_counts: Dict[int, int] = {}

    def weight_of(self, master_id: int) -> int:
        """Grant budget of ``master_id`` (``default_weight`` if unlisted)."""
        return self._weights.get(master_id, self._default_weight)

    def grant(self, requesters: Sequence[int]) -> Optional[int]:
        if not requesters:
            return None
        if (self._current is not None and self._budget > 0
                and self._current in requesters):
            winner = self._current
        else:
            ordered = sorted(requesters)
            if self._current is None:
                winner = ordered[0]
            else:
                after = [m for m in ordered if m > self._current]
                winner = after[0] if after else ordered[0]
            self._current = winner
            self._budget = self.weight_of(winner)
        self._budget -= 1
        self.grant_counts[winner] = self.grant_counts.get(winner, 0) + 1
        return winner

    def reset(self) -> None:
        self._current = None
        self._budget = 0
        self.grant_counts.clear()


class TdmaArbiter(ArbitrationPolicy):
    """Time-division arbitration over a fixed slot schedule.

    The schedule is a list of master ids; each call to :meth:`grant` advances
    to the next slot.  If the slot owner is not requesting, the policy falls
    back to round-robin among the requesters (work-conserving TDMA).
    """

    def __init__(self, schedule: Sequence[int]) -> None:
        if not schedule:
            raise ValueError("TDMA schedule must contain at least one slot")
        self._schedule = list(schedule)
        self._slot = 0
        self._fallback = RoundRobinArbiter()
        self.grant_counts: Dict[int, int] = {}
        self.slot_misses = 0

    def grant(self, requesters: Sequence[int]) -> Optional[int]:
        if not requesters:
            # The slot still elapses even when nobody is requesting.
            self._slot = (self._slot + 1) % len(self._schedule)
            return None
        owner = self._schedule[self._slot]
        self._slot = (self._slot + 1) % len(self._schedule)
        if owner in requesters:
            winner = owner
        else:
            self.slot_misses += 1
            winner = self._fallback.grant(requesters)
        self.grant_counts[winner] = self.grant_counts.get(winner, 0) + 1
        return winner

    def reset(self) -> None:
        self._slot = 0
        self._fallback.reset()
        self.grant_counts.clear()
        self.slot_misses = 0


#: Canonical policy kind names.
POLICY_KINDS = ("round_robin", "fixed_priority", "weighted_round_robin",
                "tdma")

#: Accepted shorthand spellings of the canonical kinds.
POLICY_ALIASES = {
    "rr": "round_robin",
    "priority": "fixed_priority",
    "weighted": "weighted_round_robin",
    "wrr": "weighted_round_robin",
}


def canonical_kind(kind: str) -> str:
    """Resolve ``kind`` (canonical name or alias) or raise ``ValueError``."""
    resolved = POLICY_ALIASES.get(kind, kind)
    if resolved not in POLICY_KINDS:
        raise ValueError(
            f"unknown arbitration policy {kind!r}; use one of "
            f"{list(POLICY_KINDS)} (aliases: {sorted(POLICY_ALIASES)})"
        )
    return resolved


@dataclass(frozen=True)
class ArbitrationSpec:
    """Picklable description of an arbitration policy family.

    A fabric may need many policy instances (one per crossbar channel, one
    per mesh slave server); the spec is the single source they are all
    created from, so every arbitration point applies the same rules.
    """

    #: Policy kind: one of :data:`POLICY_KINDS` (aliases accepted).
    kind: str = "round_robin"
    #: Fixed-priority order, most important first (``None`` = by master id).
    priority_order: Optional[Tuple[int, ...]] = None
    #: Weighted-RR budgets indexed by master id (``None`` = all ones).
    weights: Optional[Tuple[int, ...]] = None
    #: TDMA slot schedule (required for ``kind="tdma"``).
    schedule: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "kind", canonical_kind(self.kind))
        for name in ("priority_order", "weights", "schedule"):
            value = getattr(self, name)
            if value is not None:
                object.__setattr__(self, name, tuple(value))

    def create(self) -> ArbitrationPolicy:
        """A fresh policy instance implementing this spec."""
        if self.kind == "round_robin":
            return RoundRobinArbiter()
        if self.kind == "fixed_priority":
            return FixedPriorityArbiter(self.priority_order)
        if self.kind == "weighted_round_robin":
            return WeightedRoundRobinArbiter(self.weights)
        assert self.kind == "tdma"
        if not self.schedule:
            raise ValueError("TDMA arbitration needs a slot schedule")
        return TdmaArbiter(self.schedule)

    @classmethod
    def coerce(cls, value: Union["ArbitrationSpec", str, None]
               ) -> "ArbitrationSpec":
        """Normalize ``None`` / a kind string / a spec into a spec."""
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls(kind=value)
        raise TypeError(
            f"arbitration must be an ArbitrationSpec, a policy kind string "
            f"or None, got {type(value).__name__}"
        )


def make_arbiter(kind: str, **kwargs) -> ArbitrationPolicy:
    """Factory used by platform configuration files.

    ``kind`` is one of :data:`POLICY_KINDS` (or an alias); keyword
    arguments not used by the selected policy are ignored, so callers can
    pass one uniform parameter set for a whole sweep.  One-call shorthand
    for ``ArbitrationSpec(...).create()`` (the single kind dispatch).
    """
    return ArbitrationSpec(
        kind=kind,
        priority_order=kwargs.get("priority_order"),
        weights=kwargs.get("weights"),
        schedule=kwargs.get("schedule"),
    ).create()


#: Fabric-era name of the factory.
make_policy = make_arbiter
