"""A small two-pass assembler for the ALM instruction set.

Supported syntax (one instruction or directive per line, ``;`` and ``@``
start comments)::

    start:  MOV   r0, #0
            ADD   r0, r0, #1
            CMP   r0, r1
            BNE   start          ; conditional branches: B<cond>
            LDR   r2, [r3, #8]
            STR   r2, [r3]
            SWI   #1
            HALT
    table:  .word 1, 2, 3        ; literal data words

Register aliases ``sp``, ``lr`` and ``pc`` map to r13/r14/r15.  Branch
targets may be labels or literal numeric offsets (in instructions, relative
to the *next* instruction as the CPU defines it).
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from .encoding import encode
from .instructions import (
    BranchOp,
    Cond,
    DpOp,
    InsnClass,
    Instruction,
    MemOp,
    MulOp,
    REG_LR,
    REG_PC,
    REG_SP,
    SysOp,
)


class AssemblerError(Exception):
    """Raised on malformed assembly input."""

    def __init__(self, message: str, line_number: int = 0, line: str = "") -> None:
        prefix = f"line {line_number}: " if line_number else ""
        super().__init__(f"{prefix}{message}" + (f"  [{line.strip()}]" if line else ""))


_REGISTER_ALIASES = {"sp": REG_SP, "lr": REG_LR, "pc": REG_PC}
_DP_MNEMONICS = {op.name: op for op in DpOp}
_MEM_MNEMONICS = {op.name: op for op in MemOp}
_MUL_MNEMONICS = {op.name: op for op in MulOp}
_CONDITION_SUFFIXES = {cond.name: cond for cond in Cond if cond is not Cond.AL}

_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*):")


def _parse_register(token: str, line_number: int, line: str) -> int:
    token = token.strip().lower().rstrip(",")
    if token in _REGISTER_ALIASES:
        return _REGISTER_ALIASES[token]
    if token.startswith("r") and token[1:].isdigit():
        index = int(token[1:])
        if 0 <= index <= 15:
            return index
    raise AssemblerError(f"invalid register {token!r}", line_number, line)


def _parse_immediate(token: str, line_number: int, line: str) -> int:
    token = token.strip().rstrip(",")
    if not token.startswith("#"):
        raise AssemblerError(f"expected immediate, got {token!r}", line_number, line)
    try:
        return int(token[1:], 0)
    except ValueError:
        raise AssemblerError(f"invalid immediate {token!r}", line_number, line) from None


def _split_mnemonic(mnemonic: str) -> Tuple[str, Cond]:
    """Split a mnemonic into (base, condition): ``BNE`` → (``B``, NE)."""
    upper = mnemonic.upper()
    for suffix, cond in _CONDITION_SUFFIXES.items():
        if upper.endswith(suffix) and len(upper) > len(suffix):
            base = upper[: -len(suffix)]
            if base in _DP_MNEMONICS or base in _MEM_MNEMONICS or base in (
                    "B", "BL", "BX", "SWI", "HALT", "NOP") or base in _MUL_MNEMONICS:
                return base, cond
    return upper, Cond.AL


class Program:
    """The output of the assembler: words plus the label → address map."""

    def __init__(self, words: List[int], labels: Dict[str, int], source: str) -> None:
        self.words = words
        self.labels = labels
        self.source = source

    def __len__(self) -> int:
        return len(self.words)

    def to_bytes(self, endianness: str = "little") -> bytes:
        """Serialise the program as raw bytes (for loading into memories)."""
        return b"".join(word.to_bytes(4, endianness) for word in self.words)


def assemble(source: str) -> Program:
    """Assemble ``source`` into a :class:`Program`."""
    # First pass: strip comments, collect labels and count words.
    lines = source.splitlines()
    cleaned: List[Tuple[int, str]] = []
    labels: Dict[str, int] = {}
    address = 0
    for line_number, raw in enumerate(lines, start=1):
        line = re.split(r"[;@]", raw, maxsplit=1)[0].rstrip()
        stripped = line.strip()
        while True:
            match = _LABEL_RE.match(stripped)
            if not match:
                break
            label = match.group(1)
            if label in labels:
                raise AssemblerError(f"duplicate label {label!r}", line_number, raw)
            labels[label] = address
            stripped = stripped[match.end():].strip()
        if not stripped:
            continue
        cleaned.append((line_number, stripped))
        if stripped.lower().startswith(".word"):
            address += len(stripped[5:].split(","))
        else:
            address += 1

    # Second pass: encode.
    words: List[int] = []
    for line_number, text in cleaned:
        if text.lower().startswith(".word"):
            for token in text[5:].split(","):
                try:
                    words.append(int(token.strip(), 0) & 0xFFFFFFFF)
                except ValueError:
                    raise AssemblerError(f"bad .word literal {token!r}",
                                         line_number, text) from None
            continue
        words.append(encode(_parse_instruction(text, labels, len(words),
                                                line_number)))
    return Program(words, labels, source)


def _parse_instruction(text: str, labels: Dict[str, int], address: int,
                       line_number: int) -> Instruction:
    parts = text.split(None, 1)
    mnemonic = parts[0]
    rest = parts[1] if len(parts) > 1 else ""
    base, cond = _split_mnemonic(mnemonic)

    if base in _DP_MNEMONICS:
        return _parse_dp(base, cond, rest, line_number, text)
    if base in _MEM_MNEMONICS:
        return _parse_mem(base, cond, rest, line_number, text)
    if base in _MUL_MNEMONICS:
        registers = [_parse_register(t, line_number, text) for t in rest.split()]
        if len(registers) != 3:
            raise AssemblerError("MUL/MLA need three registers", line_number, text)
        return Instruction(cond, InsnClass.MUL, _MUL_MNEMONICS[base],
                           rd=registers[0], rn=registers[1], rm=registers[2])
    if base in ("B", "BL"):
        op = BranchOp.B if base == "B" else BranchOp.BL
        target = rest.strip()
        if target in labels:
            offset = labels[target] - (address + 1)
        else:
            try:
                offset = int(target, 0)
            except ValueError:
                raise AssemblerError(f"unknown label {target!r}", line_number,
                                     text) from None
        return Instruction(cond, InsnClass.BRANCH, op, imm=offset, uses_imm=True)
    if base == "BX":
        return Instruction(cond, InsnClass.BRANCH, BranchOp.BX,
                           rn=_parse_register(rest, line_number, text))
    if base == "SWI":
        return Instruction(cond, InsnClass.SYS, SysOp.SWI,
                           imm=_parse_immediate(rest, line_number, text),
                           uses_imm=True)
    if base == "HALT":
        return Instruction(cond, InsnClass.SYS, SysOp.HALT)
    if base == "NOP":
        return Instruction(cond, InsnClass.SYS, SysOp.NOP)
    raise AssemblerError(f"unknown mnemonic {mnemonic!r}", line_number, text)


def _parse_dp(base: str, cond: Cond, rest: str, line_number: int,
              text: str) -> Instruction:
    op = _DP_MNEMONICS[base]
    tokens = [t for t in rest.replace(",", " ").split() if t]
    if op in (DpOp.CMP, DpOp.CMN, DpOp.TST):
        if len(tokens) != 2:
            raise AssemblerError(f"{base} needs two operands", line_number, text)
        rn = _parse_register(tokens[0], line_number, text)
        if tokens[1].startswith("#"):
            return Instruction(cond, InsnClass.DP_IMM, op, rn=rn,
                               imm=_parse_immediate(tokens[1], line_number, text),
                               uses_imm=True)
        return Instruction(cond, InsnClass.DP_REG, op, rn=rn,
                           rm=_parse_register(tokens[1], line_number, text))
    if op in (DpOp.MOV, DpOp.MVN):
        if len(tokens) != 2:
            raise AssemblerError(f"{base} needs two operands", line_number, text)
        rd = _parse_register(tokens[0], line_number, text)
        if tokens[1].startswith("#"):
            return Instruction(cond, InsnClass.DP_IMM, op, rd=rd,
                               imm=_parse_immediate(tokens[1], line_number, text),
                               uses_imm=True)
        return Instruction(cond, InsnClass.DP_REG, op, rd=rd,
                           rm=_parse_register(tokens[1], line_number, text))
    # Three-operand forms: ADD rd, rn, (rm | #imm)
    if len(tokens) != 3:
        raise AssemblerError(f"{base} needs three operands", line_number, text)
    rd = _parse_register(tokens[0], line_number, text)
    rn = _parse_register(tokens[1], line_number, text)
    if tokens[2].startswith("#"):
        return Instruction(cond, InsnClass.DP_IMM, op, rd=rd, rn=rn,
                           imm=_parse_immediate(tokens[2], line_number, text),
                           uses_imm=True)
    return Instruction(cond, InsnClass.DP_REG, op, rd=rd, rn=rn,
                       rm=_parse_register(tokens[2], line_number, text))


def _parse_mem(base: str, cond: Cond, rest: str, line_number: int,
               text: str) -> Instruction:
    op = _MEM_MNEMONICS[base]
    match = re.match(
        r"\s*([a-zA-Z0-9]+)\s*,\s*\[\s*([a-zA-Z0-9]+)\s*(?:,\s*(#[-0-9xXa-fA-F]+))?\s*\]\s*$",
        rest,
    )
    if not match:
        raise AssemblerError(f"malformed memory operand {rest!r}", line_number, text)
    rd = _parse_register(match.group(1), line_number, text)
    rn = _parse_register(match.group(2), line_number, text)
    imm = _parse_immediate(match.group(3), line_number, text) if match.group(3) else 0
    return Instruction(cond, InsnClass.MEM, op, rd=rd, rn=rn, imm=imm, uses_imm=True)
