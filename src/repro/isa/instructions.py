"""The ALM (ARM-like machine) instruction set.

The paper's framework embeds SimIt-ARM instruction-set simulators.  For the
reproduction we define a compact ARM-flavoured 32-bit ISA — conditional
execution, 16 registers with PC/LR/SP conventions, data-processing,
load/store, branch-and-link and software interrupts — with a fixed, easily
testable encoding:

==========  ==========================================================
bits        field
==========  ==========================================================
[31:28]     condition code (AL, EQ, NE, ...)
[27:24]     instruction class (DP_REG, DP_IMM, MEM, BRANCH, SYS, MUL)
[23:20]     opcode within the class
[19:16]     rd
[15:12]     rn
[11:0]      class-specific: rm/shift, 12-bit immediate/offset, ...
==========  ==========================================================

All data-processing instructions update the NZCV flags (the ISA has no
separate S bit); conditional execution applies to every instruction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

#: Number of general-purpose registers (R15 = PC, R14 = LR, R13 = SP).
NUM_REGISTERS = 16
REG_SP = 13
REG_LR = 14
REG_PC = 15

#: Word size of the architecture in bytes.
WORD_BYTES = 4


class Cond(enum.IntEnum):
    """Condition codes evaluated against the NZCV flags."""

    AL = 0x0   # always
    EQ = 0x1   # Z set
    NE = 0x2   # Z clear
    GE = 0x3   # N == V (signed >=)
    LT = 0x4   # N != V (signed <)
    GT = 0x5   # Z clear and N == V
    LE = 0x6   # Z set or N != V
    CS = 0x7   # C set (unsigned >=)
    CC = 0x8   # C clear (unsigned <)
    MI = 0x9   # N set
    PL = 0xA   # N clear
    HI = 0xB   # C set and Z clear (unsigned >)
    LS = 0xC   # C clear or Z set (unsigned <=)


class InsnClass(enum.IntEnum):
    """Top-level instruction classes."""

    DP_REG = 0x0
    DP_IMM = 0x1
    MEM = 0x2
    BRANCH = 0x3
    SYS = 0x4
    MUL = 0x5


class DpOp(enum.IntEnum):
    """Data-processing opcodes (register and immediate forms)."""

    MOV = 0x0
    MVN = 0x1
    ADD = 0x2
    SUB = 0x3
    RSB = 0x4
    AND = 0x5
    ORR = 0x6
    EOR = 0x7
    CMP = 0x8
    CMN = 0x9
    TST = 0xA
    LSL = 0xB
    LSR = 0xC
    ASR = 0xD


class MemOp(enum.IntEnum):
    """Load/store opcodes."""

    LDR = 0x0
    STR = 0x1
    LDRB = 0x2
    STRB = 0x3


class BranchOp(enum.IntEnum):
    """Branch opcodes."""

    B = 0x0
    BL = 0x1
    BX = 0x2


class SysOp(enum.IntEnum):
    """System opcodes."""

    SWI = 0x0
    HALT = 0x1
    NOP = 0x2


class MulOp(enum.IntEnum):
    """Multiply opcodes."""

    MUL = 0x0
    MLA = 0x1


#: Opcodes that only update flags and do not write a destination register.
FLAG_ONLY_OPS = {DpOp.CMP, DpOp.CMN, DpOp.TST}


@dataclass
class Instruction:
    """A decoded instruction (the symbolic form the assembler also builds)."""

    cond: Cond
    klass: InsnClass
    op: int
    rd: int = 0
    rn: int = 0
    rm: int = 0
    imm: int = 0
    uses_imm: bool = False

    def __post_init__(self) -> None:
        for name in ("rd", "rn", "rm"):
            value = getattr(self, name)
            if not 0 <= value < NUM_REGISTERS:
                raise ValueError(f"{name}={value} is not a valid register")

    # -- helpers used by the CPU and the disassembler --------------------------
    @property
    def mnemonic(self) -> str:
        """Canonical mnemonic (without condition suffix)."""
        if self.klass in (InsnClass.DP_REG, InsnClass.DP_IMM):
            return DpOp(self.op).name
        if self.klass is InsnClass.MEM:
            return MemOp(self.op).name
        if self.klass is InsnClass.BRANCH:
            return BranchOp(self.op).name
        if self.klass is InsnClass.SYS:
            return SysOp(self.op).name
        return MulOp(self.op).name

    def describe(self) -> str:
        """Human-readable rendering used in traces and error messages."""
        suffix = "" if self.cond is Cond.AL else Cond(self.cond).name
        base = f"{self.mnemonic}{suffix}"
        if self.klass is InsnClass.DP_IMM:
            return f"{base} r{self.rd}, r{self.rn}, #{self.imm}"
        if self.klass is InsnClass.DP_REG:
            return f"{base} r{self.rd}, r{self.rn}, r{self.rm}"
        if self.klass is InsnClass.MEM:
            return f"{base} r{self.rd}, [r{self.rn}, #{self.imm}]"
        if self.klass is InsnClass.BRANCH:
            if self.op == BranchOp.BX:
                return f"{base} r{self.rn}"
            return f"{base} {self.imm}"
        if self.klass is InsnClass.SYS:
            if self.op == SysOp.SWI:
                return f"{base} #{self.imm}"
            return base
        return f"{base} r{self.rd}, r{self.rn}, r{self.rm}"


def sign_extend(value: int, bits: int) -> int:
    """Interpret the low ``bits`` of ``value`` as a signed integer."""
    mask = (1 << bits) - 1
    value &= mask
    if value & (1 << (bits - 1)):
        return value - (1 << bits)
    return value


def condition_passed(cond: Cond, n: bool, z: bool, c: bool, v: bool) -> bool:
    """Evaluate a condition code against the NZCV flags."""
    if cond is Cond.AL:
        return True
    if cond is Cond.EQ:
        return z
    if cond is Cond.NE:
        return not z
    if cond is Cond.GE:
        return n == v
    if cond is Cond.LT:
        return n != v
    if cond is Cond.GT:
        return (not z) and n == v
    if cond is Cond.LE:
        return z or n != v
    if cond is Cond.CS:
        return c
    if cond is Cond.CC:
        return not c
    if cond is Cond.MI:
        return n
    if cond is Cond.PL:
        return not n
    if cond is Cond.HI:
        return c and not z
    if cond is Cond.LS:
        return (not c) or z
    raise ValueError(f"unknown condition {cond!r}")
