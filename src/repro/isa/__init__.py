"""The ALM (ARM-like machine) instruction set: encoding, decoding, assembler."""

from .assembler import AssemblerError, Program, assemble
from .encoding import EncodingError, decode, disassemble, encode
from .instructions import (
    NUM_REGISTERS,
    REG_LR,
    REG_PC,
    REG_SP,
    WORD_BYTES,
    BranchOp,
    Cond,
    DpOp,
    InsnClass,
    Instruction,
    MemOp,
    MulOp,
    SysOp,
    condition_passed,
    sign_extend,
)

__all__ = [
    "AssemblerError",
    "BranchOp",
    "Cond",
    "DpOp",
    "EncodingError",
    "InsnClass",
    "Instruction",
    "MemOp",
    "MulOp",
    "NUM_REGISTERS",
    "Program",
    "REG_LR",
    "REG_PC",
    "REG_SP",
    "SysOp",
    "WORD_BYTES",
    "assemble",
    "condition_passed",
    "decode",
    "disassemble",
    "encode",
    "sign_extend",
]
