"""Binary encoding and decoding of ALM instructions."""

from __future__ import annotations

from .instructions import (
    BranchOp,
    Cond,
    DpOp,
    InsnClass,
    Instruction,
    MemOp,
    MulOp,
    SysOp,
    sign_extend,
)


class EncodingError(Exception):
    """Raised when an instruction cannot be encoded or decoded."""


def encode(instruction: Instruction) -> int:
    """Encode a symbolic instruction into its 32-bit word."""
    word = (int(instruction.cond) & 0xF) << 28
    word |= (int(instruction.klass) & 0xF) << 24
    word |= (instruction.op & 0xF) << 20
    word |= (instruction.rd & 0xF) << 16
    word |= (instruction.rn & 0xF) << 12
    klass = instruction.klass
    if klass is InsnClass.DP_REG or klass is InsnClass.MUL:
        word |= instruction.rm & 0xF
    elif klass is InsnClass.DP_IMM:
        if not 0 <= instruction.imm <= 0xFFF:
            raise EncodingError(
                f"immediate {instruction.imm} does not fit in 12 unsigned bits"
            )
        word |= instruction.imm & 0xFFF
    elif klass is InsnClass.MEM:
        if not -2048 <= instruction.imm <= 2047:
            raise EncodingError(
                f"memory offset {instruction.imm} does not fit in 12 signed bits"
            )
        word |= instruction.imm & 0xFFF
    elif klass is InsnClass.BRANCH:
        if instruction.op == BranchOp.BX:
            word |= 0
        else:
            if not -2048 <= instruction.imm <= 2047:
                raise EncodingError(
                    f"branch offset {instruction.imm} does not fit in 12 signed bits"
                )
            word |= instruction.imm & 0xFFF
    elif klass is InsnClass.SYS:
        if not 0 <= instruction.imm <= 0xFFF:
            raise EncodingError("SWI number must fit in 12 bits")
        word |= instruction.imm & 0xFFF
    else:  # pragma: no cover - defensive
        raise EncodingError(f"unknown instruction class {klass!r}")
    return word & 0xFFFFFFFF


def decode(word: int) -> Instruction:
    """Decode a 32-bit word into its symbolic instruction."""
    try:
        cond = Cond((word >> 28) & 0xF)
    except ValueError:
        raise EncodingError(f"invalid condition field in {word:#010x}") from None
    try:
        klass = InsnClass((word >> 24) & 0xF)
    except ValueError:
        raise EncodingError(f"invalid class field in {word:#010x}") from None
    op = (word >> 20) & 0xF
    rd = (word >> 16) & 0xF
    rn = (word >> 12) & 0xF
    low = word & 0xFFF
    try:
        if klass is InsnClass.DP_REG:
            DpOp(op)
            return Instruction(cond, klass, op, rd=rd, rn=rn, rm=low & 0xF)
        if klass is InsnClass.DP_IMM:
            DpOp(op)
            return Instruction(cond, klass, op, rd=rd, rn=rn, imm=low, uses_imm=True)
        if klass is InsnClass.MEM:
            MemOp(op)
            return Instruction(cond, klass, op, rd=rd, rn=rn,
                               imm=sign_extend(low, 12), uses_imm=True)
        if klass is InsnClass.BRANCH:
            BranchOp(op)
            if op == BranchOp.BX:
                return Instruction(cond, klass, op, rn=rn)
            return Instruction(cond, klass, op, imm=sign_extend(low, 12),
                               uses_imm=True)
        if klass is InsnClass.SYS:
            SysOp(op)
            return Instruction(cond, klass, op, imm=low, uses_imm=True)
        if klass is InsnClass.MUL:
            MulOp(op)
            return Instruction(cond, klass, op, rd=rd, rn=rn, rm=low & 0xF)
    except ValueError:
        raise EncodingError(
            f"invalid opcode {op:#x} for class {klass.name} in {word:#010x}"
        ) from None
    raise EncodingError(f"cannot decode {word:#010x}")  # pragma: no cover


def disassemble(word: int) -> str:
    """Convenience: decode and render one instruction word."""
    return decode(word).describe()
