"""Memory subsystem: host layer, static memories, heap, and baselines.

This package provides the memory substrate of the co-simulation framework:

* :class:`HostMemory` / :class:`HostBlock` — the host machine's memory
  management capabilities (Figure 1's bottom layer) used by the wrapper;
* :class:`StaticMemory` — the traditional table memory module;
* :class:`FreeListHeap` — a first-fit allocator with in-memory metadata;
* :class:`ModeledDynamicMemory` — the fully-modelled dynamic memory baseline;
* :mod:`repro.memory.protocol` — the transaction protocol shared by every
  dynamic memory module (opcodes, status codes, register map).
"""

from .dynamic_base import (
    DynamicMemorySlave,
    decode_element,
    encode_element,
    to_signed,
)
from .heap import (
    HEADER_BYTES,
    CountingAccessor,
    FreeListHeap,
    HeapError,
    HeapStats,
    WordAccessor,
)
from .host_memory import (
    HostAccessError,
    HostAllocationError,
    HostBlock,
    HostMemory,
    HostMemoryStats,
)
from .latency import LatencyModel, make_page_hit_model, sdram_latency, sram_latency
from .modeled_dynamic_memory import ModeledDynamicMemory
from .protocol import (
    DATA_TYPE_SIZES,
    IO_ARRAY_BASE,
    IO_ARRAY_BYTES,
    REG_COMMAND,
    REG_DATA_IN,
    REG_DIM,
    REG_GO,
    REG_LIVE_COUNT,
    REG_OFFSET,
    REG_OPCODE,
    REG_RESULT,
    REG_SM_ADDR,
    REG_STATUS,
    REG_TYPE,
    REG_USED_BYTES,
    REG_VPTR,
    REGISTER_WINDOW_BYTES,
    DataType,
    Endianness,
    MemCommand,
    MemOpcode,
    MemResult,
    MemStatus,
    ProtocolError,
    data_type_size,
)
from .static_memory import StaticMemory

__all__ = [
    "CountingAccessor",
    "DATA_TYPE_SIZES",
    "DataType",
    "DynamicMemorySlave",
    "Endianness",
    "FreeListHeap",
    "HEADER_BYTES",
    "HeapError",
    "HeapStats",
    "HostAccessError",
    "HostAllocationError",
    "HostBlock",
    "HostMemory",
    "HostMemoryStats",
    "IO_ARRAY_BASE",
    "IO_ARRAY_BYTES",
    "LatencyModel",
    "MemCommand",
    "MemOpcode",
    "MemResult",
    "MemStatus",
    "ModeledDynamicMemory",
    "ProtocolError",
    "REG_COMMAND",
    "REG_DATA_IN",
    "REG_DIM",
    "REG_GO",
    "REG_LIVE_COUNT",
    "REG_OFFSET",
    "REG_OPCODE",
    "REG_RESULT",
    "REG_SM_ADDR",
    "REG_STATUS",
    "REG_TYPE",
    "REG_USED_BYTES",
    "REG_VPTR",
    "REGISTER_WINDOW_BYTES",
    "StaticMemory",
    "WordAccessor",
    "data_type_size",
    "decode_element",
    "encode_element",
    "make_page_hit_model",
    "sdram_latency",
    "sram_latency",
    "to_signed",
]
