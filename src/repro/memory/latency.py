"""Latency models for memory modules.

The paper's wrapper "guarantees the simulation accuracy using parameters of
delays which can be dynamic and data dependent".  :class:`LatencyModel`
captures exactly that: a fixed per-operation component, a per-word transfer
component, and an optional user-supplied callable evaluated per request for
data-dependent behaviour (e.g. page-hit/page-miss DRAM models).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional


#: Signature of a data-dependent latency hook:
#: ``hook(operation_name, byte_count) -> extra_cycles``.
LatencyHook = Callable[[str, int], int]


@dataclass
class LatencyModel:
    """Configurable cycle cost of memory operations.

    Attributes
    ----------
    read_cycles / write_cycles:
        Base cost of a scalar read/write.
    alloc_cycles / free_cycles:
        Base cost of management operations (only meaningful for dynamic
        memory modules).
    per_word_cycles:
        Additional cycles charged per data word moved in burst transfers.
    data_dependent:
        Optional hook adding extra cycles as a function of the operation
        name and the number of bytes involved.
    """

    read_cycles: int = 1
    write_cycles: int = 1
    alloc_cycles: int = 2
    free_cycles: int = 2
    per_word_cycles: int = 1
    data_dependent: Optional[LatencyHook] = None

    def __post_init__(self) -> None:
        for name in ("read_cycles", "write_cycles", "alloc_cycles", "free_cycles",
                     "per_word_cycles"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    # -- cost queries --------------------------------------------------------
    def _extra(self, operation: str, byte_count: int) -> int:
        if self.data_dependent is None:
            return 0
        extra = self.data_dependent(operation, byte_count)
        if extra < 0:
            raise ValueError("data-dependent latency hook returned a negative value")
        return extra

    def scalar_read(self, byte_count: int = 4) -> int:
        """Cycles for a scalar read of ``byte_count`` bytes."""
        return max(1, self.read_cycles + self._extra("read", byte_count))

    def scalar_write(self, byte_count: int = 4) -> int:
        """Cycles for a scalar write of ``byte_count`` bytes."""
        return max(1, self.write_cycles + self._extra("write", byte_count))

    def burst_read(self, words: int, byte_count: int) -> int:
        """Cycles for a burst read of ``words`` words (``byte_count`` bytes)."""
        return max(1, self.read_cycles + self.per_word_cycles * words
                   + self._extra("read_array", byte_count))

    def burst_write(self, words: int, byte_count: int) -> int:
        """Cycles for a burst write of ``words`` words (``byte_count`` bytes)."""
        return max(1, self.write_cycles + self.per_word_cycles * words
                   + self._extra("write_array", byte_count))

    def alloc(self, byte_count: int) -> int:
        """Cycles for an allocation of ``byte_count`` bytes."""
        return max(1, self.alloc_cycles + self._extra("alloc", byte_count))

    def free(self, byte_count: int) -> int:
        """Cycles for a deallocation of ``byte_count`` bytes."""
        return max(1, self.free_cycles + self._extra("free", byte_count))


def sram_latency() -> LatencyModel:
    """Single-cycle on-chip SRAM."""
    return LatencyModel(read_cycles=1, write_cycles=1, per_word_cycles=1)


def sdram_latency() -> LatencyModel:
    """A simple off-chip SDRAM-ish model: slower scalars, cheap streaming."""
    return LatencyModel(read_cycles=6, write_cycles=4, per_word_cycles=1,
                        alloc_cycles=6, free_cycles=6)


def make_page_hit_model(page_bytes: int = 1024, hit_cycles: int = 2,
                        miss_cycles: int = 8) -> LatencyModel:
    """A data-dependent model distinguishing same-page and cross-page accesses.

    The model keeps the last accessed "page" (derived from the byte count of
    successive accesses, a deliberately simple stand-in for row buffers) and
    charges ``miss_cycles`` extra when the access pattern leaves the page.
    """
    state = {"open_page": None}

    def hook(operation: str, byte_count: int) -> int:
        page = byte_count // max(1, page_bytes)
        if state["open_page"] == page:
            return hit_cycles
        state["open_page"] = page
        return miss_cycles

    return LatencyModel(read_cycles=2, write_cycles=2, per_word_cycles=1,
                        data_dependent=hook)
