"""The host-machine memory layer.

The paper's key idea is to let the *host* machine's memory management carry
the simulated application's dynamic data: allocations become host ``calloc``
calls, accesses become native loads/stores, deallocation becomes ``free``.
In this Python reproduction the host layer hands out :class:`HostBlock`
objects backed by ``bytearray`` storage — the Python equivalent of a pointer
returned by ``calloc`` — and tracks global usage statistics so the capacity
experiments can report how much host memory the simulation actually holds.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Optional


class HostAllocationError(Exception):
    """Raised when the host layer refuses an allocation (limit exceeded)."""


class HostAccessError(Exception):
    """Raised on out-of-bounds access to a host block or use-after-free."""


@dataclass
class HostMemoryStats:
    """Aggregate statistics of the host memory layer."""

    alloc_calls: int = 0
    free_calls: int = 0
    bytes_allocated: int = 0
    bytes_freed: int = 0
    live_bytes: int = 0
    peak_live_bytes: int = 0
    native_reads: int = 0
    native_writes: int = 0

    def as_dict(self) -> dict:
        """Plain-dict view used by reports."""
        return {
            "alloc_calls": self.alloc_calls,
            "free_calls": self.free_calls,
            "bytes_allocated": self.bytes_allocated,
            "bytes_freed": self.bytes_freed,
            "live_bytes": self.live_bytes,
            "peak_live_bytes": self.peak_live_bytes,
            "native_reads": self.native_reads,
            "native_writes": self.native_writes,
        }


class HostBlock:
    """A host allocation: the reproduction's stand-in for a real ``Hptr``."""

    __slots__ = ("handle", "size", "_data", "_owner", "freed")

    def __init__(self, handle: int, size: int, owner: "HostMemory") -> None:
        self.handle = handle
        self.size = size
        self._data = bytearray(size)  # calloc semantics: zero-initialised
        self._owner = owner
        self.freed = False

    # -- native accesses ---------------------------------------------------
    def read_bytes(self, offset: int, length: int) -> bytes:
        """Read ``length`` bytes starting at ``offset``."""
        self._check(offset, length)
        self._owner.stats.native_reads += 1
        return bytes(self._data[offset:offset + length])

    def write_bytes(self, offset: int, payload: bytes) -> None:
        """Write ``payload`` starting at ``offset``."""
        self._check(offset, len(payload))
        self._owner.stats.native_writes += 1
        self._data[offset:offset + len(payload)] = payload

    def _check(self, offset: int, length: int) -> None:
        if self.freed:
            raise HostAccessError(f"use-after-free of host block {self.handle}")
        if offset < 0 or length < 0 or offset + length > self.size:
            raise HostAccessError(
                f"access [{offset}, {offset + length}) outside host block of "
                f"{self.size} bytes"
            )

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = "freed" if self.freed else "live"
        return f"HostBlock(handle={self.handle}, size={self.size}, {state})"


class HostMemory:
    """The host OS / MMU / memory abstraction of Figure 1's bottom layer.

    ``limit_bytes`` optionally caps the total live bytes the host layer will
    hand out, which lets tests exercise host-side allocation failure
    independently of the *simulated* capacity limit enforced by the wrapper.
    """

    def __init__(self, limit_bytes: Optional[int] = None) -> None:
        self.limit_bytes = limit_bytes
        self.stats = HostMemoryStats()
        self._blocks: Dict[int, HostBlock] = {}
        self._handles = itertools.count(1)

    # -- calloc / free ----------------------------------------------------------
    def calloc(self, count: int, element_size: int) -> HostBlock:
        """Allocate ``count * element_size`` zero-initialised bytes."""
        if count < 0 or element_size <= 0:
            raise HostAllocationError(
                f"invalid calloc({count}, {element_size}) request"
            )
        size = count * element_size
        if self.limit_bytes is not None and self.stats.live_bytes + size > self.limit_bytes:
            raise HostAllocationError(
                f"host memory limit of {self.limit_bytes} bytes exceeded"
            )
        block = HostBlock(next(self._handles), size, self)
        self._blocks[block.handle] = block
        self.stats.alloc_calls += 1
        self.stats.bytes_allocated += size
        self.stats.live_bytes += size
        self.stats.peak_live_bytes = max(self.stats.peak_live_bytes,
                                         self.stats.live_bytes)
        return block

    def malloc(self, size: int) -> HostBlock:
        """Allocate ``size`` bytes (zero-initialised, like ``calloc(size, 1)``)."""
        return self.calloc(size, 1)

    def free(self, block: HostBlock) -> None:
        """Release a block; double frees raise :class:`HostAccessError`."""
        if block.freed or block.handle not in self._blocks:
            raise HostAccessError(f"double free of host block {block.handle}")
        block.freed = True
        del self._blocks[block.handle]
        self.stats.free_calls += 1
        self.stats.bytes_freed += block.size
        self.stats.live_bytes -= block.size

    # -- queries -------------------------------------------------------------------
    @property
    def live_blocks(self) -> int:
        """Number of currently live allocations."""
        return len(self._blocks)

    def block_by_handle(self, handle: int) -> HostBlock:
        """Look a live block up by its handle."""
        try:
            return self._blocks[handle]
        except KeyError:
            raise HostAccessError(f"no live host block with handle {handle}") from None

    def check_all_freed(self) -> bool:
        """True when every allocation has been released (leak check)."""
        return not self._blocks
