"""The dynamic-memory transaction protocol.

This module defines the *contract* between processing elements and any
dynamic memory module on the interconnect: the paper's host-backed shared
memory wrapper (:mod:`repro.wrapper`) and the traditional fully-modelled
baseline (:mod:`repro.memory.modeled_dynamic_memory`) both implement it, so
software written against the high-level API runs unchanged on either.

Following Figure 2 of the paper, every transaction starts with an *opcode*
and the *shared-memory address* (``sm_addr``, identifying the memory module)
followed by the operands.  On our memory-mapped interconnect the command is
delivered as a burst write to the module's command port; scalar register
accesses are also supported for ISS-style software that pokes individual
I/O registers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional


class MemOpcode(enum.IntEnum):
    """Operation codes understood by dynamic memory modules."""

    NOP = 0x00
    #: Allocate ``dim`` elements of ``data_type`` (maps to host ``calloc``).
    ALLOC = 0x01
    #: Free the allocation identified by a virtual pointer.
    FREE = 0x02
    #: Write one element at ``vptr`` (+ element offset).
    WRITE = 0x03
    #: Read one element at ``vptr`` (+ element offset).
    READ = 0x04
    #: Write ``dim`` elements from the I/O array (indexed structures).
    WRITE_ARRAY = 0x05
    #: Read ``dim`` elements into the I/O array (indexed structures).
    READ_ARRAY = 0x06
    #: Set the reservation bit (semaphore) of a virtual pointer.
    RESERVE = 0x07
    #: Clear the reservation bit of a virtual pointer.
    RELEASE = 0x08
    #: Query the size/type of an allocation (diagnostic).
    QUERY = 0x09


class MemStatus(enum.IntEnum):
    """Completion status codes returned in the status register."""

    OK = 0x0
    #: The allocation would exceed the configured memory capacity.
    ERR_FULL = 0x1
    #: The virtual pointer does not belong to any live allocation.
    ERR_INVALID_PTR = 0x2
    #: The pointer is reserved by a different master (coherence conflict).
    ERR_RESERVED = 0x3
    #: Unknown opcode.
    ERR_BAD_OPCODE = 0x4
    #: The ``sm_addr`` field does not match this memory module.
    ERR_BAD_SM_ADDR = 0x5
    #: Access past the end of the addressed allocation.
    ERR_OUT_OF_RANGE = 0x6
    #: Malformed command (missing operands, bad data type...).
    ERR_MALFORMED = 0x7


class DataType(enum.IntEnum):
    """Element data types supported by the translator."""

    UINT8 = 0x0
    INT8 = 0x1
    UINT16 = 0x2
    INT16 = 0x3
    UINT32 = 0x4
    INT32 = 0x5
    FLOAT32 = 0x6


#: Element size in bytes for every :class:`DataType`.
DATA_TYPE_SIZES = {
    DataType.UINT8: 1,
    DataType.INT8: 1,
    DataType.UINT16: 2,
    DataType.INT16: 2,
    DataType.UINT32: 4,
    DataType.INT32: 4,
    DataType.FLOAT32: 4,
}

#: True for types interpreted as signed two's-complement integers.
DATA_TYPE_SIGNED = {
    DataType.UINT8: False,
    DataType.INT8: True,
    DataType.UINT16: False,
    DataType.INT16: True,
    DataType.UINT32: False,
    DataType.INT32: True,
    DataType.FLOAT32: False,
}


def data_type_size(data_type: "DataType | int") -> int:
    """Element size in bytes of ``data_type`` (raises on unknown types)."""
    return DATA_TYPE_SIZES[DataType(data_type)]


class Endianness(enum.Enum):
    """Byte order of the *simulated* architecture."""

    LITTLE = "little"
    BIG = "big"


# --------------------------------------------------------------------------
# Register map of a dynamic memory module (word-aligned byte offsets).
# --------------------------------------------------------------------------

#: Burst-write command port: [opcode, sm_addr, operands...] in one transfer.
REG_COMMAND = 0x00
#: Individual operand registers (ISS-style register pokes).
REG_OPCODE = 0x20
REG_SM_ADDR = 0x24
REG_VPTR = 0x28
REG_DIM = 0x2C
REG_TYPE = 0x30
REG_DATA_IN = 0x34
REG_OFFSET = 0x38
#: Writing any value here launches the operation staged in the registers.
REG_GO = 0x3C
#: Read-only: status of the last completed operation.
REG_STATUS = 0x40
#: Read-only: primary result of the last completed operation.
REG_RESULT = 0x44
#: Read-only: number of live allocations (diagnostic).
REG_LIVE_COUNT = 0x48
#: Read-only: bytes currently allocated (diagnostic).
REG_USED_BYTES = 0x4C
#: Base of the I/O array window used by burst (indexed-structure) transfers.
IO_ARRAY_BASE = 0x100
#: Size of the I/O array window in bytes (256 words).
IO_ARRAY_BYTES = 0x400
#: Total size of a dynamic memory module's register window.
REGISTER_WINDOW_BYTES = IO_ARRAY_BASE + IO_ARRAY_BYTES


@dataclass
class MemCommand:
    """A decoded dynamic-memory command (opcode + operands)."""

    opcode: MemOpcode
    sm_addr: int = 0
    vptr: int = 0
    dim: int = 0
    data_type: DataType = DataType.UINT32
    data: int = 0
    offset: int = 0

    def to_words(self) -> List[int]:
        """Encode the command as the word sequence sent to ``REG_COMMAND``.

        Word order matches the paper's transaction format: opcode and
        sm_addr first, then the operands needed by the opcode.
        """
        words = [int(self.opcode), self.sm_addr]
        if self.opcode == MemOpcode.ALLOC:
            words += [self.dim, int(self.data_type)]
        elif self.opcode in (MemOpcode.FREE, MemOpcode.RESERVE, MemOpcode.RELEASE,
                             MemOpcode.QUERY):
            words += [self.vptr]
        elif self.opcode == MemOpcode.WRITE:
            words += [self.vptr, self.offset, self.data]
        elif self.opcode == MemOpcode.READ:
            words += [self.vptr, self.offset]
        elif self.opcode in (MemOpcode.WRITE_ARRAY, MemOpcode.READ_ARRAY):
            words += [self.vptr, self.offset, self.dim]
        return words

    @classmethod
    def from_words(cls, words: List[int]) -> "MemCommand":
        """Decode a word sequence received on the command port.

        Raises :class:`ProtocolError` when the sequence is malformed.
        """
        if len(words) < 2:
            raise ProtocolError("command needs at least opcode and sm_addr")
        try:
            opcode = MemOpcode(words[0])
        except ValueError:
            raise ProtocolError(f"unknown opcode {words[0]:#x}") from None
        command = cls(opcode=opcode, sm_addr=words[1])
        operands = words[2:]
        try:
            if opcode == MemOpcode.ALLOC:
                command.dim = operands[0]
                command.data_type = DataType(operands[1])
            elif opcode in (MemOpcode.FREE, MemOpcode.RESERVE, MemOpcode.RELEASE,
                            MemOpcode.QUERY):
                command.vptr = operands[0]
            elif opcode == MemOpcode.WRITE:
                command.vptr, command.offset, command.data = operands[:3]
                if len(operands) < 3:
                    raise IndexError
            elif opcode == MemOpcode.READ:
                command.vptr, command.offset = operands[:2]
                if len(operands) < 2:
                    raise IndexError
            elif opcode in (MemOpcode.WRITE_ARRAY, MemOpcode.READ_ARRAY):
                command.vptr, command.offset, command.dim = operands[:3]
                if len(operands) < 3:
                    raise IndexError
        except (IndexError, ValueError):
            raise ProtocolError(
                f"malformed operand list {operands!r} for opcode {opcode.name}"
            ) from None
        return command


@dataclass
class MemResult:
    """The outcome of a dynamic-memory operation."""

    status: MemStatus
    value: int = 0
    burst: Optional[List[int]] = None

    @property
    def ok(self) -> bool:
        """True when the operation completed with :attr:`MemStatus.OK`."""
        return self.status is MemStatus.OK


class ProtocolError(Exception):
    """Raised when a command cannot be encoded or decoded."""
