"""Static table memory module.

This is the traditional memory model the paper starts from: a fixed-size
table (here a ``bytearray``) mapped on the interconnect.  It supports byte,
half-word, word and burst accesses with a configurable latency model and
endianness, and is used for instruction/data memory of the ISSs, for the
baseline platforms, and as the backing store of the fully-modelled dynamic
memory baseline.
"""

from __future__ import annotations

from typing import List, Optional

from ..fabric import BusSlave
from ..fabric import BusOp, BusRequest, BusResponse, ResponseStatus
from .latency import LatencyModel
from .protocol import Endianness


class StaticMemory(BusSlave):
    """A word-addressable static memory with configurable latency."""

    def __init__(
        self,
        size_bytes: int,
        latency: Optional[LatencyModel] = None,
        endianness: Endianness = Endianness.LITTLE,
        name: str = "smem",
    ) -> None:
        if size_bytes <= 0:
            raise ValueError("memory size must be positive")
        self.name = name
        self.size_bytes = size_bytes
        self.storage = bytearray(size_bytes)
        self.latency_model = latency if latency is not None else LatencyModel()
        self.endianness = endianness
        self.reads = 0
        self.writes = 0

    # -- direct (debug/loader) access: does not consume simulated time ----------
    def load_bytes(self, offset: int, payload: bytes) -> None:
        """Back-door write used by program loaders and test benches."""
        if offset < 0 or offset + len(payload) > self.size_bytes:
            raise ValueError("back-door load outside memory bounds")
        self.storage[offset:offset + len(payload)] = payload

    def dump_bytes(self, offset: int, length: int) -> bytes:
        """Back-door read used by checkers and test benches."""
        if offset < 0 or offset + length > self.size_bytes:
            raise ValueError("back-door dump outside memory bounds")
        return bytes(self.storage[offset:offset + length])

    def read_word_backdoor(self, offset: int) -> int:
        """Back-door 32-bit read (no simulated time)."""
        return int.from_bytes(self.dump_bytes(offset, 4), self.endianness.value)

    def write_word_backdoor(self, offset: int, value: int) -> None:
        """Back-door 32-bit write (no simulated time)."""
        self.load_bytes(offset, (value & 0xFFFFFFFF).to_bytes(4, self.endianness.value))

    # -- BusSlave protocol ----------------------------------------------------------
    def latency(self, request: BusRequest) -> int:
        if request.is_burst:
            if request.op is BusOp.READ:
                return self.latency_model.burst_read(request.word_count,
                                                     request.word_count * 4)
            return self.latency_model.burst_write(request.word_count,
                                                  request.word_count * 4)
        if request.op is BusOp.READ:
            return self.latency_model.scalar_read(request.size)
        return self.latency_model.scalar_write(request.size)

    def access(self, request: BusRequest, offset: int) -> BusResponse:
        if request.is_burst:
            return self._burst_access(request, offset)
        return self._scalar_access(request, offset)

    # -- helpers -----------------------------------------------------------------------
    def _scalar_access(self, request: BusRequest, offset: int) -> BusResponse:
        size = request.size
        if offset < 0 or offset + size > self.size_bytes:
            return BusResponse(status=ResponseStatus.SLAVE_ERROR)
        if request.op is BusOp.WRITE:
            self.writes += 1
            value = request.data & ((1 << (8 * size)) - 1)
            self.storage[offset:offset + size] = value.to_bytes(
                size, self.endianness.value
            )
            return BusResponse()
        self.reads += 1
        word = int.from_bytes(self.storage[offset:offset + size],
                              self.endianness.value)
        return BusResponse(data=word)

    def _burst_access(self, request: BusRequest, offset: int) -> BusResponse:
        word_count = request.word_count
        if offset < 0 or offset + 4 * word_count > self.size_bytes:
            return BusResponse(status=ResponseStatus.SLAVE_ERROR)
        if request.op is BusOp.WRITE:
            assert request.burst_data is not None
            self.writes += word_count
            for index, word in enumerate(request.burst_data):
                position = offset + 4 * index
                self.storage[position:position + 4] = (word & 0xFFFFFFFF).to_bytes(
                    4, self.endianness.value
                )
            return BusResponse()
        self.reads += word_count
        words: List[int] = []
        for index in range(word_count):
            position = offset + 4 * index
            words.append(int.from_bytes(self.storage[position:position + 4],
                                        self.endianness.value))
        return BusResponse(burst_data=words)
