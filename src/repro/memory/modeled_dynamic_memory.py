"""The traditional baseline: a fully-modelled dynamic memory.

This module represents what the paper calls "complex and slow dynamic memory
models": the heap allocator's metadata and the application data both live in
the *simulated* memory table, and every allocator step is charged simulated
cycles (and costs real host work) proportional to the number of header words
it touches.  The module speaks the same protocol as the host-backed wrapper
(:mod:`repro.memory.protocol`), so the software API and workloads run
unchanged on either — which is precisely what experiment E2 needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .dynamic_base import DynamicMemorySlave, decode_element, encode_element
from .heap import CountingAccessor, FreeListHeap, HeapError
from .latency import LatencyModel
from .protocol import (
    DATA_TYPE_SIZES,
    DataType,
    Endianness,
    MemCommand,
    MemOpcode,
    MemResult,
    MemStatus,
)


@dataclass
class _Allocation:
    """Python-side mirror of one live allocation's typing information."""

    vptr: int
    dim: int
    data_type: DataType
    reserved_by: Optional[int] = None

    @property
    def element_size(self) -> int:
        return DATA_TYPE_SIZES[self.data_type]

    @property
    def size_bytes(self) -> int:
        return self.dim * self.element_size


class ModeledDynamicMemory(DynamicMemorySlave):
    """A dynamic memory whose allocator runs inside the simulated storage.

    Parameters
    ----------
    size_bytes:
        Capacity of the simulated memory table (heap region).
    sm_addr:
        Identifier matched against the ``sm_addr`` field of every command.
    latency:
        Base latency parameters; allocator header accesses are charged on top
        (``header_access_cycles`` each), which is what makes this model slow
        for allocation-heavy workloads.
    """

    def __init__(
        self,
        size_bytes: int,
        sm_addr: int = 0,
        endianness: Endianness = Endianness.LITTLE,
        latency: Optional[LatencyModel] = None,
        header_access_cycles: int = 1,
        name: str = "modeled_dynmem",
    ) -> None:
        super().__init__(sm_addr=sm_addr, endianness=endianness, name=name)
        if size_bytes <= 64:
            raise ValueError("modeled dynamic memory needs more than 64 bytes")
        self.size_bytes = size_bytes
        self.storage = bytearray(size_bytes)
        self.latency_model = latency if latency is not None else LatencyModel()
        self.header_access_cycles = header_access_cycles
        self._accessor = CountingAccessor(self._read_word, self._write_word)
        self.heap = FreeListHeap(self._accessor, base=0, size_bytes=size_bytes)
        self.heap.initialize()
        self._allocations: Dict[int, _Allocation] = {}
        #: (heap accessor reads+writes) consumed by the most recent command.
        self._last_heap_accesses = 0

    # -- word accessor over the simulated storage ----------------------------------
    def _read_word(self, address: int) -> int:
        return int.from_bytes(self.storage[address:address + 4], "little")

    def _write_word(self, address: int, value: int) -> None:
        self.storage[address:address + 4] = (value & 0xFFFFFFFF).to_bytes(4, "little")

    # -- diagnostics ----------------------------------------------------------------
    def live_count(self) -> int:
        return len(self._allocations)

    def used_bytes(self) -> int:
        return sum(a.size_bytes for a in self._allocations.values())

    # -- functional behaviour ----------------------------------------------------------
    def _execute(self, command: MemCommand, io_words: List[int],
                 master_id: int) -> MemResult:
        before = self._accessor.accesses
        try:
            result = self._dispatch(command, io_words, master_id)
        except HeapError:
            result = MemResult(MemStatus.ERR_INVALID_PTR)
        self._last_heap_accesses = self._accessor.accesses - before
        return result

    def _dispatch(self, command: MemCommand, io_words: List[int],
                  master_id: int) -> MemResult:
        opcode = command.opcode
        if opcode == MemOpcode.ALLOC:
            return self._op_alloc(command)
        if opcode == MemOpcode.FREE:
            return self._op_free(command, master_id)
        if opcode == MemOpcode.WRITE:
            return self._op_write(command, master_id)
        if opcode == MemOpcode.READ:
            return self._op_read(command)
        if opcode == MemOpcode.WRITE_ARRAY:
            return self._op_write_array(command, io_words, master_id)
        if opcode == MemOpcode.READ_ARRAY:
            return self._op_read_array(command)
        if opcode == MemOpcode.RESERVE:
            return self._op_reserve(command, master_id)
        if opcode == MemOpcode.RELEASE:
            return self._op_release(command, master_id)
        if opcode == MemOpcode.QUERY:
            return self._op_query(command)
        if opcode == MemOpcode.NOP:
            return MemResult(MemStatus.OK)
        return MemResult(MemStatus.ERR_BAD_OPCODE)

    # -- individual operations -------------------------------------------------------------
    def _op_alloc(self, command: MemCommand) -> MemResult:
        if command.dim <= 0:
            return MemResult(MemStatus.ERR_MALFORMED)
        element_size = DATA_TYPE_SIZES[command.data_type]
        payload = self.heap.malloc(command.dim * element_size)
        if payload is None:
            return MemResult(MemStatus.ERR_FULL)
        allocation = _Allocation(payload, command.dim, command.data_type)
        self._allocations[payload] = allocation
        return MemResult(MemStatus.OK, value=payload)

    def _find(self, vptr: int) -> Optional[Tuple[_Allocation, int]]:
        """Resolve ``vptr`` to (allocation, byte offset) with pointer arithmetic."""
        allocation = self._allocations.get(vptr)
        if allocation is not None:
            return allocation, 0
        for candidate in self._allocations.values():
            if candidate.vptr <= vptr < candidate.vptr + candidate.size_bytes:
                return candidate, vptr - candidate.vptr
        return None

    def _op_free(self, command: MemCommand, master_id: int) -> MemResult:
        allocation = self._allocations.get(command.vptr)
        if allocation is None:
            return MemResult(MemStatus.ERR_INVALID_PTR)
        if allocation.reserved_by is not None and allocation.reserved_by != master_id:
            return MemResult(MemStatus.ERR_RESERVED)
        self.heap.free(command.vptr)
        del self._allocations[command.vptr]
        return MemResult(MemStatus.OK)

    def _element_position(self, command: MemCommand
                          ) -> "MemResult | Tuple[_Allocation, int]":
        found = self._find(command.vptr)
        if found is None:
            return MemResult(MemStatus.ERR_INVALID_PTR)
        allocation, byte_offset = found
        element_index = byte_offset // allocation.element_size + command.offset
        if element_index < 0 or element_index >= allocation.dim:
            return MemResult(MemStatus.ERR_OUT_OF_RANGE)
        return allocation, allocation.vptr + element_index * allocation.element_size

    def _op_write(self, command: MemCommand, master_id: int) -> MemResult:
        position = self._element_position(command)
        if isinstance(position, MemResult):
            return position
        allocation, address = position
        if allocation.reserved_by is not None and allocation.reserved_by != master_id:
            return MemResult(MemStatus.ERR_RESERVED)
        payload = encode_element(command.data, allocation.data_type, self.endianness)
        self.storage[address:address + len(payload)] = payload
        return MemResult(MemStatus.OK)

    def _op_read(self, command: MemCommand) -> MemResult:
        position = self._element_position(command)
        if isinstance(position, MemResult):
            return position
        allocation, address = position
        raw = bytes(self.storage[address:address + allocation.element_size])
        value = decode_element(raw, allocation.data_type, self.endianness)
        return MemResult(MemStatus.OK, value=value & 0xFFFFFFFF)

    def _op_write_array(self, command: MemCommand, io_words: List[int],
                        master_id: int) -> MemResult:
        found = self._find(command.vptr)
        if found is None:
            return MemResult(MemStatus.ERR_INVALID_PTR)
        allocation, byte_offset = found
        if allocation.reserved_by is not None and allocation.reserved_by != master_id:
            return MemResult(MemStatus.ERR_RESERVED)
        start = byte_offset // allocation.element_size + command.offset
        if start < 0 or start + command.dim > allocation.dim:
            return MemResult(MemStatus.ERR_OUT_OF_RANGE)
        for index in range(command.dim):
            value = io_words[index] if index < len(io_words) else 0
            address = allocation.vptr + (start + index) * allocation.element_size
            payload = encode_element(value, allocation.data_type, self.endianness)
            self.storage[address:address + len(payload)] = payload
        return MemResult(MemStatus.OK, value=command.dim)

    def _op_read_array(self, command: MemCommand) -> MemResult:
        found = self._find(command.vptr)
        if found is None:
            return MemResult(MemStatus.ERR_INVALID_PTR)
        allocation, byte_offset = found
        start = byte_offset // allocation.element_size + command.offset
        if start < 0 or start + command.dim > allocation.dim:
            return MemResult(MemStatus.ERR_OUT_OF_RANGE)
        words: List[int] = []
        for index in range(command.dim):
            address = allocation.vptr + (start + index) * allocation.element_size
            raw = bytes(self.storage[address:address + allocation.element_size])
            value = decode_element(raw, allocation.data_type, self.endianness)
            words.append(value & 0xFFFFFFFF)
        return MemResult(MemStatus.OK, value=command.dim, burst=words)

    def _op_reserve(self, command: MemCommand, master_id: int) -> MemResult:
        allocation = self._allocations.get(command.vptr)
        if allocation is None:
            return MemResult(MemStatus.ERR_INVALID_PTR)
        if allocation.reserved_by is not None and allocation.reserved_by != master_id:
            return MemResult(MemStatus.ERR_RESERVED)
        allocation.reserved_by = master_id
        return MemResult(MemStatus.OK)

    def _op_release(self, command: MemCommand, master_id: int) -> MemResult:
        allocation = self._allocations.get(command.vptr)
        if allocation is None:
            return MemResult(MemStatus.ERR_INVALID_PTR)
        if allocation.reserved_by is not None and allocation.reserved_by != master_id:
            return MemResult(MemStatus.ERR_RESERVED)
        allocation.reserved_by = None
        return MemResult(MemStatus.OK)

    def _op_query(self, command: MemCommand) -> MemResult:
        allocation = self._allocations.get(command.vptr)
        if allocation is None:
            return MemResult(MemStatus.ERR_INVALID_PTR)
        return MemResult(MemStatus.OK, value=allocation.size_bytes)

    # -- timing ------------------------------------------------------------------------------
    def _cycles_for(self, command: MemCommand, result: MemResult) -> int:
        model = self.latency_model
        heap_cost = self._last_heap_accesses * self.header_access_cycles
        opcode = command.opcode
        if opcode == MemOpcode.ALLOC:
            return model.alloc(command.dim) + heap_cost
        if opcode == MemOpcode.FREE:
            return model.free(0) + heap_cost
        if opcode == MemOpcode.WRITE:
            return model.scalar_write(4) + heap_cost
        if opcode == MemOpcode.READ:
            return model.scalar_read(4) + heap_cost
        if opcode == MemOpcode.WRITE_ARRAY:
            return model.burst_write(command.dim, command.dim * 4) + heap_cost
        if opcode == MemOpcode.READ_ARRAY:
            return model.burst_read(command.dim, command.dim * 4) + heap_cost
        return max(1, self.register_access_cycles() + heap_cost)

    # -- bench helpers -------------------------------------------------------------------------
    def heap_accesses(self) -> int:
        """Total allocator header-word accesses performed so far."""
        return self._accessor.accesses
