"""Shared bus-side machinery for dynamic memory modules.

Both the paper's host-backed shared-memory wrapper and the traditional
fully-modelled baseline expose the same register window (defined in
:mod:`repro.memory.protocol`), so the software API can target either.  This
module implements the common plumbing once:

* decoding of command-port bursts and of individual register pokes,
* the I/O array staging buffer used for indexed-structure transfers,
* element encode/decode helpers (data type width, signedness, endianness),
* per-opcode operation counters used by the evaluation benches.

Concrete modules implement :meth:`DynamicMemorySlave._execute` (functional
behaviour) and :meth:`DynamicMemorySlave._cycles_for` (timing).
"""

from __future__ import annotations

import struct
from collections import Counter
from typing import Dict, Generator, List, Optional

from ..fabric import BusSlave
from ..fabric import BusOp, BusRequest, BusResponse, ResponseStatus
from .protocol import (
    DATA_TYPE_SIGNED,
    DATA_TYPE_SIZES,
    IO_ARRAY_BASE,
    IO_ARRAY_BYTES,
    REG_COMMAND,
    REG_DATA_IN,
    REG_DIM,
    REG_GO,
    REG_LIVE_COUNT,
    REG_OFFSET,
    REG_OPCODE,
    REG_RESULT,
    REG_SM_ADDR,
    REG_STATUS,
    REG_TYPE,
    REG_USED_BYTES,
    REG_VPTR,
    REGISTER_WINDOW_BYTES,
    DataType,
    Endianness,
    MemCommand,
    MemOpcode,
    MemResult,
    MemStatus,
    ProtocolError,
)

# ---------------------------------------------------------------------------
# Element encoding helpers (shared by the translator and the baseline).
# ---------------------------------------------------------------------------


def encode_element(value: int, data_type: DataType, endianness: Endianness) -> bytes:
    """Encode one element into its in-memory byte representation."""
    size = DATA_TYPE_SIZES[data_type]
    if data_type is DataType.FLOAT32:
        # Values cross the interconnect as raw 32-bit patterns.
        return struct.pack(
            "<I" if endianness is Endianness.LITTLE else ">I", value & 0xFFFFFFFF
        )
    mask = (1 << (8 * size)) - 1
    return (value & mask).to_bytes(size, endianness.value)


def decode_element(payload: bytes, data_type: DataType, endianness: Endianness) -> int:
    """Decode one element from its in-memory byte representation."""
    size = DATA_TYPE_SIZES[data_type]
    if len(payload) != size:
        raise ValueError(f"expected {size} bytes for {data_type.name}, got {len(payload)}")
    raw = int.from_bytes(payload, endianness.value)
    if DATA_TYPE_SIGNED[data_type] and raw >= 1 << (8 * size - 1):
        raw -= 1 << (8 * size)
    return raw


def to_signed(value: int, data_type: DataType) -> int:
    """Reinterpret a raw register word as the (possibly signed) element value."""
    size = DATA_TYPE_SIZES[data_type]
    mask = (1 << (8 * size)) - 1
    raw = value & mask
    if DATA_TYPE_SIGNED[data_type] and raw >= 1 << (8 * size - 1):
        raw -= 1 << (8 * size)
    return raw


# ---------------------------------------------------------------------------
# The common slave base class.
# ---------------------------------------------------------------------------


class DynamicMemorySlave(BusSlave):
    """Bus-facing front end shared by all dynamic memory modules."""

    def __init__(self, sm_addr: int = 0,
                 endianness: Endianness = Endianness.LITTLE,
                 name: str = "dynmem") -> None:
        self.name = name
        self.sm_addr = sm_addr
        self.endianness = endianness
        #: Per-master I/O arrays (staging buffers for indexed-structure
        #: transfers).  Keeping one array per master port mirrors hardware
        #: wrappers with per-port I/O registers and prevents interleaved
        #: transactions from different processors clobbering each other's
        #: staged data.
        self._io_arrays: Dict[int, List[int]] = {}
        self.last_status: MemStatus = MemStatus.OK
        self.last_result: int = 0
        self.op_counts: Counter = Counter()
        self.op_cycles: Counter = Counter()
        self.register_accesses = 0
        #: Idle evaluations performed by cycle-driven platforms (see
        #: ``PlatformConfig.idle_tick_memories``).
        self.idle_cycles = 0
        self._staged: Dict[int, int] = {}
        self._current_master: int = -1

    def idle_tick(self) -> None:
        """Account one idle-cycle evaluation of this memory module."""
        self.idle_cycles += 1

    def account_idle_cycles(self, cycles: int) -> None:
        """Account ``cycles`` idle evaluations at once (batched bookkeeping)."""
        self.idle_cycles += cycles

    # -- I/O array staging ------------------------------------------------------
    def io_array_for(self, master_id: int) -> List[int]:
        """The staging I/O array of ``master_id`` (created on first use)."""
        if master_id not in self._io_arrays:
            self._io_arrays[master_id] = [0] * (IO_ARRAY_BYTES // 4)
        return self._io_arrays[master_id]

    @property
    def io_array(self) -> List[int]:
        """The I/O array of the most recent requester (kept for tests/tools)."""
        return self.io_array_for(self._current_master if self._current_master >= 0
                                 else 0)

    # -- subclass hooks -------------------------------------------------------
    def _execute(self, command: MemCommand, io_words: List[int],
                 master_id: int) -> MemResult:
        """Perform the operation functionally and return its result."""
        raise NotImplementedError

    def _cycles_for(self, command: MemCommand, result: MemResult) -> int:
        """Number of slave cycles the operation should consume."""
        raise NotImplementedError

    def live_count(self) -> int:
        """Number of live allocations (diagnostic register)."""
        raise NotImplementedError

    def used_bytes(self) -> int:
        """Bytes currently allocated (diagnostic register)."""
        raise NotImplementedError

    def register_access_cycles(self) -> int:
        """Cycles charged for a plain register/IO-array access."""
        return 1

    # -- BusSlave protocol ------------------------------------------------------
    def serve(self, request: BusRequest, offset: int
              ) -> Generator[None, None, BusResponse]:
        if offset >= REGISTER_WINDOW_BYTES:
            yield None
            return BusResponse(status=ResponseStatus.SLAVE_ERROR)
        self._current_master = request.master_id
        if self._is_command(request, offset):
            response, cycles = self._handle_command(request)
        elif offset >= IO_ARRAY_BASE:
            response, cycles = self._handle_io_array(request, offset)
        else:
            response, cycles = self._handle_register(request, offset)
        for _ in range(max(0, cycles - 1)):
            yield None
        return response

    # -- command handling ----------------------------------------------------------
    @staticmethod
    def _is_command(request: BusRequest, offset: int) -> bool:
        return (offset == REG_COMMAND and request.op is BusOp.WRITE
                and request.burst_data is not None)

    def _handle_command(self, request: BusRequest):
        assert request.burst_data is not None
        try:
            command = MemCommand.from_words(list(request.burst_data))
        except ProtocolError:
            self.last_status = MemStatus.ERR_MALFORMED
            self.last_result = 0
            return (BusResponse(status=ResponseStatus.NACK,
                                data=int(MemStatus.ERR_MALFORMED)),
                    self.register_access_cycles() + len(request.burst_data))
        result = self._run_command(command, request.master_id)
        cycles = self._cycles_for(command, result)
        # Delivering the command words costs one cycle per word on top of the
        # operation itself (opcode + sm_addr + operands, as in the paper's
        # cycle-by-cycle handshake).
        cycles += len(request.burst_data)
        status = ResponseStatus.OK if result.ok else ResponseStatus.NACK
        return BusResponse(status=status, data=result.value), cycles

    def _run_command(self, command: MemCommand, master_id: int) -> MemResult:
        io_array = self.io_array_for(master_id)
        if command.sm_addr != self.sm_addr:
            result = MemResult(MemStatus.ERR_BAD_SM_ADDR)
        else:
            result = self._execute(command, list(io_array), master_id)
        self.last_status = result.status
        self.last_result = result.value
        self.op_counts[command.opcode] += 1
        if result.burst is not None:
            # Stage read-array results in the I/O array for later burst reads.
            for index, word in enumerate(result.burst):
                if index < len(io_array):
                    io_array[index] = word & 0xFFFFFFFF
        return result

    # -- register file handling --------------------------------------------------------
    def _handle_register(self, request: BusRequest, offset: int):
        self.register_accesses += 1
        cycles = self.register_access_cycles()
        if request.op is BusOp.WRITE:
            if offset == REG_GO:
                command = self._command_from_staged()
                result = self._run_command(command, request.master_id)
                cycles = self._cycles_for(command, result) + cycles
                status = ResponseStatus.OK if result.ok else ResponseStatus.NACK
                return BusResponse(status=status, data=result.value), cycles
            self._staged[offset] = request.data
            return BusResponse(), cycles
        # Reads.
        value = self._read_register(offset)
        if value is None:
            return BusResponse(status=ResponseStatus.SLAVE_ERROR), cycles
        return BusResponse(data=value), cycles

    def _read_register(self, offset: int) -> Optional[int]:
        if offset == REG_STATUS:
            return int(self.last_status)
        if offset == REG_RESULT:
            return self.last_result & 0xFFFFFFFF
        if offset == REG_LIVE_COUNT:
            return self.live_count()
        if offset == REG_USED_BYTES:
            return self.used_bytes()
        if offset < REG_STATUS:
            # Operand registers read back their staged value.
            return self._staged.get(offset, 0)
        return None

    def _command_from_staged(self) -> MemCommand:
        opcode_raw = self._staged.get(REG_OPCODE, int(MemOpcode.NOP))
        try:
            opcode = MemOpcode(opcode_raw)
        except ValueError:
            opcode = MemOpcode.NOP
        try:
            data_type = DataType(self._staged.get(REG_TYPE, int(DataType.UINT32)))
        except ValueError:
            data_type = DataType.UINT32
        return MemCommand(
            opcode=opcode,
            sm_addr=self._staged.get(REG_SM_ADDR, self.sm_addr),
            vptr=self._staged.get(REG_VPTR, 0),
            dim=self._staged.get(REG_DIM, 0),
            data_type=data_type,
            data=self._staged.get(REG_DATA_IN, 0),
            offset=self._staged.get(REG_OFFSET, 0),
        )

    # -- I/O array handling ----------------------------------------------------------------
    def _handle_io_array(self, request: BusRequest, offset: int):
        io_array = self.io_array_for(request.master_id)
        index = (offset - IO_ARRAY_BASE) // 4
        words = request.word_count
        cycles = self.register_access_cycles() + max(0, words - 1)
        if index + words > len(io_array):
            return BusResponse(status=ResponseStatus.SLAVE_ERROR), cycles
        if request.op is BusOp.WRITE:
            payload = (request.burst_data if request.burst_data is not None
                       else [request.data])
            for position, word in enumerate(payload):
                io_array[index + position] = word & 0xFFFFFFFF
            return BusResponse(), cycles
        if request.burst_length:
            return (BusResponse(burst_data=list(
                io_array[index:index + request.burst_length])), cycles)
        return BusResponse(data=io_array[index]), cycles
