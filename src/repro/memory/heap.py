"""A first-fit free-list heap whose metadata lives *inside* a memory.

This is the building block of the traditional, fully-modelled dynamic memory
baseline: every header word the allocator touches goes through a
:class:`WordAccessor`, so when the accessor is backed by a simulated memory
each ``malloc``/``free`` costs a number of (simulated and host) accesses that
grows with heap fragmentation — exactly the "complex and slow dynamic memory
models" the paper contrasts its wrapper against.

Block layout (all fields are 32-bit words)::

    +0: block size in bytes, including the 8-byte header
    +4: status word (0 = free, 1 = allocated)
    +8: payload ...

The heap is an implicit list: blocks are walked from the region base by
adding their sizes.  ``free`` coalesces with the *next* block when possible
and a full :meth:`coalesce` pass merges every adjacent pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

HEADER_BYTES = 8
_FREE = 0
_USED = 1


class HeapError(Exception):
    """Raised on invalid heap operations (bad free, corrupted headers...)."""


class WordAccessor:
    """Accessor interface used by the heap to touch memory words."""

    def read_word(self, address: int) -> int:
        raise NotImplementedError

    def write_word(self, address: int, value: int) -> None:
        raise NotImplementedError


class CountingAccessor(WordAccessor):
    """Adapter wrapping read/write callables and counting every access."""

    def __init__(self, read: Callable[[int], int],
                 write: Callable[[int, int], None]) -> None:
        self._read = read
        self._write = write
        self.reads = 0
        self.writes = 0

    @property
    def accesses(self) -> int:
        """Total number of word accesses performed through this adapter."""
        return self.reads + self.writes

    def read_word(self, address: int) -> int:
        self.reads += 1
        return self._read(address)

    def write_word(self, address: int, value: int) -> None:
        self.writes += 1
        self._write(address, value)


@dataclass
class HeapStats:
    """Counters describing the work performed by the allocator."""

    malloc_calls: int = 0
    free_calls: int = 0
    failed_allocs: int = 0
    splits: int = 0
    coalesces: int = 0


class FreeListHeap:
    """First-fit allocator over ``[base, base + size_bytes)`` of an accessor."""

    def __init__(self, accessor: WordAccessor, base: int, size_bytes: int,
                 alignment: int = 4) -> None:
        if size_bytes <= HEADER_BYTES:
            raise ValueError("heap region too small for even one header")
        if alignment < 4 or alignment & (alignment - 1):
            raise ValueError("alignment must be a power of two >= 4")
        self._mem = accessor
        self.base = base
        self.size_bytes = size_bytes
        self.alignment = alignment
        self.stats = HeapStats()
        self._initialized = False

    # -- setup ----------------------------------------------------------------
    def initialize(self) -> None:
        """Format the region as a single free block."""
        self._mem.write_word(self.base, self.size_bytes)
        self._mem.write_word(self.base + 4, _FREE)
        self._initialized = True

    def _require_init(self) -> None:
        if not self._initialized:
            raise HeapError("heap used before initialize()")

    # -- allocation -----------------------------------------------------------
    def _aligned(self, nbytes: int) -> int:
        nbytes = max(1, nbytes)
        mask = self.alignment - 1
        return (nbytes + mask) & ~mask

    def malloc(self, nbytes: int) -> Optional[int]:
        """Allocate ``nbytes``; returns the payload address or ``None`` if full."""
        self._require_init()
        self.stats.malloc_calls += 1
        needed = self._aligned(nbytes) + HEADER_BYTES
        cursor = self.base
        end = self.base + self.size_bytes
        while cursor < end:
            block_size = self._mem.read_word(cursor)
            status = self._mem.read_word(cursor + 4)
            if block_size < HEADER_BYTES or cursor + block_size > end:
                raise HeapError(f"corrupted block header at {cursor:#x}")
            if status == _FREE and block_size >= needed:
                remainder = block_size - needed
                if remainder >= HEADER_BYTES + self.alignment:
                    # Split: the tail remains free.
                    self._mem.write_word(cursor, needed)
                    self._mem.write_word(cursor + needed, remainder)
                    self._mem.write_word(cursor + needed + 4, _FREE)
                    self.stats.splits += 1
                self._mem.write_word(cursor + 4, _USED)
                return cursor + HEADER_BYTES
            cursor += block_size
        self.stats.failed_allocs += 1
        return None

    def free(self, payload_address: int) -> None:
        """Release the allocation whose payload starts at ``payload_address``."""
        self._require_init()
        header = payload_address - HEADER_BYTES
        if header < self.base or header >= self.base + self.size_bytes:
            raise HeapError(f"free of address {payload_address:#x} outside heap")
        status = self._mem.read_word(header + 4)
        if status != _USED:
            raise HeapError(f"double or invalid free at {payload_address:#x}")
        self.stats.free_calls += 1
        self._mem.write_word(header + 4, _FREE)
        # Eagerly coalesce with the following block if it is free.
        size = self._mem.read_word(header)
        nxt = header + size
        end = self.base + self.size_bytes
        if nxt < end:
            next_size = self._mem.read_word(nxt)
            next_status = self._mem.read_word(nxt + 4)
            if next_size < HEADER_BYTES or nxt + next_size > end:
                # A corrupted neighbour header must fail loudly (as malloc
                # and walk do), not silently produce a merged block that
                # overruns the region.
                raise HeapError(f"corrupted block header at {nxt:#x}")
            if next_status == _FREE:
                self._mem.write_word(header, size + next_size)
                self.stats.coalesces += 1

    def coalesce(self) -> int:
        """Merge every pair of adjacent free blocks; returns the merge count."""
        self._require_init()
        merged = 0
        cursor = self.base
        end = self.base + self.size_bytes
        while cursor < end:
            size = self._mem.read_word(cursor)
            status = self._mem.read_word(cursor + 4)
            nxt = cursor + size
            if nxt >= end:
                break
            next_size = self._mem.read_word(nxt)
            next_status = self._mem.read_word(nxt + 4)
            if status == _FREE and next_status == _FREE:
                self._mem.write_word(cursor, size + next_size)
                merged += 1
                continue  # re-check the grown block against its new neighbour
            cursor = nxt
        self.stats.coalesces += merged
        return merged

    # -- inspection ------------------------------------------------------------
    def walk(self) -> List[Tuple[int, int, bool]]:
        """Return ``(address, size, used)`` for every block, in address order."""
        self._require_init()
        blocks = []
        cursor = self.base
        end = self.base + self.size_bytes
        while cursor < end:
            size = self._mem.read_word(cursor)
            status = self._mem.read_word(cursor + 4)
            if size < HEADER_BYTES or cursor + size > end:
                raise HeapError(f"corrupted block header at {cursor:#x}")
            blocks.append((cursor, size, status == _USED))
            cursor += size
        return blocks

    def used_bytes(self) -> int:
        """Payload bytes currently allocated."""
        return sum(size - HEADER_BYTES for _, size, used in self.walk() if used)

    def free_bytes(self) -> int:
        """Payload bytes available (ignoring fragmentation)."""
        return sum(size - HEADER_BYTES for _, size, used in self.walk() if not used)

    def live_allocations(self) -> int:
        """Number of allocated blocks."""
        return sum(1 for _, _, used in self.walk() if used)

    def check_consistency(self) -> None:
        """Raise :class:`HeapError` unless the block list tiles the region exactly."""
        blocks = self.walk()
        expected = self.base
        for address, size, _used in blocks:
            if address != expected:
                raise HeapError(f"block list has a gap at {expected:#x}")
            expected += size
        if expected != self.base + self.size_bytes:
            raise HeapError("block list does not cover the whole region")
