"""Functional + cycle-approximate ALM CPU core.

The core executes decoded instructions from a local instruction memory and
keeps a local scratchpad for data.  Accesses that fall outside the
scratchpad — and every software interrupt — are *not* handled internally:
:meth:`Cpu.step` returns an :class:`Action` describing what the surrounding
processing element must do (issue a bus transaction, run an API call), which
is how the ISS plugs into the co-simulation platform in
:mod:`repro.iss.cosim`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, List, Optional

from ..isa.encoding import decode
from ..isa.instructions import (
    BranchOp,
    DpOp,
    InsnClass,
    Instruction,
    MemOp,
    MulOp,
    NUM_REGISTERS,
    REG_LR,
    REG_PC,
    SysOp,
    WORD_BYTES,
    condition_passed,
)

_WORD_MASK = 0xFFFFFFFF


class CpuError(Exception):
    """Raised on invalid CPU operation (bad PC, missing external handler...)."""


class ActionKind(enum.Enum):
    """External interactions a step may require from the processing element."""

    NONE = "none"
    LOAD = "load"
    STORE = "store"
    SWI = "swi"
    HALT = "halt"


@dataclass
class Action:
    """Description of the external work required to complete an instruction."""

    kind: ActionKind
    address: int = 0
    value: int = 0
    size: int = WORD_BYTES
    register: int = 0
    swi_number: int = 0


@dataclass
class StepResult:
    """Outcome of executing one instruction."""

    cycles: int
    action: Action
    executed: Optional[Instruction] = None
    skipped: bool = False


@dataclass
class CpuStats:
    """Execution statistics."""

    instructions: int = 0
    cycles: int = 0
    loads: int = 0
    stores: int = 0
    branches_taken: int = 0
    swi_calls: int = 0
    skipped: int = 0


class Cpu:
    """A single ALM core with local instruction and scratchpad memory."""

    #: Cycle costs per instruction category (ARM7-ish).
    CYCLES_ALU = 1
    CYCLES_MUL = 3
    CYCLES_MEM = 2
    CYCLES_BRANCH_TAKEN = 3
    CYCLES_SWI = 4

    def __init__(self, program_words: List[int], scratchpad_bytes: int = 4096,
                 scratchpad_base: int = 0x0000_0000) -> None:
        self.program = list(program_words)
        self.registers = [0] * NUM_REGISTERS
        self.flag_n = False
        self.flag_z = False
        self.flag_c = False
        self.flag_v = False
        self.halted = False
        self.scratchpad = bytearray(scratchpad_bytes)
        self.scratchpad_base = scratchpad_base
        self.stats = CpuStats()

    # -- register access -----------------------------------------------------------
    @property
    def pc(self) -> int:
        """The program counter (word-granular byte address)."""
        return self.registers[REG_PC]

    @pc.setter
    def pc(self, value: int) -> None:
        self.registers[REG_PC] = value & _WORD_MASK

    def read_register(self, index: int) -> int:
        return self.registers[index]

    def write_register(self, index: int, value: int) -> None:
        self.registers[index] = value & _WORD_MASK

    # -- scratchpad ------------------------------------------------------------------
    def in_scratchpad(self, address: int, size: int = WORD_BYTES) -> bool:
        """True when ``[address, address+size)`` falls in the local scratchpad."""
        offset = address - self.scratchpad_base
        return 0 <= offset and offset + size <= len(self.scratchpad)

    def scratchpad_load(self, address: int, size: int) -> int:
        offset = address - self.scratchpad_base
        return int.from_bytes(self.scratchpad[offset:offset + size], "little")

    def scratchpad_store(self, address: int, value: int, size: int) -> None:
        offset = address - self.scratchpad_base
        self.scratchpad[offset:offset + size] = (value & ((1 << (8 * size)) - 1)
                                                 ).to_bytes(size, "little")

    # -- flag helpers ------------------------------------------------------------------
    def _set_nz(self, result: int) -> None:
        result &= _WORD_MASK
        self.flag_n = bool(result & 0x8000_0000)
        self.flag_z = result == 0

    def _add_with_flags(self, a: int, b: int, carry_in: int = 0) -> int:
        a &= _WORD_MASK
        b &= _WORD_MASK
        total = a + b + carry_in
        result = total & _WORD_MASK
        self.flag_c = total > _WORD_MASK
        signed_a = a - (1 << 32) if a & 0x8000_0000 else a
        signed_b = b - (1 << 32) if b & 0x8000_0000 else b
        signed_r = signed_a + signed_b + carry_in
        self.flag_v = not (-(1 << 31) <= signed_r < (1 << 31))
        self._set_nz(result)
        return result

    # -- execution -------------------------------------------------------------------------
    def fetch(self) -> Instruction:
        """Fetch and decode the instruction at the current PC."""
        index = self.pc // WORD_BYTES
        if not 0 <= index < len(self.program):
            raise CpuError(f"PC {self.pc:#010x} outside the loaded program")
        return decode(self.program[index])

    def step(self) -> StepResult:
        """Execute one instruction; returns cycles spent and any external action."""
        if self.halted:
            return StepResult(cycles=0, action=Action(ActionKind.HALT))
        instruction = self.fetch()
        next_pc = self.pc + WORD_BYTES
        if not condition_passed(instruction.cond, self.flag_n, self.flag_z,
                                self.flag_c, self.flag_v):
            self.pc = next_pc
            self.stats.instructions += 1
            self.stats.skipped += 1
            self.stats.cycles += self.CYCLES_ALU
            return StepResult(cycles=self.CYCLES_ALU, action=Action(ActionKind.NONE),
                              executed=instruction, skipped=True)
        self.pc = next_pc
        self.stats.instructions += 1
        result = self._execute(instruction)
        self.stats.cycles += result.cycles
        return result

    def _execute(self, instruction: Instruction) -> StepResult:
        klass = instruction.klass
        if klass in (InsnClass.DP_REG, InsnClass.DP_IMM):
            return self._execute_dp(instruction)
        if klass is InsnClass.MUL:
            return self._execute_mul(instruction)
        if klass is InsnClass.MEM:
            return self._execute_mem(instruction)
        if klass is InsnClass.BRANCH:
            return self._execute_branch(instruction)
        return self._execute_sys(instruction)

    def _operand(self, instruction: Instruction) -> int:
        if instruction.klass is InsnClass.DP_IMM:
            return instruction.imm & _WORD_MASK
        return self.registers[instruction.rm]

    def _execute_dp(self, instruction: Instruction) -> StepResult:
        # Only the comparison opcodes (CMP/CMN/TST) update the NZCV flags, so
        # conditionally executed instructions between a comparison and its
        # consumers do not clobber the condition they rely on.
        op = DpOp(instruction.op)
        rn_value = self.registers[instruction.rn]
        operand = self._operand(instruction)
        write = True
        if op is DpOp.MOV:
            result = operand
        elif op is DpOp.MVN:
            result = (~operand) & _WORD_MASK
        elif op is DpOp.ADD:
            result = (rn_value + operand) & _WORD_MASK
        elif op is DpOp.SUB:
            result = (rn_value - operand) & _WORD_MASK
        elif op is DpOp.RSB:
            result = (operand - rn_value) & _WORD_MASK
        elif op is DpOp.AND:
            result = rn_value & operand
        elif op is DpOp.ORR:
            result = rn_value | operand
        elif op is DpOp.EOR:
            result = rn_value ^ operand
        elif op is DpOp.CMP:
            self._add_with_flags(rn_value, (~operand) & _WORD_MASK, 1)
            result, write = 0, False
        elif op is DpOp.CMN:
            self._add_with_flags(rn_value, operand)
            result, write = 0, False
        elif op is DpOp.TST:
            self._set_nz(rn_value & operand)
            result, write = 0, False
        elif op is DpOp.LSL:
            shift = operand & 0xFF
            result = (rn_value << shift) & _WORD_MASK if shift < 32 else 0
        elif op is DpOp.LSR:
            shift = operand & 0xFF
            result = (rn_value >> shift) if shift < 32 else 0
        elif op is DpOp.ASR:
            shift = min(operand & 0xFF, 31)
            signed = rn_value - (1 << 32) if rn_value & 0x8000_0000 else rn_value
            result = (signed >> shift) & _WORD_MASK
        else:  # pragma: no cover - enum is exhaustive
            raise CpuError(f"unhandled data-processing opcode {op!r}")
        if write:
            self.write_register(instruction.rd, result)
        return StepResult(cycles=self.CYCLES_ALU, action=Action(ActionKind.NONE),
                          executed=instruction)

    def _execute_mul(self, instruction: Instruction) -> StepResult:
        op = MulOp(instruction.op)
        product = self.registers[instruction.rn] * self.registers[instruction.rm]
        if op is MulOp.MLA:
            product += self.registers[instruction.rd]
        result = product & _WORD_MASK
        self.write_register(instruction.rd, result)
        return StepResult(cycles=self.CYCLES_MUL, action=Action(ActionKind.NONE),
                          executed=instruction)

    def _execute_mem(self, instruction: Instruction) -> StepResult:
        op = MemOp(instruction.op)
        address = (self.registers[instruction.rn] + instruction.imm) & _WORD_MASK
        size = 1 if op in (MemOp.LDRB, MemOp.STRB) else WORD_BYTES
        is_load = op in (MemOp.LDR, MemOp.LDRB)
        if is_load:
            self.stats.loads += 1
        else:
            self.stats.stores += 1
        if self.in_scratchpad(address, size):
            if is_load:
                self.write_register(instruction.rd,
                                    self.scratchpad_load(address, size))
            else:
                self.scratchpad_store(address, self.registers[instruction.rd], size)
            return StepResult(cycles=self.CYCLES_MEM, action=Action(ActionKind.NONE),
                              executed=instruction)
        # External access: the processing element completes it over the bus.
        if is_load:
            action = Action(ActionKind.LOAD, address=address, size=size,
                            register=instruction.rd)
        else:
            action = Action(ActionKind.STORE, address=address, size=size,
                            value=self.registers[instruction.rd])
        return StepResult(cycles=self.CYCLES_MEM, action=action,
                          executed=instruction)

    def _execute_branch(self, instruction: Instruction) -> StepResult:
        op = BranchOp(instruction.op)
        self.stats.branches_taken += 1
        if op is BranchOp.BX:
            self.pc = self.registers[instruction.rn] & ~0x3
        else:
            if op is BranchOp.BL:
                self.write_register(REG_LR, self.pc)
            self.pc = (self.pc + instruction.imm * WORD_BYTES) & _WORD_MASK
        return StepResult(cycles=self.CYCLES_BRANCH_TAKEN,
                          action=Action(ActionKind.NONE), executed=instruction)

    def _execute_sys(self, instruction: Instruction) -> StepResult:
        op = SysOp(instruction.op)
        if op is SysOp.NOP:
            return StepResult(cycles=self.CYCLES_ALU, action=Action(ActionKind.NONE),
                              executed=instruction)
        if op is SysOp.HALT:
            self.halted = True
            return StepResult(cycles=self.CYCLES_ALU, action=Action(ActionKind.HALT),
                              executed=instruction)
        self.stats.swi_calls += 1
        return StepResult(cycles=self.CYCLES_SWI,
                          action=Action(ActionKind.SWI, swi_number=instruction.imm),
                          executed=instruction)

    # -- convenience ----------------------------------------------------------------------
    def run(self, max_instructions: int = 1_000_000,
            swi_handler: Optional[Callable[[int, "Cpu"], None]] = None) -> CpuStats:
        """Run stand-alone (no bus) until HALT or the instruction limit.

        External loads/stores are rejected in this mode; SWIs are passed to
        ``swi_handler`` (or ignored when none is given).
        """
        for _ in range(max_instructions):
            if self.halted:
                break
            result = self.step()
            kind = result.action.kind
            if kind in (ActionKind.LOAD, ActionKind.STORE):
                raise CpuError(
                    f"external memory access at {result.action.address:#010x} "
                    "requires a bus-attached processing element"
                )
            if kind is ActionKind.SWI and swi_handler is not None:
                swi_handler(result.action.swi_number, self)
        return self.stats
