"""Bus-attached ISS processing element.

:class:`IssProcessor` wraps one :class:`~repro.iss.cpu.Cpu` core as a kernel
module with a master port on the interconnect, the way the paper's framework
integrates SimIt-ARM instruction-set simulators:

* every executed instruction advances simulated time by its cycle cost;
* loads and stores outside the core's scratchpad become bus transactions;
* software interrupts implement the high-level dynamic-memory API, so
  assembly programs can allocate, access and free shared data through the
  wrapper exactly like the task-level software does.

SWI call numbers (arguments/results in r0..r3):

====  =====================================================================
SWI   meaning
====  =====================================================================
0     exit (halts the core)
1     r0 = sm_alloc(dim=r0, data_type=r1)
2     sm_free(vptr=r0)
3     sm_write(vptr=r0, offset=r1, value=r2)
4     r0 = sm_read(vptr=r0, offset=r1)
5     sm_reserve(vptr=r0)
6     sm_release(vptr=r0)
7     r0 = sm_query(vptr=r0)
====  =====================================================================

The memory module targeted by the API calls is selected by ``r3`` (index in
platform order), defaulting to memory 0 when ``r3`` is out of range.
"""

from __future__ import annotations

from typing import List, Optional

from ..fabric import MasterPort
from ..kernel import Module
from ..memory.protocol import DataType
from ..wrapper.api import SharedMemoryAPI
from .cpu import ActionKind, Cpu, CpuError

#: SWI numbers understood by the processing element.
SWI_EXIT = 0
SWI_ALLOC = 1
SWI_FREE = 2
SWI_WRITE = 3
SWI_READ = 4
SWI_RESERVE = 5
SWI_RELEASE = 6
SWI_QUERY = 7


class IssProcessor(Module):
    """One ISS core attached to the platform interconnect."""

    def __init__(
        self,
        name: str,
        port: MasterPort,
        apis: List[SharedMemoryAPI],
        program_words: List[int],
        clock_period: int,
        scratchpad_bytes: int = 4096,
        max_instructions: int = 1_000_000,
        parent: Optional[Module] = None,
    ) -> None:
        super().__init__(name, parent)
        if not apis:
            raise ValueError("an ISS processor needs at least one memory API")
        self.port = port
        self.apis = apis
        self.clock_period = clock_period
        self.max_instructions = max_instructions
        self.cpu = Cpu(program_words, scratchpad_bytes=scratchpad_bytes)
        self.finished = False
        self.exit_code: Optional[int] = None
        self.bus_accesses = 0
        self.add_process(self._run, name="core")

    # -- helpers ---------------------------------------------------------------
    def _api_for(self, index: int) -> SharedMemoryAPI:
        if 0 <= index < len(self.apis):
            return self.apis[index]
        return self.apis[0]

    # -- main loop ---------------------------------------------------------------
    def _run(self):
        cpu = self.cpu
        for _ in range(self.max_instructions):
            if cpu.halted:
                break
            result = cpu.step()
            if result.cycles:
                yield result.cycles * self.clock_period
            action = result.action
            if action.kind is ActionKind.NONE:
                continue
            if action.kind is ActionKind.HALT:
                break
            if action.kind is ActionKind.LOAD:
                self.bus_accesses += 1
                response = yield from self.port.read(action.address,
                                                     size=action.size,
                                                     tag=f"{self.name}.load")
                cpu.write_register(action.register, response.data)
            elif action.kind is ActionKind.STORE:
                self.bus_accesses += 1
                yield from self.port.write(action.address, action.value,
                                           size=action.size,
                                           tag=f"{self.name}.store")
            elif action.kind is ActionKind.SWI:
                yield from self._handle_swi(action.swi_number)
        self.finished = True
        if self.exit_code is None and cpu.halted:
            self.exit_code = cpu.read_register(0)

    def _handle_swi(self, number: int):
        cpu = self.cpu
        r0 = cpu.read_register(0)
        r1 = cpu.read_register(1)
        r2 = cpu.read_register(2)
        api = self._api_for(cpu.read_register(3))
        if number == SWI_EXIT:
            cpu.halted = True
            self.exit_code = r0
            return
        if number == SWI_ALLOC:
            try:
                data_type = DataType(r1)
            except ValueError:
                data_type = DataType.UINT32
            vptr = yield from api.alloc(r0, data_type)
            cpu.write_register(0, vptr if vptr is not None else 0xFFFFFFFF)
            return
        if number == SWI_FREE:
            yield from api.free(r0)
            return
        if number == SWI_WRITE:
            yield from api.write(r0, r2, offset=r1)
            return
        if number == SWI_READ:
            value = yield from api.read(r0, offset=r1)
            cpu.write_register(0, value if value is not None else 0)
            return
        if number == SWI_RESERVE:
            yield from api.reserve(r0)
            return
        if number == SWI_RELEASE:
            yield from api.release(r0)
            return
        if number == SWI_QUERY:
            value = yield from api.query(r0)
            cpu.write_register(0, value if value is not None else 0)
            return
        raise CpuError(f"{self.name}: unknown SWI #{number}")

    # -- reporting -----------------------------------------------------------------
    def report(self) -> dict:
        """Execution summary (instructions, cycles, bus traffic)."""
        stats = self.cpu.stats
        return {
            "name": self.name,
            "finished": self.finished,
            "exit_code": self.exit_code,
            "instructions": stats.instructions,
            "cpu_cycles": stats.cycles,
            "bus_accesses": self.bus_accesses,
            "swi_calls": stats.swi_calls,
        }
