"""Instruction-set simulation: the ALM CPU core and its bus-attached wrapper."""

from .cosim import (
    SWI_ALLOC,
    SWI_EXIT,
    SWI_FREE,
    SWI_QUERY,
    SWI_READ,
    SWI_RELEASE,
    SWI_RESERVE,
    SWI_WRITE,
    IssProcessor,
)
from .cpu import Action, ActionKind, Cpu, CpuError, CpuStats, StepResult

__all__ = [
    "Action",
    "ActionKind",
    "Cpu",
    "CpuError",
    "CpuStats",
    "IssProcessor",
    "StepResult",
    "SWI_ALLOC",
    "SWI_EXIT",
    "SWI_FREE",
    "SWI_QUERY",
    "SWI_READ",
    "SWI_RELEASE",
    "SWI_RESERVE",
    "SWI_WRITE",
]
