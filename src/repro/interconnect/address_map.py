"""Removed module: the address map lives in :mod:`repro.fabric`.

``repro.interconnect.address_map`` shimmed the old import path for one
release after the decoder moved to :mod:`repro.fabric.address_map`
(slave attachment is validated by the fabric base class on every
topology).  The shim has been removed; import from :mod:`repro.fabric`
instead::

    from repro.fabric import AddressMap, Region
"""

raise ImportError(
    "repro.interconnect.address_map was removed: the address decoder "
    "moved to repro.fabric (e.g. `from repro.fabric import AddressMap`)"
)
