"""Deprecated location of the interconnect address map.

The address decoder moved to :mod:`repro.fabric.address_map`: slave
attachment is validated by the fabric base class on every topology.  This
shim re-exports the public names so existing imports keep working for one
release; new code should import from :mod:`repro.fabric`.
"""

from __future__ import annotations

from ..fabric.address_map import (
    AddressDecodeError,
    AddressMap,
    AddressMapConflict,
    Region,
)

__all__ = [
    "AddressDecodeError",
    "AddressMap",
    "AddressMapConflict",
    "Region",
]
