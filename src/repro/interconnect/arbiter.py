"""Bus arbitration policies.

An arbiter chooses which of the masters with a pending request is granted
the shared resource for the next transfer.  Three policies are provided:

* :class:`RoundRobinArbiter` — fair rotation, the default for the platform.
* :class:`FixedPriorityArbiter` — lower master id (or explicit priority list)
  always wins; simple but can starve.
* :class:`TdmaArbiter` — time-division slots, useful for predictable MPSoC
  interconnects.

Arbiters are deliberately stateless with respect to the kernel: they are
plain policy objects invoked by the bus/crossbar models, which makes them
easy to unit-test and to swap in configuration sweeps.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence


class Arbiter:
    """Interface shared by all arbitration policies."""

    def grant(self, requesters: Sequence[int]) -> Optional[int]:
        """Pick one master id from ``requesters`` (empty → ``None``)."""
        raise NotImplementedError

    def reset(self) -> None:
        """Forget any internal rotation/slot state."""


class FixedPriorityArbiter(Arbiter):
    """Grants the requester with the highest static priority.

    By default lower master ids have higher priority; an explicit priority
    order (most-important first) may be supplied instead.
    """

    def __init__(self, priority_order: Optional[Sequence[int]] = None) -> None:
        self._order = list(priority_order) if priority_order is not None else None
        self.grant_counts: Dict[int, int] = {}

    def grant(self, requesters: Sequence[int]) -> Optional[int]:
        if not requesters:
            return None
        if self._order is None:
            winner = min(requesters)
        else:
            ranked = [m for m in self._order if m in requesters]
            winner = ranked[0] if ranked else min(requesters)
        self.grant_counts[winner] = self.grant_counts.get(winner, 0) + 1
        return winner

    def reset(self) -> None:
        self.grant_counts.clear()


class RoundRobinArbiter(Arbiter):
    """Rotating-priority arbitration: the last granted master becomes lowest."""

    def __init__(self) -> None:
        self._last_granted: Optional[int] = None
        self.grant_counts: Dict[int, int] = {}

    def grant(self, requesters: Sequence[int]) -> Optional[int]:
        if not requesters:
            return None
        ordered = sorted(requesters)
        if self._last_granted is None:
            winner = ordered[0]
        else:
            after = [m for m in ordered if m > self._last_granted]
            winner = after[0] if after else ordered[0]
        self._last_granted = winner
        self.grant_counts[winner] = self.grant_counts.get(winner, 0) + 1
        return winner

    def reset(self) -> None:
        self._last_granted = None
        self.grant_counts.clear()


class TdmaArbiter(Arbiter):
    """Time-division arbitration over a fixed slot schedule.

    The schedule is a list of master ids; each call to :meth:`grant` advances
    to the next slot.  If the slot owner is not requesting, the policy falls
    back to round-robin among the requesters (work-conserving TDMA).
    """

    def __init__(self, schedule: Sequence[int]) -> None:
        if not schedule:
            raise ValueError("TDMA schedule must contain at least one slot")
        self._schedule = list(schedule)
        self._slot = 0
        self._fallback = RoundRobinArbiter()
        self.grant_counts: Dict[int, int] = {}
        self.slot_misses = 0

    def grant(self, requesters: Sequence[int]) -> Optional[int]:
        if not requesters:
            # The slot still elapses even when nobody is requesting.
            self._slot = (self._slot + 1) % len(self._schedule)
            return None
        owner = self._schedule[self._slot]
        self._slot = (self._slot + 1) % len(self._schedule)
        if owner in requesters:
            winner = owner
        else:
            self.slot_misses += 1
            winner = self._fallback.grant(requesters)
        self.grant_counts[winner] = self.grant_counts.get(winner, 0) + 1
        return winner

    def reset(self) -> None:
        self._slot = 0
        self._fallback.reset()
        self.grant_counts.clear()
        self.slot_misses = 0


def make_arbiter(kind: str, **kwargs) -> Arbiter:
    """Factory used by platform configuration files.

    ``kind`` is one of ``"round_robin"``, ``"fixed_priority"`` or ``"tdma"``.
    """
    if kind == "round_robin":
        return RoundRobinArbiter()
    if kind == "fixed_priority":
        return FixedPriorityArbiter(kwargs.get("priority_order"))
    if kind == "tdma":
        return TdmaArbiter(kwargs["schedule"])
    raise ValueError(f"unknown arbiter kind {kind!r}")
