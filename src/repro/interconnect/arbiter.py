"""Removed module: the arbitration policies live in :mod:`repro.fabric`.

``repro.interconnect.arbiter`` shimmed the old import path for one
release after the arbiters moved to :mod:`repro.fabric.policy` (they
serve every topology now, not just the bus).  The shim has been removed;
import from :mod:`repro.fabric` instead::

    from repro.fabric import RoundRobinArbiter, make_arbiter
"""

raise ImportError(
    "repro.interconnect.arbiter was removed: the arbitration policies "
    "moved to repro.fabric (e.g. `from repro.fabric import make_arbiter`)"
)
