"""Deprecated location of the arbitration policies.

The arbiters moved to :mod:`repro.fabric.policy` when the interconnect
machinery was unified behind the fabric layer (they now serve every
topology, not just the bus).  This shim re-exports the public names so
existing imports keep working for one release; new code should import from
:mod:`repro.fabric`.
"""

from __future__ import annotations

from ..fabric.policy import (
    Arbiter,
    ArbitrationPolicy,
    ArbitrationSpec,
    FixedPriorityArbiter,
    RoundRobinArbiter,
    TdmaArbiter,
    WeightedRoundRobinArbiter,
    make_arbiter,
)

__all__ = [
    "Arbiter",
    "ArbitrationPolicy",
    "ArbitrationSpec",
    "FixedPriorityArbiter",
    "RoundRobinArbiter",
    "TdmaArbiter",
    "WeightedRoundRobinArbiter",
    "make_arbiter",
]
