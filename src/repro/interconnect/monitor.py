"""Interconnect traffic monitor.

A :class:`BusMonitor` can be attached in front of any slave to record the
transaction stream hitting it — useful both for debugging platform wiring
and for the evaluation benches (per-operation cycle costs, traffic split
between memories, ...).  The monitor is itself a
:class:`~repro.fabric.port.BusSlave` that forwards every request to the
wrapped slave unchanged.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Generator, List, Optional

from ..fabric.port import BusSlave
from ..fabric.stats import _nearest_rank, percentile_summary
from ..kernel.trace import TransactionLog
from ..fabric.transaction import BusOp, BusRequest, BusResponse

__all__ = ["BusMonitor", "MonitoredTransfer", "percentile_summary",
           "_nearest_rank"]


@dataclass
class MonitoredTransfer:
    """One observed transfer with its measured slave latency."""

    op: BusOp
    address: int
    words: int
    cycles: int
    status: str
    tag: str


class BusMonitor(BusSlave):
    """A transparent probe wrapped around a slave."""

    def __init__(self, slave: BusSlave, name: str = "monitor",
                 log: Optional[TransactionLog] = None) -> None:
        self._slave = slave
        self.name = name
        self.log = log
        self.transfers: List[MonitoredTransfer] = []
        self.op_counts: Counter = Counter()
        self.cycles_by_tag: Counter = Counter()

    # -- BusSlave protocol ----------------------------------------------------
    def serve(self, request: BusRequest, offset: int
              ) -> Generator[None, None, BusResponse]:
        generator = self._slave.serve(request, offset)
        cycles = 0
        while True:
            try:
                next(generator)
            except StopIteration as stop:
                cycles += 1
                response = stop.value if stop.value is not None else BusResponse()
                break
            cycles += 1
            yield None
        self._record(request, response, cycles)
        return response

    # -- bookkeeping --------------------------------------------------------------
    def _record(self, request: BusRequest, response: BusResponse, cycles: int) -> None:
        transfer = MonitoredTransfer(
            op=request.op,
            address=request.address,
            words=request.word_count,
            cycles=cycles,
            status=response.status.value,
            tag=request.tag,
        )
        self.transfers.append(transfer)
        self.op_counts[request.op] += 1
        if request.tag:
            self.cycles_by_tag[request.tag] += cycles
        if self.log is not None:
            self.log.record(
                0,
                self.name,
                request.op.value,
                address=request.address,
                words=request.word_count,
                cycles=cycles,
                status=response.status.value,
                tag=request.tag,
            )

    # -- queries ---------------------------------------------------------------------
    @property
    def transaction_count(self) -> int:
        """Total number of observed transfers."""
        return len(self.transfers)

    def total_cycles(self) -> int:
        """Sum of slave cycles across all observed transfers."""
        return sum(t.cycles for t in self.transfers)

    def average_latency(self) -> float:
        """Mean slave latency in cycles (0.0 when nothing was observed)."""
        if not self.transfers:
            return 0.0
        return self.total_cycles() / len(self.transfers)

    def histogram_by_tag(self) -> Dict[str, int]:
        """Number of transfers per request tag."""
        counts: Counter = Counter(t.tag for t in self.transfers if t.tag)
        return dict(counts)

    def latency_percentiles(self) -> Dict[str, Dict[str, float]]:
        """Per-op p50/p95/max slave-latency percentiles (in cycles).

        Keys are the op names (``read``/``write``) plus ``all``; an op with
        no observed transfers is omitted.  Percentiles use the
        nearest-rank method, so they are deterministic and always equal to
        one of the observed latencies.
        """
        by_op: Dict[str, List[int]] = {}
        for transfer in self.transfers:
            by_op.setdefault(transfer.op.value, []).append(transfer.cycles)
            by_op.setdefault("all", []).append(transfer.cycles)
        return {op: percentile_summary(latencies)
                for op, latencies in sorted(by_op.items())}

    def stats(self) -> Dict[str, object]:
        """One JSON-ready summary block (counts + latency percentiles)."""
        return {
            "name": self.name,
            "transactions": self.transaction_count,
            "reads": self.op_counts.get(BusOp.READ, 0),
            "writes": self.op_counts.get(BusOp.WRITE, 0),
            "total_cycles": self.total_cycles(),
            "latency_percentiles": self.latency_percentiles(),
        }
