"""Shared-bus interconnect model.

The :class:`SharedBus` serialises transfers from several masters onto a
single channel, as in the AMBA-style interconnects targeted by the paper's
framework.  Timing is transaction-accurate with cycle granularity: each
transfer occupies the bus for ``arbitration_cycles`` plus however many cycles
the addressed slave spends serving it (slaves are driven one cycle at a
time, so cycle-true slave models such as the dynamic shared-memory wrapper's
FSM behave exactly as the paper describes).

Masters interact with the bus through a
:class:`~repro.fabric.port.MasterPort`::

    # inside a kernel process
    response = yield from master_port.transfer(
        BusRequest(master_id=0, op=BusOp.READ, address=0x1000)
    )

The ``yield from`` suspends the calling process until the bus grants and the
slave completes the transfer.

The bus is the simplest :class:`~repro.fabric.Fabric` topology: one channel
process, one arbitration point.  Everything but the grant loop — slave
attachment, master ports, snoopers, statistics — is inherited from the
fabric layer in :mod:`repro.fabric`.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

from ..fabric import (
    AddressDecodeError,
    ArbitrationPolicy,
    ArbitrationSpec,
    BusOp,
    BusRequest,
    Fabric,
    MasterPort,
    decode_error_response,
)
from ..kernel import Event, Module
from ..kernel.simtime import NS

__all__ = [
    "SharedBus",
]


class SharedBus(Fabric):
    """A single shared channel with configurable arbitration.

    Parameters
    ----------
    name:
        Module name.
    period:
        Clock period of the interconnect in kernel time units.
    arbitration_cycles:
        Fixed overhead cycles added to every granted transfer (address phase).
    arbiter:
        Ready arbitration policy instance (legacy spelling); defaults to
        round-robin.  Mutually exclusive with ``arbitration``.
    arbitration:
        :class:`~repro.fabric.ArbitrationSpec` (or policy-kind string)
        describing the policy — the fabric-era spelling shared with the
        crossbar and the mesh.
    """

    def __init__(
        self,
        name: str = "bus",
        period: int = 10 * NS,
        arbitration_cycles: int = 1,
        arbiter: Optional[ArbitrationPolicy] = None,
        parent: Optional[Module] = None,
        arbitration: Union[ArbitrationSpec, str, None] = None,
    ) -> None:
        if arbiter is not None and arbitration is not None:
            raise ValueError("pass either arbiter= or arbitration=, not both")
        super().__init__(name, period,
                         arbitration_cycles=arbitration_cycles,
                         arbitration=arbiter if arbiter is not None
                         else arbitration,
                         parent=parent)
        #: The single arbitration point of the serialized channel.
        self.arbiter = self.new_policy()
        self._pending: Dict[int, Tuple[MasterPort, BusRequest]] = {}
        self._request_event = self.add_event(Event(f"{name}.request"))
        self._anchor_event = self._request_event
        self.add_process(self._run, name="channel")

    # -- master-side entry point ---------------------------------------------------
    def _post(self, port: MasterPort, request: BusRequest) -> None:
        if port.master_id in self._pending:
            raise RuntimeError(
                f"master {port.master_id} posted a request while one is outstanding"
            )
        self._pending[port.master_id] = (port, request)
        self._request_event.notify()

    # -- channel process --------------------------------------------------------------
    def _run(self):
        while True:
            if not self._pending:
                yield self._request_event
                continue
            winner = self._grant(self.arbiter, sorted(self._pending))
            port, request = self._pending.pop(winner)
            # Address phase / arbitration overhead.
            for _ in range(self.arbitration_cycles):
                yield self.period
            response, slave_cycles = yield from self._serve_request(request)
            response.slave_cycles = slave_cycles
            response.total_cycles = slave_cycles + self.arbitration_cycles
            self._finish(port, request, response)

    def _serve_request(self, request: BusRequest):
        try:
            slave, offset, _region = self.address_map.decode(request.address)
        except AddressDecodeError:
            # The bus channel is held for the error cycle, unlike the
            # concurrent topologies' immediate-completion decode path —
            # a misdecoded address still occupied the shared channel.
            yield self.period
            self.stats.decode_errors += 1
            return decode_error_response(), 1
        return (yield from self._drive_slave(slave, request, offset))
