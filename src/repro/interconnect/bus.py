"""Shared-bus interconnect model.

The :class:`SharedBus` serialises transfers from several masters onto a
single channel, as in the AMBA-style interconnects targeted by the paper's
framework.  Timing is transaction-accurate with cycle granularity: each
transfer occupies the bus for ``arbitration_cycles`` plus however many cycles
the addressed slave spends serving it (slaves are driven one cycle at a
time, so cycle-true slave models such as the dynamic shared-memory wrapper's
FSM behave exactly as the paper describes).

Masters interact with the bus through a :class:`MasterPort`::

    # inside a kernel process
    response = yield from master_port.transfer(
        BusRequest(master_id=0, op=BusOp.READ, address=0x1000)
    )

The ``yield from`` suspends the calling process until the bus grants and the
slave completes the transfer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Tuple

from ..kernel import Event, Module
from ..kernel.simtime import NS
from .address_map import AddressDecodeError, AddressMap
from .arbiter import Arbiter, RoundRobinArbiter
from .transaction import (
    BusOp,
    BusRequest,
    BusResponse,
    ResponseStatus,
    decode_error_response,
)


class BusSlave:
    """Base class for everything that can be mapped on the interconnect.

    Slaves implement either:

    * :meth:`access` and :meth:`latency` — the convenient fixed/function
      latency flavour (static memories, peripherals); or
    * :meth:`serve` directly — a generator the interconnect advances once per
      clock cycle, for cycle-true models (the wrapper FSM).
    """

    def access(self, request: BusRequest, offset: int) -> BusResponse:
        """Perform the access functionally and return the response."""
        raise NotImplementedError(
            f"{type(self).__name__} implements neither access() nor serve()"
        )

    def latency(self, request: BusRequest) -> int:
        """Number of cycles :meth:`serve` should consume (default 1)."""
        return 1

    def serve(self, request: BusRequest, offset: int
              ) -> Generator[None, None, BusResponse]:
        """Cycle-driven service generator.

        Each ``yield`` consumes one interconnect clock cycle; the returned
        value is the transaction response.  The default implementation calls
        :meth:`access` once and stretches the transfer to :meth:`latency`
        cycles.
        """
        cycles = max(1, self.latency(request))
        for _ in range(cycles - 1):
            yield None
        return self.access(request, offset)


@dataclass
class MasterStats:
    """Per-master interconnect statistics."""

    transactions: int = 0
    reads: int = 0
    writes: int = 0
    words: int = 0
    busy_cycles: int = 0
    wait_cycles: int = 0
    errors: int = 0

    def as_dict(self) -> Dict[str, int]:
        """JSON-ready view (one row of the per-master stats table)."""
        return {
            "transactions": self.transactions,
            "reads": self.reads,
            "writes": self.writes,
            "words": self.words,
            "busy_cycles": self.busy_cycles,
            "wait_cycles": self.wait_cycles,
            "errors": self.errors,
        }


@dataclass
class BusStats:
    """Aggregate interconnect statistics."""

    transactions: int = 0
    busy_cycles: int = 0
    decode_errors: int = 0
    per_master: Dict[int, MasterStats] = field(default_factory=dict)

    def master(self, master_id: int) -> MasterStats:
        """Statistics record for ``master_id`` (created on first use)."""
        if master_id not in self.per_master:
            self.per_master[master_id] = MasterStats()
        return self.per_master[master_id]

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready view including the per-master breakdown."""
        return {
            "transactions": self.transactions,
            "busy_cycles": self.busy_cycles,
            "decode_errors": self.decode_errors,
            "per_master": {master_id: stats.as_dict() for master_id, stats
                           in sorted(self.per_master.items())},
        }


class MasterPort:
    """A master-side handle used to issue transactions on an interconnect."""

    def __init__(self, interconnect: "SharedBus", master_id: int, name: str = "") -> None:
        self._interconnect = interconnect
        self.master_id = master_id
        self.name = name or f"master{master_id}"
        self._completion = Event(f"{self.name}.completion")
        self._response: Optional[BusResponse] = None
        interconnect._register_port(self)

    @property
    def last_response(self) -> Optional[BusResponse]:
        """The response of the most recently completed transfer."""
        return self._response

    def transfer(self, request: BusRequest
                 ) -> Generator[object, None, BusResponse]:
        """Issue ``request`` and suspend until it completes (``yield from``)."""
        if request.master_id != self.master_id:
            request.master_id = self.master_id
        post_time = self._interconnect.sim_now()
        self._interconnect._post(self, request)
        yield self._completion
        response = self._response
        assert response is not None, "bus completed a transfer without a response"
        wait_cycles = self._interconnect.time_to_cycles(
            self._interconnect.sim_now() - post_time
        )
        stats = self._interconnect.stats.master(self.master_id)
        stats.wait_cycles += max(0, wait_cycles - response.total_cycles)
        return response

    # Convenience wrappers -----------------------------------------------------
    def read(self, address: int, size: int = 4, tag: str = ""
             ) -> Generator[object, None, BusResponse]:
        """Scalar read helper (``yield from port.read(addr)``)."""
        return self.transfer(
            BusRequest(self.master_id, BusOp.READ, address, size=size, tag=tag)
        )

    def write(self, address: int, data: int, size: int = 4, tag: str = ""
              ) -> Generator[object, None, BusResponse]:
        """Scalar write helper."""
        return self.transfer(
            BusRequest(self.master_id, BusOp.WRITE, address, data=data, size=size,
                       tag=tag)
        )

    def burst_read(self, address: int, length: int, tag: str = ""
                   ) -> Generator[object, None, BusResponse]:
        """Burst read helper (``length`` words)."""
        return self.transfer(
            BusRequest(self.master_id, BusOp.READ, address, burst_length=length,
                       tag=tag)
        )

    def burst_write(self, address: int, words: List[int], tag: str = ""
                    ) -> Generator[object, None, BusResponse]:
        """Burst write helper."""
        return self.transfer(
            BusRequest(self.master_id, BusOp.WRITE, address, burst_data=list(words),
                       tag=tag)
        )


class SharedBus(Module):
    """A single shared channel with configurable arbitration.

    Parameters
    ----------
    name:
        Module name.
    period:
        Clock period of the interconnect in kernel time units.
    arbitration_cycles:
        Fixed overhead cycles added to every granted transfer (address phase).
    arbiter:
        Arbitration policy; defaults to round-robin.
    """

    def __init__(
        self,
        name: str = "bus",
        period: int = 10 * NS,
        arbitration_cycles: int = 1,
        arbiter: Optional[Arbiter] = None,
        parent: Optional[Module] = None,
    ) -> None:
        super().__init__(name, parent)
        if period <= 0:
            raise ValueError("bus period must be positive")
        if arbitration_cycles < 0:
            raise ValueError("arbitration cycles must be >= 0")
        self.period = period
        self.arbitration_cycles = arbitration_cycles
        self.arbiter = arbiter if arbiter is not None else RoundRobinArbiter()
        self.address_map = AddressMap()
        self.stats = BusStats()
        self._master_ports: Dict[int, MasterPort] = {}
        self._pending: Dict[int, Tuple[MasterPort, BusRequest]] = {}
        self._snoopers: List = []
        self._request_event = self.add_event(Event(f"{name}.request"))
        self.add_process(self._run, name="channel")

    # -- construction-time wiring ------------------------------------------------
    def attach_slave(self, name: str, base: int, size: int, slave: BusSlave) -> None:
        """Map ``slave`` at ``[base, base+size)`` on this bus."""
        self.address_map.add_region(name, base, size, slave)

    def add_snooper(self, snooper) -> None:
        """Register ``snooper(request, response)``, called after every
        completed transfer (cache-coherence hooks, protocol checkers)."""
        self._snoopers.append(snooper)

    def _register_port(self, port: MasterPort) -> None:
        if port.master_id in self._master_ports:
            raise ValueError(f"master id {port.master_id} registered twice")
        self._master_ports[port.master_id] = port

    def master_port(self, master_id: int, name: str = "") -> MasterPort:
        """Create (and register) a new master port on this bus."""
        return MasterPort(self, master_id, name)

    # -- helpers -----------------------------------------------------------------
    def sim_now(self) -> int:
        """Current simulated time (0 before elaboration)."""
        sim = self._request_event._sim
        return sim.now if sim is not None else 0

    def time_to_cycles(self, duration: int) -> int:
        """Convert a kernel duration to whole bus cycles."""
        return duration // self.period

    # -- master-side entry point ---------------------------------------------------
    def _post(self, port: MasterPort, request: BusRequest) -> None:
        if port.master_id in self._pending:
            raise RuntimeError(
                f"master {port.master_id} posted a request while one is outstanding"
            )
        self._pending[port.master_id] = (port, request)
        self._request_event.notify()

    # -- channel process --------------------------------------------------------------
    def _run(self):
        while True:
            if not self._pending:
                yield self._request_event
                continue
            winner = self.arbiter.grant(sorted(self._pending))
            if winner is None:  # pragma: no cover - defensive, cannot happen
                continue
            port, request = self._pending.pop(winner)
            # Address phase / arbitration overhead.
            for _ in range(self.arbitration_cycles):
                yield self.period
            response, slave_cycles = yield from self._serve_request(request)
            response.slave_cycles = slave_cycles
            response.total_cycles = slave_cycles + self.arbitration_cycles
            self._account(request, response)
            for snooper in self._snoopers:
                snooper(request, response)
            port._response = response
            port._completion.notify()

    def _serve_request(self, request: BusRequest):
        try:
            slave, offset, _region = self.address_map.decode(request.address)
        except AddressDecodeError:
            yield self.period
            self.stats.decode_errors += 1
            return decode_error_response(), 1
        generator = slave.serve(request, offset)
        cycles = 0
        while True:
            try:
                next(generator)
            except StopIteration as stop:
                cycles += 1
                yield self.period
                response = stop.value if stop.value is not None else BusResponse()
                return response, cycles
            cycles += 1
            yield self.period

    def _account(self, request: BusRequest, response: BusResponse) -> None:
        self.stats.transactions += 1
        self.stats.busy_cycles += response.total_cycles
        per_master = self.stats.master(request.master_id)
        per_master.transactions += 1
        per_master.words += request.word_count
        per_master.busy_cycles += response.total_cycles
        if request.op is BusOp.READ:
            per_master.reads += 1
        else:
            per_master.writes += 1
        if response.status is not ResponseStatus.OK:
            per_master.errors += 1

    # -- reporting ----------------------------------------------------------------------
    def utilization(self, elapsed_time: int) -> float:
        """Fraction of ``elapsed_time`` the bus spent busy (0.0–1.0)."""
        if elapsed_time <= 0:
            return 0.0
        busy_time = self.stats.busy_cycles * self.period
        return min(1.0, busy_time / elapsed_time)
