"""Crossbar interconnect: concurrent channels, one per slave.

Unlike the :class:`~repro.interconnect.bus.SharedBus`, a crossbar lets
transfers addressed to *different* slaves proceed in parallel; only accesses
to the same slave are serialised (per-slave arbitration).  The master-side
interface is identical (:class:`~repro.interconnect.bus.MasterPort`), so
platforms can swap interconnects without touching the processing elements.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..kernel import Event, Module
from ..kernel.simtime import NS
from .address_map import AddressDecodeError, AddressMap
from .arbiter import Arbiter, RoundRobinArbiter
from .bus import BusSlave, BusStats, MasterPort
from .transaction import BusOp, BusRequest, BusResponse, ResponseStatus, decode_error_response


class _Channel:
    """Book-keeping for one slave-side channel of the crossbar."""

    def __init__(self, name: str, slave: BusSlave, arbiter: Arbiter) -> None:
        self.name = name
        self.slave = slave
        self.arbiter = arbiter
        self.pending: Dict[int, Tuple[MasterPort, BusRequest, int]] = {}
        self.request_event: Optional[Event] = None
        self.busy_cycles = 0
        self.transactions = 0


class Crossbar(Module):
    """A full crossbar with per-slave round-robin arbitration."""

    def __init__(
        self,
        name: str = "xbar",
        period: int = 10 * NS,
        arbitration_cycles: int = 1,
        parent: Optional[Module] = None,
    ) -> None:
        super().__init__(name, parent)
        if period <= 0:
            raise ValueError("crossbar period must be positive")
        self.period = period
        self.arbitration_cycles = arbitration_cycles
        self.address_map = AddressMap()
        self.stats = BusStats()
        self._master_ports: Dict[int, MasterPort] = {}
        self._channels: List[_Channel] = []
        self._slave_to_channel: Dict[int, _Channel] = {}
        self._snoopers: List = []
        self._decode_error_event = self.add_event(Event(f"{name}.decode_error"))

    # -- construction-time wiring -------------------------------------------------
    def attach_slave(self, name: str, base: int, size: int, slave: BusSlave) -> None:
        """Map ``slave`` and create its dedicated channel."""
        self.address_map.add_region(name, base, size, slave)
        if id(slave) not in self._slave_to_channel:
            channel = _Channel(name, slave, RoundRobinArbiter())
            channel.request_event = self.add_event(Event(f"{self.name}.{name}.req"))
            self._channels.append(channel)
            self._slave_to_channel[id(slave)] = channel
            self.add_process(
                lambda ch=channel: self._run_channel(ch), name=f"channel_{name}"
            )

    def add_snooper(self, snooper) -> None:
        """Register ``snooper(request, response)``, called after every
        completed transfer on any channel (cache-coherence hooks)."""
        self._snoopers.append(snooper)

    def _register_port(self, port: MasterPort) -> None:
        if port.master_id in self._master_ports:
            raise ValueError(f"master id {port.master_id} registered twice")
        self._master_ports[port.master_id] = port

    def master_port(self, master_id: int, name: str = "") -> MasterPort:
        """Create (and register) a new master port on this crossbar."""
        return MasterPort(self, master_id, name)

    # -- MasterPort protocol (same duck-type as SharedBus) ---------------------------
    def sim_now(self) -> int:
        """Current simulated time (0 before elaboration)."""
        sim = self._decode_error_event._sim
        return sim.now if sim is not None else 0

    def time_to_cycles(self, duration: int) -> int:
        """Convert a kernel duration to whole crossbar cycles."""
        return duration // self.period

    def _post(self, port: MasterPort, request: BusRequest) -> None:
        try:
            slave, offset, _region = self.address_map.decode(request.address)
        except AddressDecodeError:
            # Complete after one cycle with a decode error; the completion
            # event may not have been bound yet (that normally happens when
            # the master first waits on it), so bind it explicitly here.
            # The failed transfer is accounted per master exactly like the
            # shared bus does, so topology comparisons see the same columns.
            self.stats.decode_errors += 1
            response = decode_error_response()
            response.slave_cycles = 1
            response.total_cycles = 1
            self._account(request, response)
            port._response = response
            sim = self._decode_error_event._sim
            if sim is not None:
                port._completion._bind(sim)
            port._completion.notify(self.period)
            return
        channel = self._slave_to_channel[id(slave)]
        if port.master_id in channel.pending:
            raise RuntimeError(
                f"master {port.master_id} posted a request while one is outstanding"
            )
        channel.pending[port.master_id] = (port, request, offset)
        assert channel.request_event is not None
        channel.request_event.notify()

    # -- per-channel process ------------------------------------------------------------
    def _run_channel(self, channel: _Channel):
        while True:
            if not channel.pending:
                yield channel.request_event
                continue
            winner = channel.arbiter.grant(sorted(channel.pending))
            if winner is None:  # pragma: no cover - defensive
                continue
            port, request, offset = channel.pending.pop(winner)
            for _ in range(self.arbitration_cycles):
                yield self.period
            generator = channel.slave.serve(request, offset)
            cycles = 0
            while True:
                try:
                    next(generator)
                except StopIteration as stop:
                    cycles += 1
                    yield self.period
                    response = stop.value if stop.value is not None else BusResponse()
                    break
                cycles += 1
                yield self.period
            response.slave_cycles = cycles
            response.total_cycles = cycles + self.arbitration_cycles
            channel.busy_cycles += response.total_cycles
            channel.transactions += 1
            self._account(request, response)
            for snooper in self._snoopers:
                snooper(request, response)
            port._response = response
            port._completion.notify()

    def _account(self, request: BusRequest, response: BusResponse) -> None:
        self.stats.transactions += 1
        self.stats.busy_cycles += response.total_cycles
        per_master = self.stats.master(request.master_id)
        per_master.transactions += 1
        per_master.words += request.word_count
        per_master.busy_cycles += response.total_cycles
        if request.op is BusOp.READ:
            per_master.reads += 1
        else:
            per_master.writes += 1
        if response.status is not ResponseStatus.OK:
            per_master.errors += 1

    # -- reporting ------------------------------------------------------------------------
    def channel_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-channel busy-cycle and transaction counters."""
        return {
            ch.name: {"busy_cycles": ch.busy_cycles, "transactions": ch.transactions}
            for ch in self._channels
        }

    def utilization(self, elapsed_time: int) -> float:
        """Average fraction of time the channels were busy."""
        if elapsed_time <= 0 or not self._channels:
            return 0.0
        busy = sum(ch.busy_cycles for ch in self._channels) * self.period
        return min(1.0, busy / (elapsed_time * len(self._channels)))
