"""Crossbar interconnect: concurrent channels, one per slave.

Unlike the :class:`~repro.interconnect.bus.SharedBus`, a crossbar lets
transfers addressed to *different* slaves proceed in parallel; only accesses
to the same slave are serialised (per-slave arbitration).  The master-side
interface is identical (:class:`~repro.fabric.port.MasterPort`), so
platforms can swap interconnects without touching the processing elements.

As a :class:`~repro.fabric.Fabric` topology the crossbar only owns its
transport: one channel process per attached slave, each with its own
arbitration point created from the fabric's shared
:class:`~repro.fabric.ArbitrationSpec`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from ..fabric import (
    AddressDecodeError,
    ArbitrationPolicy,
    ArbitrationSpec,
    BusRequest,
    BusSlave,
    Fabric,
    MasterPort,
    Region,
)
from ..kernel import Event, Module
from ..kernel.simtime import NS


class _Channel:
    """Book-keeping for one slave-side channel of the crossbar."""

    def __init__(self, name: str, slave: BusSlave,
                 arbiter: ArbitrationPolicy) -> None:
        self.name = name
        self.slave = slave
        self.arbiter = arbiter
        self.pending: Dict[int, Tuple[MasterPort, BusRequest, int]] = {}
        self.request_event: Optional[Event] = None
        self.busy_cycles = 0
        self.transactions = 0


class Crossbar(Fabric):
    """A full crossbar with pluggable per-slave arbitration."""

    def __init__(
        self,
        name: str = "xbar",
        period: int = 10 * NS,
        arbitration_cycles: int = 1,
        parent: Optional[Module] = None,
        arbitration: Union[ArbitrationSpec, str, None] = None,
    ) -> None:
        super().__init__(name, period,
                         arbitration_cycles=arbitration_cycles,
                         arbitration=arbitration, parent=parent)
        self._channels: List[_Channel] = []
        self._slave_to_channel: Dict[int, _Channel] = {}
        self._anchor_event = self.add_event(Event(f"{name}.decode_error"))

    # -- construction-time wiring -------------------------------------------------
    def _on_attach(self, region: Region, slave: BusSlave) -> None:
        """Create the dedicated channel of a newly mapped slave."""
        if id(slave) not in self._slave_to_channel:
            channel = _Channel(region.name, slave, self.new_policy())
            channel.request_event = self.add_event(
                Event(f"{self.name}.{region.name}.req"))
            self._channels.append(channel)
            self._slave_to_channel[id(slave)] = channel
            self.add_process(
                lambda ch=channel: self._run_channel(ch),
                name=f"channel_{region.name}",
            )

    # -- master-side entry point ----------------------------------------------------
    def _post(self, port: MasterPort, request: BusRequest) -> None:
        try:
            slave, offset, _region = self.address_map.decode(request.address)
        except AddressDecodeError:
            self._complete_decode_error(port, request)
            return
        channel = self._slave_to_channel[id(slave)]
        if port.master_id in channel.pending:
            raise RuntimeError(
                f"master {port.master_id} posted a request while one is outstanding"
            )
        channel.pending[port.master_id] = (port, request, offset)
        assert channel.request_event is not None
        channel.request_event.notify()

    # -- per-channel process ------------------------------------------------------------
    def _run_channel(self, channel: _Channel):
        while True:
            if not channel.pending:
                yield channel.request_event
                continue
            winner = self._grant(channel.arbiter, sorted(channel.pending))
            port, request, offset = channel.pending.pop(winner)
            for _ in range(self.arbitration_cycles):
                yield self.period
            response, cycles = yield from self._drive_slave(
                channel.slave, request, offset)
            response.slave_cycles = cycles
            response.total_cycles = cycles + self.arbitration_cycles
            channel.busy_cycles += response.total_cycles
            channel.transactions += 1
            self._finish(port, request, response)

    # -- reporting ------------------------------------------------------------------------
    def channel_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-channel busy-cycle and transaction counters."""
        return {
            ch.name: {"busy_cycles": ch.busy_cycles, "transactions": ch.transactions}
            for ch in self._channels
        }

    def utilization(self, elapsed_time: int) -> float:
        """Average fraction of time the channels were busy."""
        if elapsed_time <= 0 or not self._channels:
            return 0.0
        busy = sum(ch.busy_cycles for ch in self._channels) * self.period
        return min(1.0, busy / (elapsed_time * len(self._channels)))

    def _decorate_stats(self, block: Dict[str, object],
                        elapsed_time: int) -> None:
        block["channels"] = self.channel_stats()
