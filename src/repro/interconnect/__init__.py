"""System interconnect topologies: shared bus, crossbar, monitors.

The interconnect carries memory-mapped transactions between processing
elements and memory modules (static memories and the dynamic shared-memory
wrappers).  This package holds the bus/crossbar topologies and the traffic
monitor; the shared machinery — master ports, slave attachment,
arbitration policies, address decoding, transaction types, statistics —
lives in :mod:`repro.fabric` and must be imported from there.
"""

from .bus import SharedBus
from .crossbar import Crossbar
from .monitor import BusMonitor, MonitoredTransfer

__all__ = [
    "BusMonitor",
    "Crossbar",
    "MonitoredTransfer",
    "SharedBus",
]
