"""System interconnect models: shared bus, crossbar, arbiters, monitors.

The interconnect carries memory-mapped transactions between processing
elements and memory modules (static memories and the dynamic shared-memory
wrappers).  Both interconnects expose the same master-side interface
(:class:`MasterPort`), so platform descriptions can switch topology freely.
"""

from .address_map import AddressDecodeError, AddressMap, AddressMapConflict, Region
from .arbiter import (
    Arbiter,
    FixedPriorityArbiter,
    RoundRobinArbiter,
    TdmaArbiter,
    make_arbiter,
)
from .bus import BusSlave, BusStats, MasterPort, MasterStats, SharedBus
from .crossbar import Crossbar
from .monitor import BusMonitor, MonitoredTransfer
from .transaction import (
    WORD_SIZE,
    BusOp,
    BusRequest,
    BusResponse,
    ResponseStatus,
    decode_error_response,
)

__all__ = [
    "AddressDecodeError",
    "AddressMap",
    "AddressMapConflict",
    "Arbiter",
    "BusMonitor",
    "BusOp",
    "BusRequest",
    "BusResponse",
    "BusSlave",
    "BusStats",
    "Crossbar",
    "FixedPriorityArbiter",
    "MasterPort",
    "MasterStats",
    "MonitoredTransfer",
    "Region",
    "ResponseStatus",
    "RoundRobinArbiter",
    "SharedBus",
    "TdmaArbiter",
    "WORD_SIZE",
    "decode_error_response",
    "make_arbiter",
]
