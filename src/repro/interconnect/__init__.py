"""System interconnect topologies: shared bus, crossbar, monitors.

The interconnect carries memory-mapped transactions between processing
elements and memory modules (static memories and the dynamic shared-memory
wrappers).  The shared machinery — master ports, slave attachment,
arbitration policies, statistics — lives in :mod:`repro.fabric`; this
package keeps the bus/crossbar topologies, the address map, the
transaction types and the traffic monitor, plus backwards-compatible
re-exports of the moved names (``MasterPort``, ``BusSlave``, ``BusStats``,
``MasterStats`` and the arbiters), retained as deprecation shims for one
release.
"""

from ..fabric import (
    Arbiter,
    ArbitrationPolicy,
    ArbitrationSpec,
    BusSlave,
    BusStats,
    Fabric,
    FixedPriorityArbiter,
    MasterPort,
    MasterStats,
    RoundRobinArbiter,
    TdmaArbiter,
    WeightedRoundRobinArbiter,
    make_arbiter,
)
from .address_map import AddressDecodeError, AddressMap, AddressMapConflict, Region
from .bus import SharedBus
from .crossbar import Crossbar
from .monitor import BusMonitor, MonitoredTransfer
from .transaction import (
    WORD_SIZE,
    BusOp,
    BusRequest,
    BusResponse,
    ResponseStatus,
    decode_error_response,
)

__all__ = [
    "AddressDecodeError",
    "AddressMap",
    "AddressMapConflict",
    "Arbiter",
    "ArbitrationPolicy",
    "ArbitrationSpec",
    "BusMonitor",
    "BusOp",
    "BusRequest",
    "BusResponse",
    "BusSlave",
    "BusStats",
    "Crossbar",
    "Fabric",
    "FixedPriorityArbiter",
    "MasterPort",
    "MasterStats",
    "MonitoredTransfer",
    "Region",
    "ResponseStatus",
    "RoundRobinArbiter",
    "SharedBus",
    "TdmaArbiter",
    "WORD_SIZE",
    "WeightedRoundRobinArbiter",
    "decode_error_response",
    "make_arbiter",
]
