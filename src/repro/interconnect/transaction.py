"""Removed module: the transaction types live in :mod:`repro.fabric`.

``repro.interconnect.transaction`` shimmed the old import path for one
release after the types moved to :mod:`repro.fabric.transaction` with
the rest of the shared interconnect machinery.  The shim has been
removed; import from :mod:`repro.fabric` instead::

    from repro.fabric import BusOp, BusRequest, BusResponse
"""

raise ImportError(
    "repro.interconnect.transaction was removed: the transaction types "
    "moved to repro.fabric (e.g. `from repro.fabric import BusRequest`)"
)
