"""Deprecated location of the bus transaction data types.

The transaction types moved to :mod:`repro.fabric.transaction` with the
rest of the shared interconnect machinery.  This shim re-exports the
public names so existing imports keep working for one release; new code
should import from :mod:`repro.fabric`.
"""

from __future__ import annotations

from ..fabric.transaction import (
    WORD_SIZE,
    BusOp,
    BusRequest,
    BusResponse,
    ResponseStatus,
    decode_error_response,
)

__all__ = [
    "WORD_SIZE",
    "BusOp",
    "BusRequest",
    "BusResponse",
    "ResponseStatus",
    "decode_error_response",
]
