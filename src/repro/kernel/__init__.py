"""SystemC-like discrete-event simulation kernel.

This package reproduces, in Python, the scheduling semantics the paper's
framework relies on (GEZEL / SystemC-style): modules with ports and signals,
generator-based processes, delta cycles, clocks and cycle-true FSMs.

Typical usage::

    from repro.kernel import Module, Simulator, Clock, Signal

    class Counter(Module):
        def __init__(self, name, clock, parent=None):
            super().__init__(name, parent)
            self.value = self.add_signal(Signal(0, name="value"))
            self.add_method(self.tick, sensitivity=[clock.posedge_event])

        def tick(self):
            self.value.write(self.value.read() + 1)

    sim = Simulator()
    top = Module("top")
    clock = Clock("clk", period=10, parent=top)
    Counter("counter", clock, parent=top)
    sim.add_top(top)
    sim.run(1000)
"""

from .clock import Clock
from .errors import (
    DeltaCycleLimitExceeded,
    ElaborationError,
    KernelError,
    PortBindingError,
    ProcessError,
    SchedulerError,
    SimulationError,
)
from .event import Event, EventQueue
from .fsm import CycleTrueFsm, FsmStateError
from .module import Module
from .port import InOutPort, InputPort, OutputPort
from .process import Process, WaitAny, WaitCycles, WaitDelta, WaitEvent, WaitTime
from .signal import Signal, SignalVector
from .simtime import MS, NS, PS, SEC, US, ClockPeriod, format_time, parse_time
from .simulator import SimulationStats, Simulator
from .trace import SignalTracer, TransactionLog, TransactionRecord

__all__ = [
    "Clock",
    "ClockPeriod",
    "CycleTrueFsm",
    "DeltaCycleLimitExceeded",
    "ElaborationError",
    "Event",
    "EventQueue",
    "FsmStateError",
    "InOutPort",
    "InputPort",
    "KernelError",
    "Module",
    "MS",
    "NS",
    "OutputPort",
    "PortBindingError",
    "Process",
    "ProcessError",
    "PS",
    "SchedulerError",
    "SEC",
    "Signal",
    "SignalTracer",
    "SignalVector",
    "SimulationError",
    "SimulationStats",
    "Simulator",
    "TransactionLog",
    "TransactionRecord",
    "US",
    "WaitAny",
    "WaitCycles",
    "WaitDelta",
    "WaitEvent",
    "WaitTime",
    "format_time",
    "parse_time",
]
