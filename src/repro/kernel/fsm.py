"""Cycle-true finite state machine helper.

The paper's shared-memory wrapper is described as a *cycle-true FSM* that
"evaluates incoming signals cycle by cycle".  This module provides a small
framework for writing such FSMs declaratively: states are registered with a
handler; on every clock edge the current state's handler runs, observes its
inputs and returns the next state (or ``None`` to remain).

The FSM keeps per-state occupancy counters so models can report how many
cycles were spent waiting versus transferring — useful for the accuracy
benchmarks.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, Optional

from .errors import SimulationError

StateHandler = Callable[[], Optional[str]]


class FsmStateError(SimulationError):
    """Raised when an FSM references an unknown state."""


class CycleTrueFsm:
    """A Moore-style FSM evaluated once per clock cycle.

    Usage::

        fsm = CycleTrueFsm("IDLE")
        fsm.state("IDLE", handle_idle)
        fsm.state("BUSY", handle_busy)
        ...
        # in a clocked process, once per cycle:
        fsm.step()

    Handlers return the name of the next state or ``None`` to stay put.
    """

    def __init__(self, initial_state: str) -> None:
        self._handlers: Dict[str, StateHandler] = {}
        self._initial = initial_state
        self.current_state = initial_state
        #: Number of cycles spent in each state.
        self.occupancy: Counter = Counter()
        #: Number of transitions taken, keyed by (from_state, to_state).
        self.transitions: Counter = Counter()
        #: Total number of evaluated cycles.
        self.cycles = 0

    def state(self, name: str, handler: StateHandler) -> None:
        """Register ``handler`` as the behaviour of state ``name``."""
        if name in self._handlers:
            raise FsmStateError(f"state {name!r} registered twice")
        self._handlers[name] = handler

    def states(self) -> list:
        """Names of all registered states."""
        return list(self._handlers)

    def reset(self) -> None:
        """Return to the initial state without clearing statistics."""
        self.current_state = self._initial

    def step(self) -> str:
        """Evaluate one clock cycle; returns the state *after* the cycle."""
        try:
            handler = self._handlers[self.current_state]
        except KeyError:
            raise FsmStateError(
                f"FSM is in unregistered state {self.current_state!r}"
            ) from None
        self.cycles += 1
        self.occupancy[self.current_state] += 1
        next_state = handler()
        if next_state is None or next_state == self.current_state:
            return self.current_state
        if next_state not in self._handlers:
            raise FsmStateError(
                f"handler for {self.current_state!r} returned unknown state "
                f"{next_state!r}"
            )
        self.transitions[(self.current_state, next_state)] += 1
        self.current_state = next_state
        return self.current_state

    def occupancy_fraction(self, state: str) -> float:
        """Fraction of evaluated cycles spent in ``state`` (0.0 if never run)."""
        if self.cycles == 0:
            return 0.0
        return self.occupancy[state] / self.cycles
