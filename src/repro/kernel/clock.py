"""Clock generator module.

A :class:`Clock` drives a boolean signal with a configurable period and duty
cycle.  Clocked models register processes sensitive to
``clock.posedge_event`` and read/write their signals once per cycle.

For the performance-critical co-simulation models in this project the clock
also exposes a monotonically increasing :attr:`cycle` counter so cycle-true
models can timestamp transactions without recomputing ``now // period``.
"""

from __future__ import annotations

from typing import Optional

from .event import Event
from .module import Module
from .process import WaitCycleCache, WaitCycles
from .signal import Signal
from .simtime import NS


class Clock(Module):
    """A free-running clock with period ``period`` time units."""

    def __init__(
        self,
        name: str = "clock",
        period: int = 10 * NS,
        duty_cycle: float = 0.5,
        parent: Optional[Module] = None,
        start_high: bool = False,
    ) -> None:
        super().__init__(name, parent)
        if period <= 1:
            raise ValueError("clock period must be at least 2 time units")
        if not 0.0 < duty_cycle < 1.0:
            raise ValueError("duty cycle must be strictly between 0 and 1")
        self.period = period
        self.high_time = max(1, int(round(period * duty_cycle)))
        self.low_time = period - self.high_time
        if self.low_time < 1:
            self.high_time = period - 1
            self.low_time = 1
        self.signal: Signal[bool] = self.add_signal(
            Signal(start_high, name=f"{name}.sig")
        )
        #: Number of completed rising edges since the start of simulation.
        self.cycle: int = 0
        self._start_high = start_high
        self._wait_cache = WaitCycleCache(period)
        self.add_process(self._drive, name="drive")

    # -- events ----------------------------------------------------------------
    @property
    def posedge_event(self) -> Event:
        """Event notified on every rising edge of the clock signal."""
        return self.signal.posedge_event

    @property
    def negedge_event(self) -> Event:
        """Event notified on every falling edge of the clock signal."""
        return self.signal.negedge_event

    def read(self) -> bool:
        """Current level of the clock signal."""
        return self.signal.read()

    # -- behaviour ----------------------------------------------------------------
    def _drive(self):
        if self._start_high:
            # Already high: stay high for the high time, then fall.
            while True:
                self.cycle += 1
                yield self.high_time
                self.signal.write(False)
                yield self.low_time
                self.signal.write(True)
        else:
            while True:
                yield self.low_time
                self.signal.write(True)
                self.cycle += 1
                yield self.high_time
                self.signal.write(False)

    def cycles_to_time(self, cycles: int) -> int:
        """Convert a cycle count into time units for this clock."""
        return cycles * self.period

    def wait_cycles(self, cycles: int) -> WaitCycles:
        """A reusable ``yield``-able wait for ``cycles`` periods of this clock.

        Instances are cached per cycle count, so clocked models that wait a
        small set of distinct cycle counts (``yield clock.wait_cycles(1)``
        in a processing loop) allocate nothing on the scheduler hot path.
        """
        return self._wait_cache.get(cycles)
