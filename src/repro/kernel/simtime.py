"""Simulation time representation.

The kernel keeps time as a plain integer number of *time units*.  A time unit
is, by convention, one picosecond; helper constants are provided so that
models can write ``10 * NS`` instead of magic numbers.  Using integers keeps
event ordering exact (no floating point ties) and cheap to compare.
"""

from __future__ import annotations

from dataclasses import dataclass

#: One picosecond — the base resolution of the kernel.
PS = 1
#: One nanosecond expressed in base units.
NS = 1_000 * PS
#: One microsecond expressed in base units.
US = 1_000 * NS
#: One millisecond expressed in base units.
MS = 1_000 * US
#: One second expressed in base units.
SEC = 1_000 * MS

#: Mapping from unit suffix to multiplier, used by :func:`parse_time`.
_UNITS = {
    "ps": PS,
    "ns": NS,
    "us": US,
    "ms": MS,
    "s": SEC,
    "sec": SEC,
}


def parse_time(text: str) -> int:
    """Parse a human-readable duration such as ``"10 ns"`` into base units.

    The numeric part may be an integer or a decimal; the result is always an
    integer number of picoseconds.

    >>> parse_time("10 ns")
    10000
    >>> parse_time("2.5us")
    2500000
    """
    stripped = text.strip().lower()
    for suffix in sorted(_UNITS, key=len, reverse=True):
        if stripped.endswith(suffix):
            number = stripped[: -len(suffix)].strip()
            if not number:
                raise ValueError(f"missing numeric value in {text!r}")
            return int(round(float(number) * _UNITS[suffix]))
    raise ValueError(f"unknown time unit in {text!r}")


def format_time(value: int) -> str:
    """Format a base-unit duration using the largest unit that stays integral.

    >>> format_time(10000)
    '10 ns'
    >>> format_time(1500)
    '1500 ps'
    """
    for name, mult in (("s", SEC), ("ms", MS), ("us", US), ("ns", NS)):
        if value and value % mult == 0:
            return f"{value // mult} {name}"
    return f"{value} ps"


@dataclass(frozen=True)
class ClockPeriod:
    """A clock period expressed both in base time units and in frequency.

    Instances are immutable; they are convenient for passing clock
    configuration between platform components.
    """

    period: int

    @classmethod
    def from_frequency_mhz(cls, mhz: float) -> "ClockPeriod":
        """Build a period from a frequency in MHz (e.g. 200 MHz -> 5 ns)."""
        if mhz <= 0:
            raise ValueError("frequency must be positive")
        return cls(int(round(US / mhz)))

    @property
    def frequency_mhz(self) -> float:
        """The equivalent frequency in MHz."""
        return US / self.period

    def cycles_to_time(self, cycles: int) -> int:
        """Convert a number of clock cycles to base time units."""
        return cycles * self.period

    def time_to_cycles(self, time: int) -> int:
        """Convert base time units to whole elapsed clock cycles."""
        return time // self.period
