"""Simulation processes.

A *process* is a Python generator function registered on a module.  The
generator runs until it ``yield``s a wait request, at which point control
returns to the scheduler.  Supported wait requests:

* ``yield WaitTime(n)`` or ``yield n`` (an ``int``) — resume after ``n`` time
  units.
* ``yield WaitCycles(n, period)`` — resume after ``n`` clock cycles of
  ``period`` time units each; immutable, so instances can be cached and
  reused across yields (see :meth:`repro.kernel.clock.Clock.wait_cycles`).
* ``yield WaitEvent(e)`` or ``yield e`` (an :class:`~repro.kernel.event.Event`)
  — resume when the event is notified.
* ``yield WaitAny(e1, e2, ...)`` — resume when any of the events fires.
* ``yield WaitDelta()`` — resume in the next delta cycle.

Processes may also be *statically sensitive* to a list of events (typically a
clock edge); such processes are re-run from the top on each trigger if they
are plain callables, or resumed if they are generators.

Timed waits take a scheduler fast path: instead of allocating an
:class:`~repro.kernel.event.Event` per wait, the process itself is pushed
onto the timed queue and woken directly when its deadline pops (one reusable
private timer per process, identified by the :attr:`Process._is_process`
marker).  Event waits are registered with the process's current *wait
token*; waking the process advances the token, which invalidates every
outstanding registration at once without scanning waiter lists.
"""

from __future__ import annotations

import inspect
from typing import TYPE_CHECKING, Callable, Iterable, List, Optional, Sequence, Union

from .errors import ProcessError
from .event import Event

if TYPE_CHECKING:  # pragma: no cover
    from .simulator import Simulator


class WaitRequest:
    """Base class for objects a process may yield to the scheduler."""

    __slots__ = ()


class WaitTime(WaitRequest):
    """Suspend the process for a fixed number of time units."""

    __slots__ = ("duration",)

    def __init__(self, duration: int) -> None:
        if duration < 0:
            raise ValueError("wait duration must be >= 0")
        self.duration = duration

    def __repr__(self) -> str:  # pragma: no cover
        return f"WaitTime({self.duration})"


class WaitCycles(WaitTime):
    """Suspend the process for ``cycles`` clock cycles of ``period`` units.

    Precomputes the duration once, so a cached instance yielded repeatedly
    (a clock-driven task processor's per-cycle wait, a poll interval) costs
    no per-yield allocation or multiplication.
    """

    __slots__ = ("cycles", "period")

    def __init__(self, cycles: int, period: int = 1) -> None:
        if cycles < 0:
            raise ValueError("wait cycles must be >= 0")
        if period <= 0:
            raise ValueError("clock period must be positive")
        self.cycles = cycles
        self.period = period
        self.duration = cycles * period

    def __repr__(self) -> str:  # pragma: no cover
        return f"WaitCycles({self.cycles}, period={self.period})"


class WaitCycleCache:
    """A bounded per-clock cache of reusable :class:`WaitCycles` objects.

    Shared by :class:`repro.kernel.clock.Clock` and
    :class:`repro.sw.task.TaskContext`: models that wait a small set of
    recurring cycle counts get the same wait object back on every call, so
    the scheduler hot path sees no per-yield allocation.
    """

    __slots__ = ("period", "limit", "_cache")

    def __init__(self, period: int, limit: int = 256) -> None:
        self.period = period
        self.limit = limit
        self._cache: dict = {}

    def get(self, cycles: int) -> "WaitCycles":
        wait = self._cache.get(cycles)
        if wait is None:
            wait = WaitCycles(cycles, self.period)
            if len(self._cache) < self.limit:
                self._cache[cycles] = wait
        return wait


class WaitDelta(WaitRequest):
    """Suspend the process until the next delta cycle."""

    __slots__ = ()


class WaitEvent(WaitRequest):
    """Suspend the process until a specific event is notified."""

    __slots__ = ("event",)

    def __init__(self, event: Event) -> None:
        self.event = event


class WaitAny(WaitRequest):
    """Suspend the process until any of the given events is notified."""

    __slots__ = ("events",)

    def __init__(self, *events: Event) -> None:
        if not events:
            raise ValueError("WaitAny requires at least one event")
        self.events = tuple(events)


#: The union of things a process body may yield.
Yieldable = Union[WaitRequest, Event, int]


class Process:
    """Scheduler-side wrapper around a user process body.

    ``body`` may be either a generator function (resumable, keeps local
    state between activations) or a plain callable (re-invoked on every
    trigger, SystemC ``SC_METHOD`` style).
    """

    __slots__ = (
        "name",
        "_body",
        "_generator",
        "_is_generator_func",
        "_static_events",
        "_sim",
        "_terminated",
        "_wait_token",
        "_runnable_gen",
        "activation_count",
    )

    #: Marker used by the scheduler to discriminate timed-queue payloads
    #: (process timers vs. events) without ``isinstance`` checks.
    _is_process = True

    def __init__(
        self,
        name: str,
        body: Callable[[], Union[None, Iterable[Yieldable]]],
        static_events: Sequence[Event] = (),
    ) -> None:
        self.name = name
        self._body = body
        self._is_generator_func = inspect.isgeneratorfunction(body)
        self._generator = None
        self._static_events: List[Event] = list(static_events)
        self._sim: Optional["Simulator"] = None
        self._terminated = False
        #: Advanced on every activation; event registrations carry the token
        #: they were made under and become stale when it moves on.
        self._wait_token = 0
        #: Generation stamp used by the scheduler's runnable dedup.
        self._runnable_gen = 0
        #: Number of times the process has been activated (useful in tests).
        self.activation_count = 0

    # -- properties -------------------------------------------------------
    @property
    def terminated(self) -> bool:
        """True once a generator body has run to completion."""
        return self._terminated

    @property
    def is_method(self) -> bool:
        """True if the body is a plain callable re-run on every activation."""
        return not self._is_generator_func

    # -- wiring -----------------------------------------------------------
    def _bind(self, sim: "Simulator") -> None:
        self._sim = sim
        # A rebound process (module tree reused in a fresh simulator) must
        # not carry a stamp from the old simulator's generation counter, or
        # the runnable dedup could mistake it for a duplicate.
        self._runnable_gen = 0
        for event in self._static_events:
            event._bind(sim)
            event.add_static_sensitivity(self)

    def add_static_sensitivity(self, event: Event) -> None:
        """Make the process statically sensitive to ``event``."""
        self._static_events.append(event)
        if self._sim is not None:
            event._bind(self._sim)
            event.add_static_sensitivity(self)

    # -- execution --------------------------------------------------------
    def run(self) -> Optional[Yieldable]:
        """Activate the process once and return what it yielded (if anything).

        Returns ``None`` when a method process returns or a generator body
        terminates; otherwise returns the yielded wait request, which the
        scheduler translates into event/time waits.
        """
        if self._terminated:
            return None
        self.activation_count += 1
        # Waking invalidates every outstanding event registration at once.
        self._wait_token += 1
        generator = self._generator
        try:
            if generator is not None:
                return next(generator)
            if self._is_generator_func:
                self._generator = generator = self._body()
                return next(generator)
            result = self._body()
            if inspect.isgenerator(result):
                # The body was a factory (lambda/partial) returning a
                # generator: adopt it and behave like a thread process.
                self._is_generator_func = True
                self._generator = result
                return next(result)
            return None
        except StopIteration:
            self._terminated = True
            return None
        except Exception as exc:  # re-raise with process context
            self._terminated = True
            raise ProcessError(f"process {self.name!r} raised {exc!r}") from exc

    def _register_dynamic_wait(self, event: Event) -> None:
        event._add_waiter(self)

    def __repr__(self) -> str:  # pragma: no cover
        kind = "method" if self.is_method else "thread"
        return f"Process({self.name!r}, {kind})"
