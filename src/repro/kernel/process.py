"""Simulation processes.

A *process* is a Python generator function registered on a module.  The
generator runs until it ``yield``s a wait request, at which point control
returns to the scheduler.  Supported wait requests:

* ``yield WaitTime(n)`` or ``yield n`` (an ``int``) — resume after ``n`` time
  units.
* ``yield WaitEvent(e)`` or ``yield e`` (an :class:`~repro.kernel.event.Event`)
  — resume when the event is notified.
* ``yield WaitAny(e1, e2, ...)`` — resume when any of the events fires.
* ``yield WaitDelta()`` — resume in the next delta cycle.

Processes may also be *statically sensitive* to a list of events (typically a
clock edge); such processes are re-run from the top on each trigger if they
are plain callables, or resumed if they are generators.
"""

from __future__ import annotations

import inspect
from typing import TYPE_CHECKING, Callable, Iterable, List, Optional, Sequence, Union

from .errors import ProcessError
from .event import Event

if TYPE_CHECKING:  # pragma: no cover
    from .simulator import Simulator


class WaitRequest:
    """Base class for objects a process may yield to the scheduler."""

    __slots__ = ()


class WaitTime(WaitRequest):
    """Suspend the process for a fixed number of time units."""

    __slots__ = ("duration",)

    def __init__(self, duration: int) -> None:
        if duration < 0:
            raise ValueError("wait duration must be >= 0")
        self.duration = duration

    def __repr__(self) -> str:  # pragma: no cover
        return f"WaitTime({self.duration})"


class WaitDelta(WaitRequest):
    """Suspend the process until the next delta cycle."""

    __slots__ = ()


class WaitEvent(WaitRequest):
    """Suspend the process until a specific event is notified."""

    __slots__ = ("event",)

    def __init__(self, event: Event) -> None:
        self.event = event


class WaitAny(WaitRequest):
    """Suspend the process until any of the given events is notified."""

    __slots__ = ("events",)

    def __init__(self, *events: Event) -> None:
        if not events:
            raise ValueError("WaitAny requires at least one event")
        self.events = tuple(events)


#: The union of things a process body may yield.
Yieldable = Union[WaitRequest, Event, int]


class Process:
    """Scheduler-side wrapper around a user process body.

    ``body`` may be either a generator function (resumable, keeps local
    state between activations) or a plain callable (re-invoked on every
    trigger, SystemC ``SC_METHOD`` style).
    """

    __slots__ = (
        "name",
        "_body",
        "_generator",
        "_is_generator_func",
        "_static_events",
        "_dynamic_events",
        "_sim",
        "_terminated",
        "activation_count",
    )

    def __init__(
        self,
        name: str,
        body: Callable[[], Union[None, Iterable[Yieldable]]],
        static_events: Sequence[Event] = (),
    ) -> None:
        self.name = name
        self._body = body
        self._is_generator_func = inspect.isgeneratorfunction(body)
        self._generator = None
        self._static_events: List[Event] = list(static_events)
        self._dynamic_events: List[Event] = []
        self._sim: Optional["Simulator"] = None
        self._terminated = False
        #: Number of times the process has been activated (useful in tests).
        self.activation_count = 0

    # -- properties -------------------------------------------------------
    @property
    def terminated(self) -> bool:
        """True once a generator body has run to completion."""
        return self._terminated

    @property
    def is_method(self) -> bool:
        """True if the body is a plain callable re-run on every activation."""
        return not self._is_generator_func

    # -- wiring -----------------------------------------------------------
    def _bind(self, sim: "Simulator") -> None:
        self._sim = sim
        for event in self._static_events:
            event._bind(sim)
            event.add_static_sensitivity(self)

    def add_static_sensitivity(self, event: Event) -> None:
        """Make the process statically sensitive to ``event``."""
        self._static_events.append(event)
        if self._sim is not None:
            event._bind(self._sim)
            event.add_static_sensitivity(self)

    # -- execution --------------------------------------------------------
    def _clear_dynamic_waits(self) -> None:
        for event in self._dynamic_events:
            event._discard_waiter(self)
        self._dynamic_events.clear()

    def run(self) -> Optional[Yieldable]:
        """Activate the process once and return what it yielded (if anything).

        Returns ``None`` when a method process returns or a generator body
        terminates; otherwise returns the yielded wait request, which the
        scheduler translates into event/time waits.
        """
        if self._terminated:
            return None
        self.activation_count += 1
        self._clear_dynamic_waits()
        try:
            if self._is_generator_func:
                if self._generator is None:
                    self._generator = self._body()
                return next(self._generator)
            if self._generator is not None:
                return next(self._generator)
            result = self._body()
            if inspect.isgenerator(result):
                # The body was a factory (lambda/partial) returning a
                # generator: adopt it and behave like a thread process.
                self._is_generator_func = True
                self._generator = result
                return next(self._generator)
            return None
        except StopIteration:
            self._terminated = True
            return None
        except Exception as exc:  # re-raise with process context
            self._terminated = True
            raise ProcessError(f"process {self.name!r} raised {exc!r}") from exc

    def _register_dynamic_wait(self, event: Event) -> None:
        event._add_waiter(self)
        self._dynamic_events.append(event)

    def __repr__(self) -> str:  # pragma: no cover
        kind = "method" if self.is_method else "thread"
        return f"Process({self.name!r}, {kind})"
