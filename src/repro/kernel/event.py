"""Events and the central event queue.

Events follow SystemC semantics:

* ``notify()`` with no argument performs an *immediate* notification — every
  process currently sensitive to the event becomes runnable in the same
  evaluation phase.
* ``notify(0)`` (delta notification) wakes waiting processes in the next
  delta cycle.
* ``notify(t)`` with ``t > 0`` wakes waiting processes after ``t`` time units.

A later notification with an earlier completion time overrides a pending
one, exactly as in SystemC.

Two scheduler-internal mechanisms keep the hot path cheap and correct:

* **Scheduling epochs** — every state change of a pending notification
  (schedule, cancel, fire) bumps :attr:`Event._epoch`.  Queue entries (timed
  heap and delta queue) carry the epoch they were scheduled under, and the
  scheduler only fires an entry whose epoch still matches.  This makes stale
  entries (cancelled or overridden notifications left behind in the heap or
  delta queue) exactly identifiable: a delta notification pending while an
  old timed entry pops no longer causes a double wake, and a cancelled delta
  notification no longer fires.
* **Waiter tokens** — dynamic waiters are stored as ``(process, token)``
  pairs, where the token is the process's activation counter at registration
  time.  Waking a process invalidates all of its registrations at once (the
  token moves on), so the scheduler never scans waiter lists to deregister a
  process that was woken through another event of a ``WaitAny``.  Stale
  pairs are filtered when the event fires and compacted amortized-O(1) when
  the list grows.
"""

from __future__ import annotations

import heapq
import itertools
from typing import TYPE_CHECKING, Iterable, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .process import Process
    from .simulator import Simulator

#: Sentinel meaning "no notification pending".
_NOT_PENDING = -1
#: Sentinel time meaning "pending as a delta notification".
_DELTA_PENDING = -2

#: Waiter lists shorter than this are never compacted.
_MIN_COMPACT = 16


class Event:
    """A notification primitive processes can wait on.

    Events are created by modules (or by signals internally) and bound to the
    simulator lazily on first use.  Waiting is done from a process by yielding
    the event (or a :class:`repro.kernel.process.WaitEvent` wrapping it).
    """

    __slots__ = (
        "name",
        "_sim",
        "_waiters",
        "_static_sensitive",
        "_pending_at",
        "_epoch",
        "_compact_at",
    )

    #: Class marker letting the scheduler discriminate heap payloads
    #: (events vs. process timers) without ``isinstance``.
    _is_process = False

    def __init__(self, name: str = "event") -> None:
        self.name = name
        self._sim: Optional["Simulator"] = None
        #: ``(process, wait_token)`` pairs dynamically waiting on this event.
        self._waiters: List[Tuple["Process", int]] = []
        #: Processes statically sensitive to this event (persistent).
        self._static_sensitive: List["Process"] = []
        self._pending_at: int = _NOT_PENDING
        #: Bumped on every schedule/cancel/fire; queue entries carry the
        #: epoch they were scheduled under and only fire on an exact match.
        self._epoch: int = 0
        self._compact_at: int = _MIN_COMPACT

    # -- wiring ----------------------------------------------------------
    def _bind(self, sim: "Simulator") -> None:
        self._sim = sim

    def add_static_sensitivity(self, process: "Process") -> None:
        """Register ``process`` to be woken on *every* notification."""
        if process not in self._static_sensitive:
            self._static_sensitive.append(process)

    def remove_static_sensitivity(self, process: "Process") -> None:
        """Remove a previously registered static sensitivity (no-op if absent)."""
        try:
            index = self._static_sensitive.index(process)
        except ValueError:
            return
        last = self._static_sensitive.pop()
        if last is not process:
            self._static_sensitive[index] = last

    def _add_waiter(self, process: "Process") -> None:
        waiters = self._waiters
        waiters.append((process, process._wait_token))
        if len(waiters) >= self._compact_at:
            # Drop registrations of processes that have since been woken
            # through another event; amortized O(1) per registration.
            self._waiters = waiters = [
                pair for pair in waiters if pair[0]._wait_token == pair[1]
            ]
            self._compact_at = max(_MIN_COMPACT, 2 * len(waiters))

    # -- notification ----------------------------------------------------
    def notify(self, delay: Optional[int] = None) -> None:
        """Notify the event.

        ``delay=None`` → immediate, ``delay=0`` → next delta cycle,
        ``delay>0`` → timed notification after ``delay`` time units.
        """
        sim = self._sim
        if sim is None:
            raise RuntimeError(
                f"event {self.name!r} is not attached to a running simulator"
            )
        if delay is None:
            # Immediate notification also cancels any pending one (the fire
            # path resets the pending state and bumps the epoch).
            sim._trigger_event_now(self)
            return
        if delay == 0:
            if self._pending_at == _DELTA_PENDING:
                return
            # A delta notification overrides any pending timed notification.
            self._pending_at = _DELTA_PENDING
            self._epoch += 1
            sim._schedule_delta_event(self, self._epoch)
            return
        if delay < 0:
            raise ValueError("notification delay must be >= 0")
        if self._pending_at == _DELTA_PENDING:
            return  # an earlier (delta) notification wins
        target = sim.now + delay
        if self._pending_at != _NOT_PENDING and self._pending_at <= target:
            return  # an earlier timed notification wins
        self._pending_at = target
        self._epoch += 1
        sim._schedule_timed_event(self, target, self._epoch)

    def _notify_delta(self) -> None:
        """Delta notification without the dispatch of :meth:`notify`.

        For scheduler-internal callers (signal updates) that already know
        the event is bound and want ``notify(0)`` semantics.
        """
        if self._pending_at != _DELTA_PENDING:
            self._pending_at = _DELTA_PENDING
            self._epoch += 1
            self._sim._schedule_delta_event(self, self._epoch)

    def cancel(self) -> None:
        """Cancel any pending (delta or timed) notification."""
        self._pending_at = _NOT_PENDING
        self._epoch += 1

    # -- used by the simulator -------------------------------------------
    def _collect_triggered(self) -> Iterable["Process"]:
        """Return and clear the processes to wake, marking the event fired."""
        self._pending_at = _NOT_PENDING
        self._epoch += 1
        waiters = self._waiters
        static = self._static_sensitive
        if not waiters:
            return static
        self._waiters = []
        if static:
            triggered = list(static)
            for process, token in waiters:
                if process._wait_token == token:
                    triggered.append(process)
            return triggered
        return [process for process, token in waiters
                if process._wait_token == token]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Event({self.name!r})"


class EventQueue:
    """A priority queue of timed notifications keyed by (time, sequence).

    The sequence counter keeps ordering deterministic for notifications
    scheduled at the same instant.  Entries are
    ``(time, sequence, payload, epoch)`` tuples; the payload is either an
    :class:`Event` or a process timer (see
    :meth:`repro.kernel.simulator.Simulator`), and the epoch identifies the
    exact scheduling so stale entries can be skipped on pop.
    """

    __slots__ = ("_heap", "_counter")

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, object, int]] = []
        self._counter = itertools.count()

    def push(self, time: int, event, epoch: int = 0) -> None:
        """Schedule ``event`` to fire at absolute ``time``."""
        heapq.heappush(self._heap, (time, next(self._counter), event, epoch))

    def next_time(self) -> Optional[int]:
        """Absolute time of the earliest pending notification, or ``None``."""
        return self._heap[0][0] if self._heap else None

    def pop_until(self, time: int) -> List[Tuple[object, int]]:
        """Pop every entry at or before ``time`` as ``(payload, epoch)``."""
        fired: List[Tuple[object, int]] = []
        heap = self._heap
        while heap and heap[0][0] <= time:
            __, __, payload, epoch = heapq.heappop(heap)
            fired.append((payload, epoch))
        return fired

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
