"""Events and the central event queue.

Events follow SystemC semantics:

* ``notify()`` with no argument performs an *immediate* notification — every
  process currently sensitive to the event becomes runnable in the same
  evaluation phase.
* ``notify(0)`` (delta notification) wakes waiting processes in the next
  delta cycle.
* ``notify(t)`` with ``t > 0`` wakes waiting processes after ``t`` time units.

A later notification with an earlier completion time overrides a pending
one, exactly as in SystemC.
"""

from __future__ import annotations

import heapq
import itertools
from typing import TYPE_CHECKING, Iterable, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .process import Process
    from .simulator import Simulator

#: Sentinel meaning "no notification pending".
_NOT_PENDING = -1
#: Sentinel time meaning "pending as a delta notification".
_DELTA_PENDING = -2


class Event:
    """A notification primitive processes can wait on.

    Events are created by modules (or by signals internally) and bound to the
    simulator lazily on first use.  Waiting is done from a process by yielding
    the event (or a :class:`repro.kernel.process.WaitEvent` wrapping it).
    """

    __slots__ = ("name", "_sim", "_waiters", "_static_sensitive", "_pending_at")

    def __init__(self, name: str = "event") -> None:
        self.name = name
        self._sim: Optional["Simulator"] = None
        #: Processes dynamically waiting on this event (one-shot).
        self._waiters: List["Process"] = []
        #: Processes statically sensitive to this event (persistent).
        self._static_sensitive: List["Process"] = []
        self._pending_at: int = _NOT_PENDING

    # -- wiring ----------------------------------------------------------
    def _bind(self, sim: "Simulator") -> None:
        self._sim = sim

    def add_static_sensitivity(self, process: "Process") -> None:
        """Register ``process`` to be woken on *every* notification."""
        if process not in self._static_sensitive:
            self._static_sensitive.append(process)

    def remove_static_sensitivity(self, process: "Process") -> None:
        """Remove a previously registered static sensitivity (no-op if absent)."""
        if process in self._static_sensitive:
            self._static_sensitive.remove(process)

    def _add_waiter(self, process: "Process") -> None:
        self._waiters.append(process)

    def _discard_waiter(self, process: "Process") -> None:
        if process in self._waiters:
            self._waiters.remove(process)

    # -- notification ----------------------------------------------------
    def notify(self, delay: Optional[int] = None) -> None:
        """Notify the event.

        ``delay=None`` → immediate, ``delay=0`` → next delta cycle,
        ``delay>0`` → timed notification after ``delay`` time units.
        """
        if self._sim is None:
            raise RuntimeError(
                f"event {self.name!r} is not attached to a running simulator"
            )
        if delay is None:
            self._pending_at = _NOT_PENDING
            self._sim._trigger_event_now(self)
            return
        if delay < 0:
            raise ValueError("notification delay must be >= 0")
        if delay == 0:
            if self._pending_at == _DELTA_PENDING:
                return
            # A delta notification overrides any pending timed notification.
            self._pending_at = _DELTA_PENDING
            self._sim._schedule_delta_event(self)
            return
        target = self._sim.now + delay
        if self._pending_at == _DELTA_PENDING:
            return  # an earlier (delta) notification wins
        if self._pending_at != _NOT_PENDING and self._pending_at <= target:
            return  # an earlier timed notification wins
        self._pending_at = target
        self._sim._schedule_timed_event(self, target)

    def cancel(self) -> None:
        """Cancel any pending (delta or timed) notification."""
        self._pending_at = _NOT_PENDING

    # -- used by the simulator -------------------------------------------
    def _collect_triggered(self) -> Iterable["Process"]:
        """Return and clear the processes to wake, marking the event fired."""
        triggered = list(self._static_sensitive)
        triggered.extend(self._waiters)
        self._waiters.clear()
        self._pending_at = _NOT_PENDING
        return triggered

    def _is_pending_for(self, time: int) -> bool:
        return self._pending_at == time or self._pending_at == _DELTA_PENDING

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Event({self.name!r})"


class EventQueue:
    """A priority queue of timed notifications keyed by (time, sequence).

    The sequence counter keeps ordering deterministic for notifications
    scheduled at the same instant.
    """

    __slots__ = ("_heap", "_counter")

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, Event]] = []
        self._counter = itertools.count()

    def push(self, time: int, event: Event) -> None:
        """Schedule ``event`` to fire at absolute ``time``."""
        heapq.heappush(self._heap, (time, next(self._counter), event))

    def next_time(self) -> Optional[int]:
        """Absolute time of the earliest pending notification, or ``None``."""
        return self._heap[0][0] if self._heap else None

    def pop_until(self, time: int) -> List[Event]:
        """Pop and return every event scheduled at or before ``time``."""
        fired: List[Event] = []
        while self._heap and self._heap[0][0] <= time:
            __, __, event = heapq.heappop(self._heap)
            fired.append(event)
        return fired

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
