"""The discrete-event scheduler.

The scheduler follows the SystemC reference algorithm:

1. *Evaluation phase*: run every runnable process.  Processes may write
   signals (staging new values) and notify events.
2. *Update phase*: commit staged signal values; changed signals issue delta
   notifications.
3. *Delta notification phase*: collect processes woken by delta
   notifications; if any, loop back to the evaluation phase (a new delta
   cycle at the same time).
4. *Timed notification phase*: advance time to the earliest pending timed
   notification and wake its waiters.

Simulation ends when there is nothing left to do, a configured time limit is
reached, or :meth:`Simulator.stop` is called.  Like SystemC's ``sc_start``
(with the default starvation policy), ``run(duration)`` always leaves
``now`` at ``start + duration`` — even when activity drains early — unless
the run was stopped explicitly.

Scheduler fast paths (semantics-preserving; see ``tests/perf``):

* **Per-process timer reuse** — ``yield n`` / ``yield WaitTime(n)`` pushes
  the process itself onto the timed queue instead of allocating a fresh
  :class:`~repro.kernel.event.Event` per wait; the pop wakes the process
  directly.
* **Direct delta waits** — ``yield WaitDelta()`` / ``yield 0`` enqueues the
  process on the delta queue instead of routing through ``Event.notify(0)``.
  Delta-queue entries preserve exact notification order (events and process
  wakes interleave as they were scheduled).
* **Generation-counter dedup** — the per-delta-cycle runnable set is built
  by stamping each process with the current scheduling generation instead
  of building an id-set.
* **Epoch-checked queue entries** — stale (cancelled or overridden) timed
  and delta entries are skipped by comparing the entry's scheduling epoch
  with the event's current one (see :mod:`repro.kernel.event`).
"""

from __future__ import annotations

import time as _wallclock
from heapq import heappop, heappush
from typing import List, Optional

from .errors import DeltaCycleLimitExceeded, ProcessError, SchedulerError
from .event import Event, EventQueue
from .module import Module
from .process import (
    Process,
    WaitAny,
    WaitDelta,
    WaitEvent,
    WaitRequest,
    WaitTime,
    Yieldable,
)
from .signal import Signal


class SimulationStats:
    """Counters describing a completed (or in-progress) simulation run."""

    __slots__ = (
        "delta_cycles",
        "timed_steps",
        "process_activations",
        "events_fired",
        "wallclock_seconds",
        "end_time",
    )

    def __init__(self) -> None:
        self.delta_cycles = 0
        self.timed_steps = 0
        self.process_activations = 0
        self.events_fired = 0
        self.wallclock_seconds = 0.0
        self.end_time = 0

    def as_dict(self) -> dict:
        """Return the counters as a plain dictionary (for reports)."""
        return {name: getattr(self, name) for name in self.__slots__}


class Simulator:
    """Owns the module hierarchy and runs the event loop."""

    #: Safety valve against combinational loops.
    MAX_DELTA_CYCLES_PER_TIMESTEP = 10_000

    def __init__(self, top: Optional[Module] = None) -> None:
        self._tops: List[Module] = []
        self.now: int = 0
        #: Time of the last processed timed step (or run start) — the point
        #: ``now`` would have stopped at without the ``sc_start`` deadline
        #: clamp.  See :meth:`trim_to_last_activity`.
        self.last_activity_time: int = 0
        self._elaborated = False
        self._running = False
        self._stop_requested = False
        self._timed_events = EventQueue()
        #: Mixed delta queue preserving notification order: ``(event, epoch)``
        #: tuples for ``notify(0)``, bare processes for direct delta waits.
        self._delta_queue: List[object] = []
        self._immediate_runnable: List[Process] = []
        self._pending_signal_updates: List[Signal] = []
        self._processes: List[Process] = []
        #: Scheduling generation for runnable dedup (see ``_dedup_runnable``).
        self._generation = 0
        #: Sync-event observer: ``observer(kind, event, process)`` with kind
        #: ``"notify"`` (the currently running process notified ``event``)
        #: or ``"wake"`` (``event`` woke ``process``).  Installed by the
        #: sanitizer suite (:mod:`repro.check`); ``None`` costs one hoisted
        #: ``is not None`` test per wake in the hot loop and never perturbs
        #: scheduling (observers must not notify events or create processes).
        self._sync_observer = None
        #: The process being evaluated right now (observer attribution).
        self._current_process: Optional[Process] = None
        self.stats = SimulationStats()
        if top is not None:
            self.add_top(top)

    # -- construction ---------------------------------------------------------
    def add_top(self, module: Module) -> None:
        """Add a top-level module to the simulation."""
        if self._elaborated:
            raise SchedulerError("cannot add modules after elaboration")
        self._tops.append(module)

    @property
    def top_modules(self) -> List[Module]:
        """The registered top-level modules."""
        return list(self._tops)

    def elaborate(self) -> None:
        """Bind every module, signal, event and process to this simulator."""
        if self._elaborated:
            return
        if not self._tops:
            raise SchedulerError("no top-level module registered")
        for top in self._tops:
            for module in top.descendants():
                module.elaborate()
        for top in self._tops:
            for module in top.descendants():
                module.check_bindings()
                for signal in module.signals:
                    signal._bind(self)
                for event in module._events:
                    event._bind(self)
                for port in module._ports:
                    if port.bound:
                        port.signal._bind(self)
                for process in module.processes:
                    process._bind(self)
                    self._processes.append(process)
        # All processes start runnable, as in SystemC.
        self._immediate_runnable.extend(
            p for p in self._processes if not p.is_method or p._static_events == []
        )
        # Method processes with sensitivities wait for their first trigger,
        # except that SystemC runs them once at time zero; mirror that.
        self._immediate_runnable.extend(
            p for p in self._processes if p.is_method and p._static_events
        )
        self._elaborated = True

    # -- hooks used by events/signals ------------------------------------------
    def _schedule_timed_event(self, event: Event, when: int, epoch: int = 0) -> None:
        sync_observer = self._sync_observer
        if sync_observer is not None:
            sync_observer("notify", event, self._current_process)
        self._timed_events.push(when, event, epoch)

    def _schedule_delta_event(self, event: Event, epoch: int = 0) -> None:
        sync_observer = self._sync_observer
        if sync_observer is not None:
            sync_observer("notify", event, self._current_process)
        self._delta_queue.append((event, epoch))

    def _trigger_event_now(self, event: Event) -> None:
        self.stats.events_fired += 1
        sync_observer = self._sync_observer
        if sync_observer is not None:
            sync_observer("notify", event, self._current_process)
        runnable = self._immediate_runnable
        for process in event._collect_triggered():
            if not process._terminated:
                if sync_observer is not None:
                    sync_observer("wake", event, process)
                runnable.append(process)

    def _schedule_signal_update(self, signal: Signal) -> None:
        self._pending_signal_updates.append(signal)

    # -- wait-request handling ---------------------------------------------------
    def _wait_timed(self, process: Process, duration: int) -> None:
        """Timer fast path: the process is its own (reusable) timer.

        The entry carries the process's current wait token; if the process
        is woken early (e.g. through a static sensitivity), the token moves
        on and the stale timer entry is skipped when it pops.
        """
        self._timed_events.push(self.now + duration, process, process._wait_token)

    def _apply_wait(self, process: Process, request: Yieldable) -> None:
        """Translate a yielded wait request (slow path: non-int, non-WaitTime)."""
        if isinstance(request, WaitTime):
            if request.duration == 0:
                self._delta_queue.append(process)
            else:
                self._wait_timed(process, request.duration)
        elif isinstance(request, WaitDelta):
            self._delta_queue.append(process)
        elif isinstance(request, WaitEvent):
            request.event._bind(self)
            request.event._add_waiter(process)
        elif isinstance(request, Event):
            request._bind(self)
            request._add_waiter(process)
        elif isinstance(request, WaitAny):
            for event in request.events:
                event._bind(self)
                event._add_waiter(process)
        elif isinstance(request, int):
            # Rare non-exact int subclasses (e.g. IntEnum); bools excluded
            # from the fast path land here too.
            if request > 0:
                self._wait_timed(process, int(request))
            elif request == 0:
                self._delta_queue.append(process)
            else:
                raise ValueError("wait duration must be >= 0")
        elif isinstance(request, WaitRequest):
            raise ProcessError(
                f"process {process.name!r} yielded unsupported wait {request!r}"
            )
        else:
            raise ProcessError(
                f"process {process.name!r} yielded non-wait object {request!r}"
            )

    # -- main loop -----------------------------------------------------------------
    def run(self, duration: Optional[int] = None) -> SimulationStats:
        """Run the simulation.

        ``duration`` limits how far simulated time may advance (relative to
        the current time); ``None`` runs until no activity remains or
        :meth:`stop` is called.  With a ``duration``, the run always ends
        with ``now == start + duration`` (unless stopped), like SystemC's
        ``sc_start``.  Returns the accumulated statistics;
        ``stats.end_time`` equals the final ``now``.

        The loop body is deliberately monolithic: every phase of the
        scheduling algorithm is inlined so the per-timestep cost is a
        handful of local operations.  Statistics accumulate in locals and
        are flushed to :attr:`stats` on every exit path.
        """
        if self._running:
            raise SchedulerError("run() re-entered while already running")
        self.elaborate()
        self._running = True
        self._stop_requested = False
        self.last_activity_time = self.now
        deadline = None if duration is None else self.now + duration
        start_wall = _wallclock.perf_counter()
        stats = self.stats
        timed_events = self._timed_events
        heap = timed_events._heap
        counter = timed_events._counter
        push = heappush
        pop = heappop
        max_deltas = self.MAX_DELTA_CYCLES_PER_TIMESTEP
        # Both scheduling lists keep a stable identity (drained in place),
        # so they and their bound methods hoist out of the loop.
        runnable = self._immediate_runnable
        delta_queue = self._delta_queue
        wake = runnable.append
        # Sanitizer hook (``None`` on unsanitized runs): one hoisted test
        # per event-driven wake; timer fast-path wakes resume the same
        # process and carry no cross-process edge, so they skip it.
        sync_observer = self._sync_observer
        n_deltas = n_steps = n_activations = n_fired = 0
        clean_exit = False
        try:
            while True:
                # -- delta cycles at the current time --------------------------
                deltas_here = 0
                while True:
                    if delta_queue:
                        # Delta notification phase: wake processes in exact
                        # notification order (``notify(0)`` events and direct
                        # delta waits interleave as they were scheduled).
                        entries = delta_queue[:]
                        delta_queue.clear()
                        for entry in entries:
                            if entry.__class__ is tuple:
                                event, epoch = entry
                                if event._epoch == epoch:
                                    n_fired += 1
                                    for p in event._collect_triggered():
                                        if not p._terminated:
                                            if sync_observer is not None:
                                                sync_observer("wake", event, p)
                                            wake(p)
                            else:  # a process woken by a direct delta wait
                                n_fired += 1
                                if not entry._terminated:
                                    wake(entry)
                    count = len(runnable)
                    if not count:
                        break
                    n_deltas += 1
                    deltas_here += 1
                    if deltas_here > max_deltas:
                        raise DeltaCycleLimitExceeded(max_deltas)
                    # Evaluation set: the runnable list is recycled in place
                    # (wakes during evaluation land in the next delta cycle);
                    # with several candidates, dedup via generation stamps (a
                    # process woken by several events in one delta runs once).
                    if count == 1:
                        processes = (runnable[0],)
                    else:
                        generation = self._generation + 1
                        self._generation = generation
                        processes = []
                        for p in runnable:
                            if p._runnable_gen != generation:
                                p._runnable_gen = generation
                                processes.append(p)
                    runnable.clear()
                    # Evaluation phase.
                    now = self.now
                    for process in processes:
                        if process._terminated:
                            continue
                        n_activations += 1
                        self._current_process = process
                        generator = process._generator
                        if generator is not None:
                            # Running thread process: resume the generator
                            # directly (equivalent to ``process.run()``).
                            process.activation_count += 1
                            process._wait_token += 1
                            try:
                                request = next(generator)
                            except StopIteration:
                                process._terminated = True
                                request = None
                            except Exception as exc:
                                process._terminated = True
                                raise ProcessError(
                                    f"process {process.name!r} raised {exc!r}"
                                ) from exc
                        else:
                            # First activation or method process.
                            request = process.run()
                        if self._stop_requested:
                            return stats
                        if request.__class__ is int:
                            # Timer fast path: the dominant yield of clock-
                            # and task-driven models.  The process doubles as
                            # its own reusable timer entry.
                            if request > 0:
                                push(heap, (now + request, next(counter),
                                            process, process._wait_token))
                            elif request == 0:
                                delta_queue.append(process)
                            else:
                                raise ValueError("wait duration must be >= 0")
                        elif request is not None:
                            self._apply_wait(process, request)
                        # ``None``: generator finished or a method process
                        # waiting for its next trigger — nothing to schedule.
                    # Update phase.
                    updates = self._pending_signal_updates
                    if updates:
                        self._pending_signal_updates = []
                        for signal in updates:
                            signal._perform_update()
                # -- timed notification phase ----------------------------------
                if self._stop_requested or not heap:
                    break
                next_time = heap[0][0]
                if deadline is not None and next_time > deadline:
                    break  # the post-loop clamp advances now to the deadline
                self.now = self.last_activity_time = now = next_time
                n_steps += 1
                # Wake everything scheduled for ``now`` (the first pop is
                # unconditional: the heap head *is* the entry that set
                # ``now``).  Process entries are the reusable per-process
                # timers, valid while the wait token matches; event entries
                # fire only when their scheduling epoch is still current
                # (stale ones are skipped).
                while True:
                    __, __, payload, guard = pop(heap)
                    if payload._is_process:
                        if payload._wait_token == guard:
                            n_fired += 1
                            wake(payload)
                    elif payload._epoch == guard:
                        n_fired += 1
                        for p in payload._collect_triggered():
                            if not p._terminated:
                                if sync_observer is not None:
                                    sync_observer("wake", payload, p)
                                wake(p)
                    if not heap or heap[0][0] > now:
                        break
            clean_exit = True
        finally:
            self._running = False
            stats.delta_cycles += n_deltas
            stats.timed_steps += n_steps
            stats.process_activations += n_activations
            stats.events_fired += n_fired
            stats.wallclock_seconds += _wallclock.perf_counter() - start_wall
            if (clean_exit and deadline is not None
                    and not self._stop_requested and self.now < deadline):
                # Activity drained (or the next event lies beyond the
                # deadline): time still advances to the full duration, like
                # ``sc_start`` under the default starvation policy.
                self.now = deadline
            stats.end_time = self.now
        return stats

    # -- control -----------------------------------------------------------------
    def trim_to_last_activity(self) -> None:
        """Roll a deadline-clamped ``now`` back to the last real activity.

        ``run(duration)`` always ends at the deadline (``sc_start``
        semantics), even when activity drained early.  Drivers that slice
        ``run()`` calls and want *drain* semantics for their reports (the
        platform's ``max_time`` loop) call this after the final slice: when
        nothing remains scheduled, ``now`` (and ``stats.end_time``) return
        to the last processed timed step.  No-op while activity is pending.
        """
        if not self.pending_activity and self.now > self.last_activity_time:
            self.now = self.last_activity_time
            self.stats.end_time = self.now

    def stop(self) -> None:
        """Request the simulation to stop at the end of the current activation."""
        self._stop_requested = True

    def finalize(self) -> None:
        """Invoke every module's ``end_of_simulation`` hook."""
        for top in self._tops:
            for module in top.descendants():
                module.end_of_simulation()

    # -- convenience ---------------------------------------------------------------
    def run_until(self, absolute_time: int) -> SimulationStats:
        """Run until simulated time reaches ``absolute_time``."""
        if absolute_time < self.now:
            raise SchedulerError("cannot run backwards in time")
        return self.run(absolute_time - self.now)

    @property
    def pending_activity(self) -> bool:
        """True if any timed or delta activity remains scheduled."""
        return bool(self._timed_events) or bool(self._delta_queue) or bool(
            self._immediate_runnable
        )

    def next_activity_time(self) -> Optional[int]:
        """Earliest time at which this simulator has work, or ``None``.

        ``now`` when delta/immediate work is queued, else the head of the
        timed heap.  The heap may hold stale (cancelled/overridden)
        entries, so the returned bound can be earlier than the first entry
        that actually fires — a conservative lower bound, which is exactly
        what the PDES coordinator needs for a sound lookahead horizon.
        """
        if self._immediate_runnable or self._delta_queue:
            return self.now
        return self._timed_events.next_time()

    @property
    def runnable_depth(self) -> int:
        """Processes/events queued for the current delta cycle.

        A point-in-time congestion gauge (how much work the scheduler has
        stacked up *right now*), sampled by the observability metrics
        head; reading it never disturbs the queues.
        """
        return len(self._immediate_runnable) + len(self._delta_queue)
