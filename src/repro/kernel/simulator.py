"""The discrete-event scheduler.

The scheduler follows the SystemC reference algorithm:

1. *Evaluation phase*: run every runnable process.  Processes may write
   signals (staging new values) and notify events.
2. *Update phase*: commit staged signal values; changed signals issue delta
   notifications.
3. *Delta notification phase*: collect processes woken by delta
   notifications; if any, loop back to the evaluation phase (a new delta
   cycle at the same time).
4. *Timed notification phase*: advance time to the earliest pending timed
   notification and wake its waiters.

Simulation ends when there is nothing left to do, a configured time limit is
reached, or :meth:`Simulator.stop` is called.
"""

from __future__ import annotations

import time as _wallclock
from typing import Iterable, List, Optional, Set

from .errors import DeltaCycleLimitExceeded, ProcessError, SchedulerError
from .event import Event, EventQueue
from .module import Module
from .process import (
    Process,
    WaitAny,
    WaitDelta,
    WaitEvent,
    WaitRequest,
    WaitTime,
    Yieldable,
)
from .signal import Signal


class SimulationStats:
    """Counters describing a completed (or in-progress) simulation run."""

    __slots__ = (
        "delta_cycles",
        "timed_steps",
        "process_activations",
        "events_fired",
        "wallclock_seconds",
        "end_time",
    )

    def __init__(self) -> None:
        self.delta_cycles = 0
        self.timed_steps = 0
        self.process_activations = 0
        self.events_fired = 0
        self.wallclock_seconds = 0.0
        self.end_time = 0

    def as_dict(self) -> dict:
        """Return the counters as a plain dictionary (for reports)."""
        return {name: getattr(self, name) for name in self.__slots__}


class Simulator:
    """Owns the module hierarchy and runs the event loop."""

    #: Safety valve against combinational loops.
    MAX_DELTA_CYCLES_PER_TIMESTEP = 10_000

    def __init__(self, top: Optional[Module] = None) -> None:
        self._tops: List[Module] = []
        self.now: int = 0
        self._elaborated = False
        self._running = False
        self._stop_requested = False
        self._timed_events = EventQueue()
        self._delta_events: List[Event] = []
        self._immediate_runnable: List[Process] = []
        self._pending_signal_updates: List[Signal] = []
        self._processes: List[Process] = []
        self.stats = SimulationStats()
        if top is not None:
            self.add_top(top)

    # -- construction ---------------------------------------------------------
    def add_top(self, module: Module) -> None:
        """Add a top-level module to the simulation."""
        if self._elaborated:
            raise SchedulerError("cannot add modules after elaboration")
        self._tops.append(module)

    @property
    def top_modules(self) -> List[Module]:
        """The registered top-level modules."""
        return list(self._tops)

    def elaborate(self) -> None:
        """Bind every module, signal, event and process to this simulator."""
        if self._elaborated:
            return
        if not self._tops:
            raise SchedulerError("no top-level module registered")
        for top in self._tops:
            for module in top.descendants():
                module.elaborate()
        for top in self._tops:
            for module in top.descendants():
                module.check_bindings()
                for signal in module.signals:
                    signal._bind(self)
                for event in module._events:
                    event._bind(self)
                for port in module._ports:
                    if port.bound:
                        port.signal._bind(self)
                for process in module.processes:
                    process._bind(self)
                    self._processes.append(process)
        # All processes start runnable, as in SystemC.
        self._immediate_runnable.extend(
            p for p in self._processes if not p.is_method or p._static_events == []
        )
        # Method processes with sensitivities wait for their first trigger,
        # except that SystemC runs them once at time zero; mirror that.
        self._immediate_runnable.extend(
            p for p in self._processes if p.is_method and p._static_events
        )
        self._elaborated = True

    # -- hooks used by events/signals ------------------------------------------
    def _schedule_timed_event(self, event: Event, when: int) -> None:
        self._timed_events.push(when, event)

    def _schedule_delta_event(self, event: Event) -> None:
        self._delta_events.append(event)

    def _trigger_event_now(self, event: Event) -> None:
        self.stats.events_fired += 1
        for process in event._collect_triggered():
            if not process.terminated:
                self._immediate_runnable.append(process)

    def _schedule_signal_update(self, signal: Signal) -> None:
        self._pending_signal_updates.append(signal)

    # -- wait-request handling ---------------------------------------------------
    def _apply_wait(self, process: Process, request: Yieldable) -> None:
        if isinstance(request, int):
            request = WaitTime(request)
        elif isinstance(request, Event):
            request = WaitEvent(request)
        if isinstance(request, WaitTime):
            if request.duration == 0:
                self._wait_delta(process)
            else:
                timer = Event(f"{process.name}.timer")
                timer._bind(self)
                process._register_dynamic_wait(timer)
                timer.notify(request.duration)
        elif isinstance(request, WaitDelta):
            self._wait_delta(process)
        elif isinstance(request, WaitEvent):
            request.event._bind(self)
            process._register_dynamic_wait(request.event)
        elif isinstance(request, WaitAny):
            for event in request.events:
                event._bind(self)
                process._register_dynamic_wait(event)
        elif isinstance(request, WaitRequest):
            raise ProcessError(
                f"process {process.name!r} yielded unsupported wait {request!r}"
            )
        else:
            raise ProcessError(
                f"process {process.name!r} yielded non-wait object {request!r}"
            )

    def _wait_delta(self, process: Process) -> None:
        waker = Event(f"{process.name}.delta")
        waker._bind(self)
        process._register_dynamic_wait(waker)
        waker.notify(0)

    # -- main loop -----------------------------------------------------------------
    def run(self, duration: Optional[int] = None) -> SimulationStats:
        """Run the simulation.

        ``duration`` limits how far simulated time may advance (relative to
        the current time); ``None`` runs until no activity remains or
        :meth:`stop` is called.  Returns the accumulated statistics.
        """
        if self._running:
            raise SchedulerError("run() re-entered while already running")
        self.elaborate()
        self._running = True
        self._stop_requested = False
        deadline = None if duration is None else self.now + duration
        start_wall = _wallclock.perf_counter()
        try:
            while not self._stop_requested:
                self._run_delta_cycles()
                if self._stop_requested:
                    break
                next_time = self._timed_events.next_time()
                if next_time is None:
                    break
                if deadline is not None and next_time > deadline:
                    self.now = deadline
                    break
                self.now = next_time
                self.stats.timed_steps += 1
                for event in self._timed_events.pop_until(self.now):
                    if event._is_pending_for(self.now):
                        self._trigger_event_now(event)
                if not self._immediate_runnable and not self._delta_events:
                    # Every popped notification had been cancelled/overridden.
                    continue
        finally:
            self._running = False
            self.stats.wallclock_seconds += _wallclock.perf_counter() - start_wall
            self.stats.end_time = self.now
        if deadline is not None and not self._stop_requested:
            self.now = max(self.now, deadline) if self._timed_events else self.now
        return self.stats

    def _run_delta_cycles(self) -> None:
        deltas_here = 0
        while self._immediate_runnable or self._delta_events:
            # Delta notification phase for events notified with notify(0).
            pending_delta = self._delta_events
            self._delta_events = []
            for event in pending_delta:
                self._trigger_event_now(event)
            runnable = self._unique_runnable()
            if not runnable:
                if not self._immediate_runnable and not self._delta_events:
                    break
                continue
            self.stats.delta_cycles += 1
            deltas_here += 1
            if deltas_here > self.MAX_DELTA_CYCLES_PER_TIMESTEP:
                raise DeltaCycleLimitExceeded(self.MAX_DELTA_CYCLES_PER_TIMESTEP)
            # Evaluation phase.
            for process in runnable:
                if process.terminated:
                    continue
                self.stats.process_activations += 1
                request = process.run()
                if self._stop_requested:
                    return
                if request is None:
                    if not process.is_method:
                        continue  # generator finished
                    # Method processes simply wait for their next trigger.
                    continue
                self._apply_wait(process, request)
            # Update phase.
            updates = self._pending_signal_updates
            self._pending_signal_updates = []
            for signal in updates:
                signal._perform_update()

    def _unique_runnable(self) -> List[Process]:
        runnable = self._immediate_runnable
        self._immediate_runnable = []
        seen: Set[int] = set()
        unique: List[Process] = []
        for process in runnable:
            if id(process) not in seen:
                seen.add(id(process))
                unique.append(process)
        return unique

    # -- control -----------------------------------------------------------------
    def stop(self) -> None:
        """Request the simulation to stop at the end of the current activation."""
        self._stop_requested = True

    def finalize(self) -> None:
        """Invoke every module's ``end_of_simulation`` hook."""
        for top in self._tops:
            for module in top.descendants():
                module.end_of_simulation()

    # -- convenience ---------------------------------------------------------------
    def run_until(self, absolute_time: int) -> SimulationStats:
        """Run until simulated time reaches ``absolute_time``."""
        if absolute_time < self.now:
            raise SchedulerError("cannot run backwards in time")
        return self.run(absolute_time - self.now)

    @property
    def pending_activity(self) -> bool:
        """True if any timed or delta activity remains scheduled."""
        return bool(self._timed_events) or bool(self._delta_events) or bool(
            self._immediate_runnable
        )
