"""Lightweight signal and transaction tracing.

Two tracers are provided:

* :class:`SignalTracer` samples registered signals whenever their value
  changes and can dump the history as a value-change list or a simple VCD
  file (enough for waveform inspection of small runs).
* :class:`TransactionLog` records arbitrary timestamped records (used by the
  interconnect monitor and the wrapper to log memory transactions).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .signal import Signal
from .simulator import Simulator


@dataclass
class TraceEntry:
    """A single recorded value change of one signal."""

    time: int
    name: str
    value: Any


class SignalTracer:
    """Records value changes of a chosen set of signals."""

    def __init__(self, simulator: Simulator) -> None:
        self._sim = simulator
        self._signals: List[Signal] = []
        self._last_values: Dict[int, Any] = {}
        self.entries: List[TraceEntry] = []

    def watch(self, signal: Signal) -> None:
        """Add ``signal`` to the set of traced signals."""
        self._signals.append(signal)
        self._last_values[id(signal)] = signal.read()
        self.entries.append(TraceEntry(self._sim.now, signal.name, signal.read()))

    def sample(self) -> None:
        """Record any signal whose value changed since the last sample."""
        for signal in self._signals:
            value = signal.read()
            if self._last_values[id(signal)] != value:
                self._last_values[id(signal)] = value
                self.entries.append(TraceEntry(self._sim.now, signal.name, value))

    def history(self, name: str) -> List[Tuple[int, Any]]:
        """Return the ``(time, value)`` history of signal ``name``."""
        return [(e.time, e.value) for e in self.entries if e.name == name]

    @staticmethod
    def _vcd_identifier(index: int) -> str:
        """Short VCD identifier for the ``index``-th signal.

        VCD identifiers are strings over the printable ASCII range
        ``!``..``~`` (94 characters).  Single characters cover the first
        94 signals (matching the historical single-char scheme), then
        the code grows a character — a bijective base-94 numbering, so
        identifiers never collide however many signals are watched.
        """
        chars = []
        while True:
            chars.append(chr(33 + index % 94))
            index = index // 94 - 1
            if index < 0:
                break
        return "".join(chars)

    def to_vcd(self) -> str:
        """Render the trace as a minimal VCD document (text)."""
        identifiers = {}
        lines = ["$timescale 1ps $end", "$scope module trace $end"]
        for index, signal in enumerate(self._signals):
            ident = self._vcd_identifier(index)
            identifiers[signal.name] = ident
            lines.append(f"$var wire 64 {ident} {signal.name} $end")
        lines.append("$upscope $end")
        lines.append("$enddefinitions $end")
        current_time: Optional[int] = None
        for entry in sorted(self.entries, key=lambda e: e.time):
            if entry.name not in identifiers:
                continue
            if entry.time != current_time:
                lines.append(f"#{entry.time}")
                current_time = entry.time
            value = entry.value
            if isinstance(value, bool):
                lines.append(f"{int(value)}{identifiers[entry.name]}")
            elif isinstance(value, int):
                lines.append(f"b{value:b} {identifiers[entry.name]}")
            else:
                lines.append(f"s{value} {identifiers[entry.name]}")
        return "\n".join(lines) + "\n"


@dataclass
class TransactionRecord:
    """A timestamped record of one transaction observed somewhere in the SoC."""

    time: int
    source: str
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)


class TransactionLog:
    """An append-only log of :class:`TransactionRecord` entries.

    ``capacity`` bounds the log; ``keep`` picks which side survives the
    bound.  ``"first"`` (the default, the historical behaviour) keeps the
    start of the run and drops new records once full; ``"last"`` is a
    ring buffer keeping the most recent ``capacity`` records — the right
    mode for long runs where the interesting transactions are at the
    end.  Either way :attr:`dropped` counts the records lost.
    """

    def __init__(self, capacity: Optional[int] = None,
                 keep: str = "first") -> None:
        if keep not in ("first", "last"):
            raise ValueError(f"keep must be 'first' or 'last', got {keep!r}")
        if keep == "last" and capacity is None:
            raise ValueError("keep='last' requires a capacity")
        #: list for keep="first", bounded deque for keep="last".
        self.records = deque(maxlen=capacity) if keep == "last" else []
        self.capacity = capacity
        self.keep = keep
        self.dropped = 0

    def record(self, time: int, source: str, kind: str, **fields: Any) -> None:
        """Append a record (evicting per ``keep`` at the capacity limit)."""
        if self.capacity is not None and len(self.records) >= self.capacity:
            self.dropped += 1
            if self.keep == "first":
                return
            # keep == "last": the deque's maxlen evicts the oldest record.
        self.records.append(TransactionRecord(time, source, kind, dict(fields)))

    def filter(self, kind: Optional[str] = None, source: Optional[str] = None
               ) -> List[TransactionRecord]:
        """Return records matching the given kind and/or source."""
        result = self.records
        if kind is not None:
            result = [r for r in result if r.kind == kind]
        if source is not None:
            result = [r for r in result if r.source == source]
        return list(result)

    def kinds(self) -> Sequence[str]:
        """Distinct record kinds present in the log, in first-seen order."""
        seen: List[str] = []
        for record in self.records:
            if record.kind not in seen:
                seen.append(record.kind)
        return seen

    def __len__(self) -> int:
        return len(self.records)
