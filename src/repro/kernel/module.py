"""Hierarchical hardware modules.

A :class:`Module` groups processes, ports, signals and child modules, giving
each a hierarchical name (``top.bus.arbiter``).  Subclasses declare behaviour
by registering processes in ``__init__`` (or in :meth:`elaborate`) with
:meth:`add_process` / :meth:`add_method` and wiring ports to signals.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

from .errors import ElaborationError
from .event import Event
from .port import PortBase
from .process import Process
from .signal import Signal


class Module:
    """Base class for every simulated hardware block."""

    def __init__(self, name: str, parent: Optional["Module"] = None) -> None:
        if not name:
            raise ElaborationError("module name must be non-empty")
        self.name = name
        self.parent = parent
        self._children: Dict[str, "Module"] = {}
        self._processes: List[Process] = []
        self._signals: List[Signal] = []
        self._ports: List[PortBase] = []
        self._events: List[Event] = []
        if parent is not None:
            parent._register_child(self)

    # -- hierarchy ---------------------------------------------------------
    @property
    def full_name(self) -> str:
        """Dot-separated hierarchical name from the root module."""
        if self.parent is None:
            return self.name
        return f"{self.parent.full_name}.{self.name}"

    def _register_child(self, child: "Module") -> None:
        if child.name in self._children:
            raise ElaborationError(
                f"module {self.full_name!r} already has a child named {child.name!r}"
            )
        self._children[child.name] = child

    @property
    def children(self) -> Sequence["Module"]:
        """Direct child modules in registration order."""
        return list(self._children.values())

    def descendants(self) -> Iterable["Module"]:
        """Yield this module and all modules below it, depth-first."""
        yield self
        for child in self._children.values():
            yield from child.descendants()

    def find(self, path: str) -> "Module":
        """Look up a descendant by relative dotted path (``"bus.arbiter"``)."""
        module: Module = self
        for part in path.split("."):
            try:
                module = module._children[part]
            except KeyError:
                raise ElaborationError(
                    f"{self.full_name!r} has no descendant {path!r}"
                ) from None
        return module

    # -- behavioural registration -------------------------------------------
    def add_process(
        self,
        body: Callable,
        name: Optional[str] = None,
        sensitivity: Sequence[Event] = (),
    ) -> Process:
        """Register a generator-function process (SystemC ``SC_THREAD``-like)."""
        process = Process(
            name=f"{self.full_name}.{name or body.__name__}",
            body=body,
            static_events=sensitivity,
        )
        self._processes.append(process)
        return process

    def add_method(
        self,
        body: Callable[[], None],
        sensitivity: Sequence[Event],
        name: Optional[str] = None,
    ) -> Process:
        """Register a method process re-run on every sensitivity trigger."""
        if not sensitivity:
            raise ElaborationError(
                "method processes require at least one sensitivity event"
            )
        process = Process(
            name=f"{self.full_name}.{name or body.__name__}",
            body=body,
            static_events=sensitivity,
        )
        self._processes.append(process)
        return process

    def add_signal(self, signal: Signal) -> Signal:
        """Register a signal owned by this module (for binding/tracing)."""
        self._signals.append(signal)
        return signal

    def add_port(self, port: PortBase) -> PortBase:
        """Register a port owned by this module (checked at elaboration)."""
        self._ports.append(port)
        return port

    def add_event(self, event: Event) -> Event:
        """Register a module-owned event so the simulator binds it."""
        self._events.append(event)
        return event

    # -- elaboration hooks ----------------------------------------------------
    def elaborate(self) -> None:
        """Hook called once before simulation starts; override to finish wiring."""

    def check_bindings(self) -> None:
        """Raise :class:`ElaborationError` if any registered port is unbound."""
        for port in self._ports:
            if not port.bound:
                raise ElaborationError(
                    f"port {port.name!r} of module {self.full_name!r} is unbound"
                )

    def end_of_simulation(self) -> None:
        """Hook called once after the simulation finishes; override for reports."""

    # -- introspection ---------------------------------------------------------
    @property
    def processes(self) -> Sequence[Process]:
        """Processes registered directly on this module."""
        return list(self._processes)

    @property
    def signals(self) -> Sequence[Signal]:
        """Signals registered directly on this module."""
        return list(self._signals)

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}({self.full_name!r})"
