"""Signals with SystemC-style evaluate/update (delta cycle) semantics.

A :class:`Signal` holds a *current* value visible to readers and a *next*
value staged by writers.  Writes only become visible after the update phase
of the current delta cycle, which is what makes clocked register-transfer
descriptions race-free: every process in the same delta sees the same
pre-update values.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generic, List, Optional, TypeVar

from .event import Event

if TYPE_CHECKING:  # pragma: no cover
    from .simulator import Simulator

T = TypeVar("T")

_UNSET = object()


class Signal(Generic[T]):
    """A value holder with deferred (delta-cycle) update semantics."""

    __slots__ = (
        "name",
        "_current",
        "_next",
        "_has_pending",
        "_changed_event",
        "_posedge_event",
        "_negedge_event",
        "_sim",
        "write_count",
    )

    def __init__(self, initial: T, name: str = "signal") -> None:
        self.name = name
        self._current: T = initial
        self._next: T = initial
        self._has_pending = False
        self._changed_event = Event(f"{name}.changed")
        self._posedge_event: Optional[Event] = None
        self._negedge_event: Optional[Event] = None
        self._sim: Optional["Simulator"] = None
        #: Total number of committed value changes (handy for activity stats).
        self.write_count = 0

    # -- wiring -----------------------------------------------------------
    def _bind(self, sim: "Simulator") -> None:
        self._sim = sim
        self._changed_event._bind(sim)
        if self._posedge_event is not None:
            self._posedge_event._bind(sim)
        if self._negedge_event is not None:
            self._negedge_event._bind(sim)

    # -- value access ------------------------------------------------------
    def read(self) -> T:
        """Return the value committed in the last update phase."""
        return self._current

    @property
    def value(self) -> T:
        """Alias of :meth:`read` for attribute-style access."""
        return self._current

    def write(self, value: T) -> None:
        """Stage ``value`` to become visible in the next delta cycle.

        Writing the current value is a no-op (no event is generated), matching
        SystemC's ``sc_signal`` behaviour.
        """
        self._next = value
        if self._sim is None:
            # Elaboration-time write: commit immediately, nobody is running.
            self._current = value
            return
        if value == self._current and not self._has_pending:
            return
        if not self._has_pending:
            self._has_pending = True
            self._sim._schedule_signal_update(self)

    def force(self, value: T) -> None:
        """Set the current value immediately, bypassing the delta cycle.

        Intended for test benches and initialisation only.
        """
        self._current = value
        self._next = value
        self._has_pending = False

    # -- events -------------------------------------------------------------
    @property
    def changed_event(self) -> Event:
        """Event notified whenever the committed value changes."""
        return self._changed_event

    @property
    def posedge_event(self) -> Event:
        """Event notified on a False→True (or 0→nonzero) transition."""
        if self._posedge_event is None:
            self._posedge_event = Event(f"{self.name}.posedge")
            if self._sim is not None:
                self._posedge_event._bind(self._sim)
        return self._posedge_event

    @property
    def negedge_event(self) -> Event:
        """Event notified on a True→False (or nonzero→0) transition."""
        if self._negedge_event is None:
            self._negedge_event = Event(f"{self.name}.negedge")
            if self._sim is not None:
                self._negedge_event._bind(self._sim)
        return self._negedge_event

    # -- used by the simulator ----------------------------------------------
    def _perform_update(self) -> None:
        """Commit the staged value; called by the scheduler's update phase.

        Runs inside the update phase, so the simulator is always bound and
        the edge events can take the direct delta-notification path instead
        of the full :meth:`Event.notify` dispatch.
        """
        self._has_pending = False
        if self._next == self._current:
            return
        old, new = self._current, self._next
        self._current = self._next
        self.write_count += 1
        self._changed_event._notify_delta()
        if self._posedge_event is not None and not old and new:
            self._posedge_event._notify_delta()
        if self._negedge_event is not None and old and not new:
            self._negedge_event._notify_delta()

    def __repr__(self) -> str:  # pragma: no cover
        return f"Signal({self.name!r}={self._current!r})"


class SignalVector:
    """A fixed-size collection of signals addressed by index.

    Convenient for modelling register files or per-master request lines
    without creating dozens of attributes by hand.
    """

    def __init__(self, count: int, initial, name: str = "vec") -> None:
        if count <= 0:
            raise ValueError("SignalVector needs at least one element")
        self.name = name
        self._signals: List[Signal] = [
            Signal(initial, name=f"{name}[{i}]") for i in range(count)
        ]

    def __len__(self) -> int:
        return len(self._signals)

    def __getitem__(self, index: int) -> Signal:
        return self._signals[index]

    def __iter__(self):
        return iter(self._signals)

    def read_all(self) -> list:
        """Return the committed values of all elements as a list."""
        return [sig.read() for sig in self._signals]
