"""Exception hierarchy for the simulation kernel.

Every error raised by :mod:`repro.kernel` derives from :class:`KernelError`,
so callers embedding the kernel in larger flows can catch a single base class.
"""

from __future__ import annotations


class KernelError(Exception):
    """Base class for all simulation-kernel errors."""


class SimulationError(KernelError):
    """A generic error raised while the simulation is running."""


class SchedulerError(KernelError):
    """The scheduler was used incorrectly (e.g. run() re-entered)."""


class DeltaCycleLimitExceeded(SimulationError):
    """Too many delta cycles elapsed without time advancing.

    This almost always indicates a combinational loop between signals or a
    process that keeps notifying an event with zero delay.
    """

    def __init__(self, limit: int) -> None:
        super().__init__(
            f"exceeded {limit} delta cycles at the same simulation time; "
            "likely a combinational feedback loop"
        )
        self.limit = limit


class PortBindingError(KernelError):
    """A port was used before being bound, or bound more than once."""


class ProcessError(SimulationError):
    """A process raised an exception or yielded an invalid wait request."""


class ElaborationError(KernelError):
    """The module hierarchy is inconsistent at elaboration time."""
