"""Ports: typed connection points between modules and signals.

Ports decouple a module's interface from the signals it is eventually bound
to, allowing platforms to be assembled from reusable modules.  An
:class:`InputPort` only reads, an :class:`OutputPort` only writes, and an
:class:`InOutPort` does both.
"""

from __future__ import annotations

from typing import Generic, Optional, TypeVar

from .errors import PortBindingError
from .event import Event
from .signal import Signal

T = TypeVar("T")


class PortBase(Generic[T]):
    """Common machinery for all port flavours."""

    __slots__ = ("name", "_signal")

    def __init__(self, name: str = "port") -> None:
        self.name = name
        self._signal: Optional[Signal[T]] = None

    def bind(self, signal: Signal[T]) -> None:
        """Connect this port to ``signal``.  A port binds exactly once."""
        if self._signal is not None:
            raise PortBindingError(f"port {self.name!r} is already bound")
        self._signal = signal

    @property
    def bound(self) -> bool:
        """True once the port has been connected to a signal."""
        return self._signal is not None

    @property
    def signal(self) -> Signal[T]:
        """The bound signal (raises if the port is unbound)."""
        if self._signal is None:
            raise PortBindingError(f"port {self.name!r} is not bound")
        return self._signal

    def __repr__(self) -> str:  # pragma: no cover
        state = "bound" if self.bound else "unbound"
        return f"{type(self).__name__}({self.name!r}, {state})"


class InputPort(PortBase[T]):
    """A read-only connection point."""

    def read(self) -> T:
        """Read the committed value of the bound signal."""
        return self.signal.read()

    @property
    def changed_event(self) -> Event:
        """Event fired when the bound signal's value changes."""
        return self.signal.changed_event

    @property
    def posedge_event(self) -> Event:
        """Event fired on the bound signal's rising edge."""
        return self.signal.posedge_event

    @property
    def negedge_event(self) -> Event:
        """Event fired on the bound signal's falling edge."""
        return self.signal.negedge_event


class OutputPort(PortBase[T]):
    """A write-only connection point."""

    def write(self, value: T) -> None:
        """Stage ``value`` on the bound signal for the next delta cycle."""
        self.signal.write(value)

    def initialize(self, value: T) -> None:
        """Force an initial value before the simulation starts."""
        self.signal.force(value)


class InOutPort(InputPort[T], OutputPort[T]):
    """A bidirectional connection point (read and write)."""
