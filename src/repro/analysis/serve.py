"""The sweep observatory front door: a queryable dashboard over sweep state.

``python -m repro.analysis.serve`` exposes everything a sweep leaves on
disk — the :class:`~repro.store.store.ResultStore`, the JSONL event log,
``BENCH_kernel.json`` perf snapshots and exported ``repro.obs`` trace
artifacts — through one stdlib-only surface with two heads:

* ``serve`` — an ``http.server`` dashboard: a server-rendered HTML page at
  ``/`` plus JSON endpoints ``/api/results``, ``/api/result/<key>``,
  ``/api/progress``, ``/api/bench`` and ``/api/traces`` (trace files are
  downloadable under ``/traces/<name>``);
* ``query`` — the same payloads, offline, printed as JSON (or an aligned
  table with ``--table`` for results): scripts and CI smoke tests read
  sweep state without binding a port.

No third-party dependencies, no JavaScript frameworks: the HTML page is
plain server-rendered tables and stat tiles (status is always conveyed by
a text label, never color alone) with an optional meta-refresh for live
sweeps.
"""

from __future__ import annotations

import argparse
import html
import json
import os
import sys
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import List, Optional
from urllib.parse import parse_qs, urlparse

from ..api.perf import bench_json_path
from ..soc.stats import format_table
from ..store.store import ResultStore
from ..store.telemetry import read_events, sweep_progress
from .bench_compare import DEFAULT_METRIC, compare_bench_files

#: Committed perf baseline the bench view diffs against by default.
DEFAULT_BENCH_BASELINE = "BENCH_kernel.json"


class DashboardData:
    """Read-only view over one sweep's on-disk artifacts.

    Every accessor tolerates absence: a missing store, event log, bench
    file or traces directory yields an empty payload with a note, never an
    exception — the dashboard must be usable *while* a sweep is still
    materialising its artifacts.
    """

    def __init__(self, *, store_path: Optional[str] = None,
                 events_path: Optional[str] = None,
                 bench_baseline: str = DEFAULT_BENCH_BASELINE,
                 bench_current: Optional[str] = None,
                 traces_dir: Optional[str] = None) -> None:
        self.store_path = store_path
        if events_path is None and store_path is not None:
            sibling = os.path.join(os.path.dirname(os.path.abspath(store_path)),
                                   "sweep.events.jsonl")
            events_path = sibling if os.path.exists(sibling) else None
        self.events_path = events_path
        self.bench_baseline = bench_baseline
        self.bench_current = bench_current or bench_json_path()
        self.traces_dir = traces_dir

    # -- payloads ------------------------------------------------------------
    def results(self, *, scenario: Optional[str] = None,
                status: Optional[str] = None,
                limit: Optional[int] = None) -> dict:
        """Store summary rows, filterable by scenario substring and status
        (``passed`` / ``failed``)."""
        if not self.store_path or not os.path.exists(self.store_path):
            return {"store": self.store_path, "count": 0, "rows": [],
                    "note": "no result store found"}
        with ResultStore(self.store_path) as store:
            rows = store.rows()
        if scenario:
            rows = [row for row in rows if scenario in row["scenario"]]
        if status == "passed":
            rows = [row for row in rows if row["passed"]]
        elif status == "failed":
            rows = [row for row in rows if not row["passed"]]
        total = len(rows)
        if limit is not None:
            rows = rows[:limit]
        return {"store": self.store_path, "count": total, "rows": rows}

    def result(self, key: str) -> dict:
        """Full detail of one stored result, addressed by content key."""
        if not self.store_path or not os.path.exists(self.store_path):
            return {"key": key, "found": False, "note": "no result store found"}
        with ResultStore(self.store_path) as store:
            result = store.get(key)
        if result is None:
            return {"key": key, "found": False}
        return {"key": key, "found": True, "result": result.as_dict()}

    def progress(self) -> dict:
        """Per-sweep progress folded from the JSONL event log."""
        if not self.events_path or not os.path.exists(self.events_path):
            return {"events": self.events_path, "total": 0,
                    "note": "no event log found"}
        snapshot = sweep_progress(read_events(self.events_path))
        snapshot["events"] = self.events_path
        return snapshot

    def bench(self, metric: str = DEFAULT_METRIC) -> dict:
        """``bench_compare`` deltas: committed baseline vs current file."""
        payload = {"baseline": self.bench_baseline,
                   "current": self.bench_current, "metric": metric}
        if not os.path.exists(self.bench_baseline):
            payload.update(rows=[], note="no baseline bench file")
            return payload
        rows = compare_bench_files(self.bench_baseline, self.bench_current,
                                   metric=metric)
        payload["rows"] = rows
        payload["regressed"] = [row["key"] for row in rows
                                if row["delta"] is not None
                                and row["delta"] < -0.1]
        return payload

    def traces(self) -> dict:
        """Exported ``repro.obs`` trace artifacts available for download."""
        if not self.traces_dir or not os.path.isdir(self.traces_dir):
            return {"dir": self.traces_dir, "files": [],
                    "note": "no traces directory"}
        files = []
        for name in sorted(os.listdir(self.traces_dir)):
            path = os.path.join(self.traces_dir, name)
            if os.path.isfile(path) and name.endswith((".json", ".csv")):
                files.append({"name": name, "bytes": os.path.getsize(path),
                              "href": f"/traces/{name}"})
        return {"dir": self.traces_dir, "files": files}

    def trace_path(self, name: str) -> Optional[str]:
        """Filesystem path of one *listed* trace artifact (path-safe).

        Only names the :meth:`traces` listing would show are served: a
        bare basename with a ``.json``/``.csv`` extension.  Anything else
        sitting in the traces directory is not downloadable.
        """
        if not self.traces_dir or os.path.basename(name) != name:
            return None
        if not name.endswith((".json", ".csv")):
            return None
        path = os.path.join(self.traces_dir, name)
        return path if os.path.isfile(path) else None

    # -- HTML ----------------------------------------------------------------
    def index_html(self, refresh_s: Optional[int] = None) -> str:
        """The server-rendered dashboard page."""
        results = self.results(limit=200)
        progress = self.progress()
        bench = self.bench()
        traces = self.traces()
        counts = progress.get("counts", {})
        tiles = [
            ("stored results", str(results["count"])),
            ("sweep done", f"{progress.get('done', 0)}"
                           f"/{progress.get('total', 0)}"),
            ("cache hits", str(counts.get("cache_hit", 0))),
            ("failures", str(counts.get("failed", 0)
                             + counts.get("timeout", 0))),
        ]
        tiles_html = "".join(
            f'<div class="tile"><div class="tile-value">{html.escape(value)}'
            f'</div><div class="tile-label">{html.escape(label)}</div></div>'
            for label, value in tiles)
        sections = [
            _html_section("Results", _results_table_html(results)),
            _html_section("Sweep progress", _progress_html(progress)),
            _html_section(
                f"Bench deltas ({html.escape(bench['metric'])})",
                _bench_table_html(bench)),
            _html_section("Trace artifacts", _traces_html(traces)),
        ]
        refresh = (f'<meta http-equiv="refresh" content="{int(refresh_s)}">'
                   if refresh_s else "")
        return f"""<!doctype html>
<html lang="en"><head><meta charset="utf-8">{refresh}
<title>repro sweep observatory</title>
<style>
  :root {{ color-scheme: light dark; }}
  body {{ font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto;
         max-width: 72rem; padding: 0 1rem; }}
  h1 {{ font-size: 1.3rem; }} h2 {{ font-size: 1.05rem; margin-top: 2rem; }}
  .tiles {{ display: flex; gap: 1rem; flex-wrap: wrap; }}
  .tile {{ border: 1px solid color-mix(in srgb, currentColor 25%, transparent);
          border-radius: 8px; padding: .75rem 1.25rem; min-width: 8rem; }}
  .tile-value {{ font-size: 1.5rem; font-weight: 600; }}
  .tile-label {{ opacity: .7; }}
  table {{ border-collapse: collapse; width: 100%; margin: .5rem 0; }}
  th, td {{ text-align: left; padding: .3rem .6rem;
           border-bottom: 1px solid
           color-mix(in srgb, currentColor 18%, transparent); }}
  th {{ opacity: .7; font-weight: 600; }}
  td.num, th.num {{ text-align: right; font-variant-numeric: tabular-nums; }}
  .muted {{ opacity: .6; }}
  code {{ font-size: .85em; }}
</style></head><body>
<h1>repro sweep observatory</h1>
<p class="muted">store: <code>{html.escape(str(self.store_path))}</code> ·
events: <code>{html.escape(str(self.events_path))}</code> ·
endpoints: <code>/api/results</code> <code>/api/progress</code>
<code>/api/bench</code> <code>/api/traces</code></p>
<div class="tiles">{tiles_html}</div>
{''.join(sections)}
</body></html>
"""


def _html_section(title: str, body: str) -> str:
    return f"<h2>{html.escape(title)}</h2>\n{body}\n"


def _html_table(columns: List[tuple], rows: List[dict],
                empty: str = "(none)") -> str:
    """Render ``rows`` as an HTML table; ``columns`` are
    ``(key, header, numeric)`` triples."""
    if not rows:
        return f'<p class="muted">{html.escape(empty)}</p>'
    head = "".join(
        f'<th class="num">{html.escape(header)}</th>' if numeric
        else f"<th>{html.escape(header)}</th>"
        for _, header, numeric in columns)
    body_rows = []
    for row in rows:
        cells = []
        for key, _, numeric in columns:
            value = row.get(key, "")
            text = "" if value is None else str(value)
            cells.append(f'<td class="num">{html.escape(text)}</td>' if numeric
                         else f"<td>{html.escape(text)}</td>")
        body_rows.append(f"<tr>{''.join(cells)}</tr>")
    return (f"<table><thead><tr>{head}</tr></thead>"
            f"<tbody>{''.join(body_rows)}</tbody></table>")


def _results_table_html(results: dict) -> str:
    rows = []
    for row in results["rows"]:
        rows.append({
            "scenario": row["scenario"],
            "workload": row.get("workload", ""),
            "status": "passed" if row["passed"] else "FAILED",
            "host_s": f"{row['host_seconds']:.3f}",
            "cycles": row.get("simulated_cycles"),
            "hits": row.get("hits", 0),
            "key": row["key"][:12],
        })
    return _html_table(
        [("scenario", "scenario", False), ("workload", "workload", False),
         ("status", "status", False), ("host_s", "host s", True),
         ("cycles", "simulated cycles", True), ("hits", "cache hits", True),
         ("key", "key", False)],
        rows, empty="no stored results")


def _progress_html(progress: dict) -> str:
    if not progress.get("total"):
        return '<p class="muted">no event log / empty sweep</p>'
    counts = progress.get("counts", {})
    parts = [f"{progress.get('done', 0)}/{progress.get('total', 0)} done"]
    parts.extend(f"{value} {kind}" for kind, value in sorted(counts.items())
                 if value)
    blocks = [f"<p>{html.escape(' · '.join(parts))}</p>"]
    if progress.get("running"):
        blocks.append(_html_table(
            [("scenario", "running scenario", False),
             ("last_signal_age_s", "last signal age (s)", True)],
            progress["running"]))
    if progress.get("stragglers"):
        blocks.append(_html_table(
            [("scenario", "slowest scenarios", False),
             ("host_seconds", "host s", True)],
            [{"scenario": row["scenario"],
              "host_seconds": f"{row['host_seconds']:.3f}"}
             for row in progress["stragglers"]]))
    if progress.get("failures"):
        blocks.append(_html_table(
            [("kind", "failure", False), ("scenario", "scenario", False),
             ("detail", "detail", False)], progress["failures"]))
    return "\n".join(blocks)


def _bench_table_html(bench: dict) -> str:
    rows = [{
        "key": row["key"], "status": row["status"],
        "old": row["old"], "new": row["new"],
        "delta": ("" if row["delta"] is None
                  else f"{row['delta'] * 100:+.1f}%"),
    } for row in bench.get("rows", [])]
    return _html_table(
        [("key", "bench/scenario", False), ("status", "status", False),
         ("old", "baseline", True), ("new", "current", True),
         ("delta", "delta", True)],
        rows, empty=bench.get("note", "no bench data"))


def _traces_html(traces: dict) -> str:
    rows = traces.get("files", [])
    if not rows:
        return (f'<p class="muted">'
                f'{html.escape(traces.get("note", "no trace artifacts"))}'
                f'</p>')
    linked = [{"name": f"{row['name']}", "bytes": row["bytes"],
               "href": row["href"]} for row in rows]
    body = "".join(
        f'<tr><td><a href="{html.escape(row["href"])}">'
        f'{html.escape(row["name"])}</a></td>'
        f'<td class="num">{row["bytes"]}</td></tr>'
        for row in linked)
    return (f"<table><thead><tr><th>trace</th>"
            f'<th class="num">bytes</th></tr></thead>'
            f"<tbody>{body}</tbody></table>")


# -- HTTP server ------------------------------------------------------------
def make_handler(data: DashboardData, refresh_s: Optional[int] = None):
    """Build the request-handler class bound to one :class:`DashboardData`."""

    class Handler(BaseHTTPRequestHandler):
        server_version = "repro-observatory/1.0"

        def do_GET(self) -> None:  # noqa: N802 - http.server API
            parsed = urlparse(self.path)
            query = {key: values[-1]
                     for key, values in parse_qs(parsed.query).items()}
            route = parsed.path
            try:
                if route in ("/", "/index.html"):
                    page_refresh = int(query.get("refresh", refresh_s or 0))
                    self._send_html(data.index_html(page_refresh or None))
                elif route == "/api/results":
                    limit = query.get("limit")
                    self._send_json(data.results(
                        scenario=query.get("scenario"),
                        status=query.get("status"),
                        limit=int(limit) if limit else None))
                elif route.startswith("/api/result/"):
                    self._send_json(data.result(route.rsplit("/", 1)[-1]))
                elif route == "/api/progress":
                    self._send_json(data.progress())
                elif route == "/api/bench":
                    self._send_json(data.bench(
                        metric=query.get("metric", DEFAULT_METRIC)))
                elif route == "/api/traces":
                    self._send_json(data.traces())
                elif route.startswith("/traces/"):
                    self._send_file(data.trace_path(route.rsplit("/", 1)[-1]))
                else:
                    self._send_json({"error": f"unknown route {route}"},
                                    status=404)
            except Exception as exc:  # surface, don't kill the server
                self._send_json({"error": f"{type(exc).__name__}: {exc}"},
                                status=500)

        # -- responses --------------------------------------------------
        def _send_json(self, payload: dict, status: int = 200) -> None:
            body = json.dumps(payload, indent=1, default=str).encode("utf-8")
            self._send(body, "application/json", status)

        def _send_html(self, page: str) -> None:
            self._send(page.encode("utf-8"), "text/html; charset=utf-8", 200)

        def _send_file(self, path: Optional[str]) -> None:
            if path is None:
                self._send_json({"error": "no such trace"}, status=404)
                return
            # Stream in chunks: trace exports can be large and one request
            # must not hold the whole artifact in memory.
            with open(path, "rb") as handle:
                size = os.fstat(handle.fileno()).st_size
                self.send_response(200)
                self.send_header("Content-Type", "application/octet-stream")
                self.send_header("Content-Length", str(size))
                self.end_headers()
                while True:
                    chunk = handle.read(64 * 1024)
                    if not chunk:
                        break
                    self.wfile.write(chunk)

        def _send(self, body: bytes, content_type: str, status: int) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, fmt: str, *args) -> None:
            # Quiet by default; the progress line owns the terminal.
            pass

    return Handler


def serve(data: DashboardData, host: str = "127.0.0.1", port: int = 8349,
          refresh_s: Optional[int] = None) -> ThreadingHTTPServer:
    """Bind the dashboard server (``port=0`` picks a free port); the caller
    drives ``serve_forever`` — tests use a background thread instead."""
    return ThreadingHTTPServer((host, port), make_handler(data, refresh_s))


# -- CLI --------------------------------------------------------------------
def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.serve",
        description="Queryable dashboard over sweep stores, event logs, "
                    "bench deltas and trace artifacts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--store", default=None,
                       help="path to the sweep's ResultStore SQLite file")
        p.add_argument("--events", default=None,
                       help="path to the sweep's JSONL event log (default: "
                            "sweep.events.jsonl next to the store)")
        p.add_argument("--bench-baseline", default=DEFAULT_BENCH_BASELINE,
                       help="baseline BENCH_kernel.json "
                            f"(default: {DEFAULT_BENCH_BASELINE})")
        p.add_argument("--bench-current", default=None,
                       help="candidate bench file (default: "
                            "$REPRO_BENCH_JSON or BENCH_kernel.json)")
        p.add_argument("--traces-dir", default=None,
                       help="directory of exported repro.obs trace artifacts")

    serve_parser = sub.add_parser("serve", help="run the HTTP dashboard")
    add_common(serve_parser)
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8349)
    serve_parser.add_argument("--refresh", type=int, default=None,
                              metavar="SECONDS",
                              help="auto-refresh interval of the HTML page")

    query_parser = sub.add_parser(
        "query", help="print one dashboard payload offline (no server)")
    add_common(query_parser)
    query_parser.add_argument(
        "what", choices=["results", "progress", "bench", "traces", "result"],
        help="which payload to print")
    query_parser.add_argument("--key", default=None,
                              help="content key (for `query result`)")
    query_parser.add_argument("--scenario", default=None,
                              help="scenario-name substring filter")
    query_parser.add_argument("--status", choices=["passed", "failed"],
                              default=None)
    query_parser.add_argument("--limit", type=int, default=None)
    query_parser.add_argument("--metric", default=DEFAULT_METRIC)
    query_parser.add_argument("--table", action="store_true",
                              help="aligned text table instead of JSON "
                                   "(results/traces only)")
    return parser


def _query(data: DashboardData, args: argparse.Namespace) -> int:
    if args.what == "results":
        payload = data.results(scenario=args.scenario, status=args.status,
                               limit=args.limit)
        if args.table:
            rows = [{
                "scenario": row["scenario"],
                "workload": row.get("workload", ""),
                "status": "passed" if row["passed"] else "FAILED",
                "host_s": round(row["host_seconds"], 3),
                "hits": row.get("hits", 0),
                "key": row["key"][:12],
            } for row in payload["rows"]]
            print(format_table(rows) if rows else "(no stored results)")
            return 0
    elif args.what == "progress":
        payload = data.progress()
    elif args.what == "bench":
        payload = data.bench(metric=args.metric)
    elif args.what == "traces":
        payload = data.traces()
        if args.table:
            print(format_table(payload["files"]) if payload["files"]
                  else "(no trace artifacts)")
            return 0
    else:
        if not args.key:
            print("query result requires --key", file=sys.stderr)
            return 2
        payload = data.result(args.key)
    print(json.dumps(payload, indent=1, default=str))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point for both the server and the offline query head."""
    args = _build_parser().parse_args(argv)
    data = DashboardData(
        store_path=args.store, events_path=args.events,
        bench_baseline=args.bench_baseline, bench_current=args.bench_current,
        traces_dir=args.traces_dir,
    )
    if args.command == "query":
        try:
            return _query(data, args)
        except BrokenPipeError:  # e.g. `... query results | head`
            try:
                sys.stdout.close()
            except OSError:
                pass
            return 0
    server = serve(data, host=args.host, port=args.port,
                   refresh_s=args.refresh)
    host, port = server.server_address[:2]
    print(f"sweep observatory on http://{host}:{port}/ "
          f"(store: {args.store or '-'}, events: {data.events_path or '-'})")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main() tests
    sys.exit(main())
