"""Metrics used by the evaluation: speedups, degradations, summaries.

Small, dependency-free helpers shared by the benches, the examples and
EXPERIMENTS.md so that every number reported by the reproduction is computed
the same way.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Sequence


def speedup(baseline_seconds: float, optimised_seconds: float) -> float:
    """How many times faster the optimised run is (>1 means faster)."""
    if optimised_seconds <= 0:
        return float("inf")
    return baseline_seconds / optimised_seconds


def degradation(reference_speed: float, other_speed: float) -> float:
    """Relative speed loss of ``other_speed`` vs ``reference_speed`` (0.2 = 20%)."""
    if reference_speed <= 0:
        return 0.0
    return 1.0 - other_speed / reference_speed


def overhead(reference: float, with_feature: float) -> float:
    """Relative cost increase (0.2 = the feature costs 20% more)."""
    if reference <= 0:
        return 0.0
    return with_feature / reference - 1.0


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (0.0 for an empty sequence)."""
    values = [v for v in values]
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean of positive values (0.0 for an empty sequence)."""
    values = [v for v in values]
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("harmonic mean requires positive values")
    return len(values) / sum(1.0 / v for v in values)


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Min/max/mean/median summary of a numeric sequence."""
    if not values:
        return {"count": 0, "min": 0.0, "max": 0.0, "mean": 0.0, "median": 0.0}
    ordered = sorted(float(v) for v in values)
    count = len(ordered)
    middle = count // 2
    median = (ordered[middle] if count % 2
              else 0.5 * (ordered[middle - 1] + ordered[middle]))
    return {
        "count": count,
        "min": ordered[0],
        "max": ordered[-1],
        "mean": sum(ordered) / count,
        "median": median,
    }


def cycles_per_operation(total_cycles: int, operation_counts: Dict[str, int]
                         ) -> Dict[str, float]:
    """Average cycles per operation kind given a total and per-kind counts."""
    total_operations = sum(operation_counts.values())
    if total_operations == 0:
        return {}
    average = total_cycles / total_operations
    return {kind: average for kind in operation_counts}


def percent(fraction: float, digits: int = 1) -> str:
    """Format a fraction as a percentage string (0.196 → '19.6%')."""
    return f"{fraction * 100:.{digits}f}%"
