"""Analysis helpers: evaluation metrics and parameter-sweep drivers."""

from .metrics import (
    cycles_per_operation,
    degradation,
    geometric_mean,
    harmonic_mean,
    overhead,
    percent,
    speedup,
    summarize,
)
from .sweep import best_point, expand_grid, run_sweep, sweep_table

__all__ = [
    "best_point",
    "cycles_per_operation",
    "degradation",
    "expand_grid",
    "geometric_mean",
    "harmonic_mean",
    "overhead",
    "percent",
    "run_sweep",
    "speedup",
    "summarize",
    "sweep_table",
]
