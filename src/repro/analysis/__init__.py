"""Analysis helpers: evaluation metrics, perf-file diffs and sweeps."""

from .bench_compare import (
    compare_bench_entries,
    compare_bench_files,
    format_comparison,
    regressions,
)
from .metrics import (
    cycles_per_operation,
    degradation,
    geometric_mean,
    harmonic_mean,
    overhead,
    percent,
    speedup,
    summarize,
)
from .sweep import best_point, expand_grid, run_sweep, sweep_table

__all__ = [
    "best_point",
    "compare_bench_entries",
    "compare_bench_files",
    "cycles_per_operation",
    "degradation",
    "expand_grid",
    "format_comparison",
    "regressions",
    "geometric_mean",
    "harmonic_mean",
    "overhead",
    "percent",
    "run_sweep",
    "speedup",
    "summarize",
    "sweep_table",
]
