"""Analysis helpers: evaluation metrics, perf-file diffs and sweeps.

Trace analysis (Perfetto export, text timelines, longest-span digests)
lives in :mod:`repro.obs`; the conversion entry points are re-exported
here so analysis scripts have one import surface.  The sweep observatory
(:mod:`repro.analysis.serve`) exposes a persisted
:class:`~repro.store.ResultStore` over HTTP and an offline ``query``
CLI — run ``python -m repro.analysis.serve --help``.
"""

from .bench_compare import (
    compare_bench_entries,
    compare_bench_files,
    format_comparison,
    regressions,
)
from .metrics import (
    cycles_per_operation,
    degradation,
    geometric_mean,
    harmonic_mean,
    overhead,
    percent,
    speedup,
    summarize,
)
from ..obs.export import chrome_trace, write_trace
from ..obs.timeline import longest_spans, render_timeline
from .sweep import best_point, expand_grid, run_sweep, sweep_table


def __getattr__(name):
    # Lazy: ``python -m repro.analysis.serve`` must not find the module
    # pre-imported (runpy would warn and execute a second copy).
    if name == "DashboardData":
        from .serve import DashboardData
        return DashboardData
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "DashboardData",
    "best_point",
    "chrome_trace",
    "compare_bench_entries",
    "compare_bench_files",
    "cycles_per_operation",
    "degradation",
    "expand_grid",
    "format_comparison",
    "regressions",
    "geometric_mean",
    "harmonic_mean",
    "longest_spans",
    "overhead",
    "percent",
    "render_timeline",
    "run_sweep",
    "speedup",
    "summarize",
    "sweep_table",
    "write_trace",
]
