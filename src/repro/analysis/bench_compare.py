"""Diff two ``BENCH_kernel.json`` perf files.

The perf recorder (:mod:`repro.api.perf`) accumulates one normalized
record per ``bench/scenario`` key, but comparing two snapshots — the
checked-in baseline against a fresh run, or two CI artifacts — was a
by-hand affair.  :func:`compare_bench_files` pairs the entries of two
files and computes per-key deltas; :func:`format_comparison` renders them
as the usual aligned table; ``python -m repro.analysis.bench_compare``
wraps both as a command line tool::

    $ python -m repro.analysis.bench_compare old.json new.json
    key                      old c/s    new c/s    delta    wallclock
    ...

Rates use ``cycles_per_second`` by default (the paper's simulation-speed
metric); any numeric field of the records can be compared instead.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from ..api.perf import load_bench_entries
from ..soc.stats import format_table

#: Default metric compared between the two files.
DEFAULT_METRIC = "cycles_per_second"


def compare_bench_entries(old: Dict[str, dict], new: Dict[str, dict],
                          metric: str = DEFAULT_METRIC) -> List[dict]:
    """Pair two entry maps by key and compute per-key rows.

    Every row carries the old/new ``metric`` values, the relative delta
    (positive = ``new`` is faster for rate metrics), the old/new
    wall-clock and a status: ``both``, ``added`` (only in ``new``) or
    ``removed`` (only in ``old``).  Rows are sorted by key.
    """
    rows: List[dict] = []
    for key in sorted(set(old) | set(new)):
        old_entry, new_entry = old.get(key), new.get(key)
        row: dict = {"key": key}
        if old_entry is None:
            row["status"] = "added"
        elif new_entry is None:
            row["status"] = "removed"
        else:
            row["status"] = "both"
        row["old"] = _metric_of(old_entry, metric)
        row["new"] = _metric_of(new_entry, metric)
        row["delta"] = _relative_delta(row["old"], row["new"])
        row["old_wallclock"] = _metric_of(old_entry, "wallclock_seconds")
        row["new_wallclock"] = _metric_of(new_entry, "wallclock_seconds")
        rows.append(row)
    return rows


def compare_bench_files(old_path: str, new_path: str,
                        metric: str = DEFAULT_METRIC) -> List[dict]:
    """Load two ``BENCH_kernel.json`` files and diff their entries."""
    return compare_bench_entries(load_bench_entries(old_path),
                                 load_bench_entries(new_path), metric=metric)


def format_comparison(rows: List[dict], metric: str = DEFAULT_METRIC) -> str:
    """Render comparison rows as an aligned text table."""
    if not rows:
        return "(no bench entries on either side)"
    display = []
    for row in rows:
        display.append({
            "bench/scenario": row["key"],
            f"old {metric}": _fmt_value(row["old"]),
            f"new {metric}": _fmt_value(row["new"]),
            "delta": _fmt_delta(row["delta"], row["status"]),
            "old s": _fmt_value(row["old_wallclock"]),
            "new s": _fmt_value(row["new_wallclock"]),
        })
    return format_table(display)


def regressions(rows: List[dict], threshold: float) -> List[dict]:
    """Rows of both files whose metric dropped by more than ``threshold``
    (a fraction: 0.1 = 10% slower)."""
    return [row for row in rows
            if row["status"] == "both" and row["delta"] is not None
            and row["delta"] < -threshold]


def _metric_of(entry: Optional[dict], metric: str) -> Optional[float]:
    if entry is None:
        return None
    value = entry.get(metric)
    return value if isinstance(value, (int, float)) else None


def _relative_delta(old: Optional[float], new: Optional[float]
                    ) -> Optional[float]:
    if old is None or new is None or old == 0:
        return None
    return (new - old) / old


def _fmt_value(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if isinstance(value, float) and value < 100:
        return f"{value:.4g}"
    return f"{value:,.0f}"


def _fmt_delta(delta: Optional[float], status: str) -> str:
    if delta is None:
        return status if status != "both" else "-"
    return f"{delta * 100:+.1f}%"


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a non-zero exit code on regressions when
    ``--fail-threshold`` is given."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.bench_compare",
        description="Diff two BENCH_kernel.json perf snapshots.",
    )
    parser.add_argument("old", help="baseline BENCH_kernel.json")
    parser.add_argument("new", help="candidate BENCH_kernel.json")
    parser.add_argument("--metric", default=DEFAULT_METRIC,
                        help=f"record field to compare "
                             f"(default: {DEFAULT_METRIC})")
    parser.add_argument("--fail-threshold", type=float, default=None,
                        metavar="FRACTION",
                        help="exit 1 when any shared key's metric dropped "
                             "by more than this fraction (e.g. 0.2)")
    args = parser.parse_args(argv)
    rows = compare_bench_files(args.old, args.new, metric=args.metric)
    print(format_comparison(rows, metric=args.metric))
    if args.fail_threshold is not None:
        slower = regressions(rows, args.fail_threshold)
        if slower:
            keys = ", ".join(row["key"] for row in slower)
            print(f"\nregressions past {args.fail_threshold * 100:.0f}%: "
                  f"{keys}")
            return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main() tests
    sys.exit(main())
