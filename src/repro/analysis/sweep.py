"""Parameter sweep driver for platform experiments (back-compat shim).

This module predates :mod:`repro.api`; its sweep loop now delegates to the
declarative scenario/runner layer.  New code should build scenarios with
:func:`repro.api.scenario_grid` and run them with
:class:`repro.api.ExperimentRunner` (which adds process sharding, per-run
timeouts and structured JSON/CSV output); :func:`run_sweep` remains for
existing callers and emits a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..api.runner import run_scenario
from ..api.scenario import Scenario, expand_grid
from ..soc.config import PlatformConfig
from ..soc.stats import SimulationReport, SweepPoint, format_table

__all__ = ["TaskListFactory", "best_point", "expand_grid", "run_sweep",
           "sweep_table"]

#: A factory producing the task list for one configuration point.
TaskListFactory = Callable[[PlatformConfig], Sequence]


def run_sweep(base_config: PlatformConfig, grid: Dict[str, Sequence],
              task_factory: TaskListFactory,
              max_time: Optional[int] = None) -> List[SweepPoint]:
    """Deprecated shim: run the platform for every grid combination.

    Every grid key must be a field of :class:`PlatformConfig`; the base
    configuration supplies all other fields.  Delegates to
    :class:`repro.api.ExperimentRunner`; use that (with
    :func:`repro.api.scenario_grid`) in new code.
    """
    warnings.warn(
        "analysis.sweep.run_sweep() is deprecated; use "
        "repro.api.scenario_grid() with repro.api.ExperimentRunner",
        DeprecationWarning, stacklevel=2,
    )
    scenarios: List[Scenario] = []
    for overrides in expand_grid(grid):
        config = dataclasses.replace(base_config, **overrides)
        label = ",".join(f"{name}={value}"
                         for name, value in sorted(overrides.items()))
        scenarios.append(Scenario(
            name=label or "base",
            config=config,
            workload=lambda cfg, **_params: list(task_factory(cfg)),
            max_time=max_time,
            expect_finished=False,
            overrides=dict(overrides),
        ))
    points: List[SweepPoint] = []
    for index, scenario in enumerate(scenarios):
        # Fail-fast with the original exception type, exactly as the old
        # hand-written sweep loop did.
        result = run_scenario(scenario, index=index, capture_errors=False)
        points.append(SweepPoint(label=scenario.name,
                                 parameters=dict(scenario.overrides),
                                 report=result.report))
    return points


def sweep_table(points: Iterable[SweepPoint],
                columns: Optional[List[str]] = None) -> str:
    """Render a list of sweep points as an aligned text table."""
    return format_table([point.row() for point in points], columns)


def best_point(points: Sequence[SweepPoint],
               key: Callable[[SimulationReport], float] = lambda r: r.simulation_speed
               ) -> SweepPoint:
    """The sweep point maximising ``key`` (default: simulation speed)."""
    if not points:
        raise ValueError("no sweep points given")
    return max(points, key=lambda point: key(point.report))
