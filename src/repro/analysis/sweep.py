"""Parameter sweep driver for platform experiments.

Used by the scaling bench and by users exploring the design space: given a
base :class:`~repro.soc.config.PlatformConfig`, a grid of parameter
overrides and a task-list factory, run every point and collect the reports
in a form that renders directly as the paper-style tables.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..soc.config import PlatformConfig
from ..soc.platform import Platform
from ..soc.stats import SimulationReport, SweepPoint, format_table

#: A factory producing the task list for one configuration point.
TaskListFactory = Callable[[PlatformConfig], Sequence]


def expand_grid(grid: Dict[str, Sequence]) -> List[Dict[str, object]]:
    """Cartesian product of a parameter grid, in deterministic order."""
    if not grid:
        return [{}]
    names = sorted(grid)
    combinations = itertools.product(*(grid[name] for name in names))
    return [dict(zip(names, values)) for values in combinations]


def run_sweep(base_config: PlatformConfig, grid: Dict[str, Sequence],
              task_factory: TaskListFactory,
              max_time: Optional[int] = None) -> List[SweepPoint]:
    """Run the platform for every parameter combination in ``grid``.

    Every grid key must be a field of :class:`PlatformConfig`; the base
    configuration supplies all other fields.
    """
    points: List[SweepPoint] = []
    for overrides in expand_grid(grid):
        config = dataclasses.replace(base_config, **overrides)
        platform = Platform(config)
        platform.add_tasks(list(task_factory(config)))
        report = platform.run(max_time=max_time)
        label = ",".join(f"{name}={value}" for name, value in sorted(overrides.items()))
        points.append(SweepPoint(label=label or "base", parameters=dict(overrides),
                                 report=report))
    return points


def sweep_table(points: Iterable[SweepPoint],
                columns: Optional[List[str]] = None) -> str:
    """Render a list of sweep points as an aligned text table."""
    return format_table([point.row() for point in points], columns)


def best_point(points: Sequence[SweepPoint],
               key: Callable[[SimulationReport], float] = lambda r: r.simulation_speed
               ) -> SweepPoint:
    """The sweep point maximising ``key`` (default: simulation speed)."""
    if not points:
        raise ValueError("no sweep points given")
    return max(points, key=lambda point: key(point.report))
