"""repro — fast dynamic memory integration for MPSoC co-simulation.

A Python reproduction of Villa, Schaumont, Verbauwhede, Monchiero and
Palermo, *"Fast Dynamic Memory Integration in Co-Simulation Frameworks for
Multiprocessor System on-Chip"*, DATE 2005.

The package is organised as the paper's Figure 1:

* :mod:`repro.kernel` — SystemC-like discrete-event simulation kernel;
* :mod:`repro.isa` / :mod:`repro.iss` — ARM-like instruction set and ISS;
* :mod:`repro.interconnect` — shared bus / crossbar with arbitration;
* :mod:`repro.memory` — host memory layer, static memories, heap, and the
  fully-modelled dynamic memory baseline;
* :mod:`repro.wrapper` — the paper's contribution: the host-backed dynamic
  shared memory wrapper (pointer table, translator, cycle-true FSM, delays)
  and the C-formalism software API;
* :mod:`repro.sw` — the software layer: task programs, workloads and the
  GSM 06.10 codec used by the evaluation;
* :mod:`repro.soc` — platform composition and simulation-speed reporting;
* :mod:`repro.analysis` — helpers for the evaluation sweeps and tables.

Quick start::

    from repro.memory import DataType
    from repro.soc import Platform, PlatformConfig

    def program(ctx):
        smem = ctx.smem(0)
        vptr = yield from smem.alloc(16, DataType.UINT32)
        yield from smem.write_array(vptr, list(range(16)))
        data = yield from smem.read_array(vptr, 16)
        yield from smem.free(vptr)
        return sum(data)

    platform = Platform(PlatformConfig(num_pes=1, num_memories=1))
    platform.add_task(program)
    report = platform.run()
    print(report.summary())
"""

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "interconnect",
    "isa",
    "iss",
    "kernel",
    "memory",
    "soc",
    "sw",
    "wrapper",
]
