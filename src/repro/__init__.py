"""repro — fast dynamic memory integration for MPSoC co-simulation.

A Python reproduction of Villa, Schaumont, Verbauwhede, Monchiero and
Palermo, *"Fast Dynamic Memory Integration in Co-Simulation Frameworks for
Multiprocessor System on-Chip"*, DATE 2005.

The package is organised as the paper's Figure 1:

* :mod:`repro.kernel` — SystemC-like discrete-event simulation kernel;
* :mod:`repro.isa` / :mod:`repro.iss` — ARM-like instruction set and ISS;
* :mod:`repro.fabric` — the unified interconnect fabric layer: master
  ports, address map, snoopers, uniform statistics and the pluggable
  arbitration policies every topology shares;
* :mod:`repro.interconnect` — the shared-bus / crossbar topologies;
* :mod:`repro.noc` — packet-switched 2D-mesh NoC interconnect (wormhole
  routers, XY routing, link-level statistics);
* :mod:`repro.memory` — host memory layer, static memories, heap, and the
  fully-modelled dynamic memory baseline;
* :mod:`repro.dev` — bus-attached peripherals: the interrupt controller,
  DMA engines (first-class fabric masters) and timers;
* :mod:`repro.check` — simulation sanitizers: the happens-before data-race
  detector, protocol checkers and the static lint for task code
  (``python -m repro.check.lint``);
* :mod:`repro.wrapper` — the paper's contribution: the host-backed dynamic
  shared memory wrapper (pointer table, translator, cycle-true FSM, delays)
  and the C-formalism software API;
* :mod:`repro.sw` — the software layer: task programs, the workload
  registry and the GSM 06.10 codec used by the evaluation;
* :mod:`repro.soc` — platform composition and simulation-speed reporting;
* :mod:`repro.api` — the declarative experiment layer: platform builder,
  scenarios, the (optionally process-sharded) experiment runner and
  structured result writers;
* :mod:`repro.store` — the sweep observatory substrate: content-addressed
  persistent result store (SQLite) and live sweep telemetry;
* :mod:`repro.analysis` — evaluation metrics and the sweep dashboard
  (``python -m repro.analysis.serve``).

Quick start::

    from repro.api import PlatformBuilder, Scenario, run_scenario
    from repro.memory import DataType

    def program(ctx):
        smem = ctx.smem(0)
        vptr = yield from smem.alloc(16, DataType.UINT32)
        yield from smem.write_array(vptr, list(range(16)))
        data = yield from smem.read_array(vptr, 16)
        yield from smem.free(vptr)
        return sum(data)

    scenario = Scenario(
        name="hello",
        config=PlatformBuilder().pes(1).wrapper_memories(1).build(),
        workload=lambda config, **params: [program],
    )
    result = run_scenario(scenario).raise_for_status()
    print(result.report.summary())

or, with a registered workload (see :data:`repro.sw.workload`)::

    from repro.api import ExperimentRunner, PlatformBuilder, Scenario

    config = PlatformBuilder().pes(4).crossbar().wrapper_memories(2).build()
    scenario = Scenario(name="gsm", config=config, workload="gsm_encode",
                        params={"frames": 2, "seed": 42})
    [result] = ExperimentRunner([scenario]).run()
"""

__version__ = "2.3.0"

__all__ = [
    "analysis",
    "api",
    "check",
    "interconnect",
    "isa",
    "iss",
    "kernel",
    "memory",
    "noc",
    "soc",
    "store",
    "sw",
    "wrapper",
]
