"""Packet-switched 2D-mesh network-on-chip interconnect.

:class:`MeshNoc` is the platform's third :class:`~repro.fabric.Fabric`
topology, a drop-in next to :class:`~repro.interconnect.bus.SharedBus` and
:class:`~repro.interconnect.crossbar.Crossbar`: it inherits the exact same
master-port surface (``master_port`` / ``attach_slave`` / ``add_snooper`` /
``stats`` / ``utilization``) from the fabric layer, so processing elements,
the shared-memory API and the MSI coherence layer run unchanged on it.

Internally it is a ``rows x cols`` grid of wormhole routers:

* every master's network interface injects *request packets* at its node;
  the packet is chopped into flits (one head flit plus the payload at
  ``flit_bytes`` per flit) and routed **XY dimension-order** — all the
  column hops first, then the row hops — which is deadlock-free on a mesh;
* each router output port arbitrates **round-robin over its input lanes**
  (one virtual channel per input side, plus the local lane) and forwards
  the head flit after ``router_cycles`` of pipeline and ``link_cycles`` on
  the wire, while the body flits stream behind it — the port stays held
  for the full ``flits x link_cycles`` serialization, exactly a wormhole
  worm crossing the switch;
* ports have ``buffer_packets`` of input buffering; a full downstream
  buffer exerts backpressure, so the upstream channel stays held (blocked
  worm) until credit returns;
* *responses* travel on a physically separate network with the same
  geometry, so request/response dependencies can never cycle — the
  classic two-network deadlock-freedom argument;
* the addressed slave is served one request at a time by its node's
  server process — the mesh's master-facing arbitration point, created
  from the fabric's shared :class:`~repro.fabric.ArbitrationSpec` (lane
  arbitration inside the routers stays round-robin: lanes are entry
  sides, not masters); snoopers fire at request packet completion —
  synchronously, in slave service order — which is what keeps the MSI
  coherence domain's shadow state authoritative.

Per-link, per-router and end-to-end latency counters are collected in a
:class:`~repro.noc.stats.NocStats` and surfaced through the platform's
``interconnect_stats["noc"]`` block.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple, Union

from ..fabric import (
    AddressDecodeError,
    ArbitrationSpec,
    BusRequest,
    BusResponse,
    BusSlave,
    Fabric,
    MasterPort,
    Region,
    RoundRobinArbiter,
)
from ..kernel import Event, Module
from ..kernel.simtime import NS
from .config import NocConfig
from .packet import (
    LOCAL_LANE,
    Packet,
    entry_lane,
    flits_for_payload,
    request_payload_bytes,
    response_payload_bytes,
)
from .stats import NocStats


class _OutputPort:
    """One directed channel: a router output port (or inject/eject port).

    Holds per-input-lane packet queues, the round-robin lane arbiter, the
    wakeup events and the occupancy bookkeeping used for backpressure.
    ``capacity`` is in packets; ``None`` means unbounded (injection ports,
    which model the master-side network-interface queue).
    """

    __slots__ = ("key", "name", "node", "queues", "arbiter", "event",
                 "credit_event", "capacity", "occupancy", "stats")

    def __init__(self, key: Tuple, name: str, node: int,
                 capacity: Optional[int], stats) -> None:
        self.key = key
        self.name = name
        self.node = node
        self.queues: Dict[int, deque] = {}
        self.arbiter = RoundRobinArbiter()
        self.event: Optional[Event] = None
        self.credit_event: Optional[Event] = None
        self.capacity = capacity
        self.occupancy = 0
        self.stats = stats

    def has_room(self) -> bool:
        return self.capacity is None or self.occupancy < self.capacity

    def enqueue(self, lane: int, packet: Packet) -> None:
        queue = self.queues.get(lane)
        if queue is None:
            queue = self.queues[lane] = deque()
        queue.append(packet)
        self.occupancy += 1
        self.event.notify()

    def waiting_lanes(self) -> List[int]:
        queues = self.queues
        if len(queues) == 1:
            # Fast path: most ports only ever see a single input lane (an
            # injection port with one local master, a link port fed from
            # one entry side), so skip the sort and the genexpr.
            for lane, queue in queues.items():
                return [lane] if queue else []
        return sorted(lane for lane, queue in queues.items() if queue)


class _SlaveServer:
    """Per-slave service point at the slave's mesh node."""

    __slots__ = ("slave", "node", "name", "pending", "arbiter", "event")

    def __init__(self, slave: BusSlave, node: int, name: str,
                 arbiter) -> None:
        self.slave = slave
        self.node = node
        self.name = name
        self.pending: Dict[int, Packet] = {}
        self.arbiter = arbiter
        self.event: Optional[Event] = None


class MeshNoc(Fabric):
    """A 2D-mesh wormhole NoC with the SharedBus/Crossbar port surface."""

    def __init__(
        self,
        name: str = "noc",
        period: int = 10 * NS,
        config: Optional[NocConfig] = None,
        parent: Optional[Module] = None,
        arbitration: Union[ArbitrationSpec, str, None] = None,
    ) -> None:
        # The mesh has no per-transfer address phase: its overhead is the
        # modelled router/link traversal, so arbitration_cycles is 0.
        super().__init__(name, period, arbitration_cycles=0,
                         arbitration=arbitration, parent=parent)
        config = config if config is not None else NocConfig(rows=2, cols=2)
        if not config.has_dims:
            config = config.resolve(1, 1)
        self.config = config
        self.rows: int = config.rows
        self.cols: int = config.cols
        self.num_nodes = self.rows * self.cols
        self.noc_stats = NocStats()
        self._inflight: set = set()
        self._servers: Dict[int, _SlaveServer] = {}
        self._slave_count = 0
        #: One port dict per physical network ("req" carries requests
        #: outward, "resp" carries responses back — separate networks).
        self._nets: Dict[str, Dict[Tuple, _OutputPort]] = {
            "req": {}, "resp": {},
        }
        self._anchor_event = self.add_event(Event(f"{name}.decode_error"))
        for label in ("req", "resp"):
            self._build_network(label)

    # -- construction ------------------------------------------------------------
    def _build_network(self, label: str) -> None:
        cols, rows = self.cols, self.rows
        for node in range(self.num_nodes):
            row, col = divmod(node, cols)
            self._add_port(label, ("inj", node), f"n{node}.inject",
                           node, capacity=None)
            self._add_port(label, ("ej", node), f"n{node}.eject",
                           node, capacity=self.config.buffer_packets)
            neighbours = []
            if col + 1 < cols:
                neighbours.append(("E", node + 1))
            if col > 0:
                neighbours.append(("W", node - 1))
            if row + 1 < rows:
                neighbours.append(("S", node + cols))
            if row > 0:
                neighbours.append(("N", node - cols))
            for direction, neighbour in neighbours:
                self._add_port(label, ("link", node, direction),
                               f"n{node}->n{neighbour}", node,
                               capacity=self.config.buffer_packets)

    def _add_port(self, label: str, key: Tuple, display: str, node: int,
                  capacity: Optional[int]) -> None:
        name = f"{label}:{display}"
        port = _OutputPort(key, name, node, capacity,
                           self.noc_stats.link(name))
        port.event = self.add_event(Event(f"{self.name}.{name}.req"))
        port.credit_event = self.add_event(Event(f"{self.name}.{name}.credit"))
        self._nets[label][key] = port
        self.add_process(lambda p=port, net=label: self._run_port(net, p),
                         name=f"{label}_{display}")

    # -- placement ---------------------------------------------------------------
    # The placement rules are static so the partition planner
    # (:mod:`repro.pdes.plan`) can assign owners from a resolved
    # :class:`NocConfig` alone, without building the fabric.
    @staticmethod
    def master_node(config: NocConfig, master_id: int) -> int:
        """Mesh node of a master (row-major from node 0 by default)."""
        nodes = config.pe_nodes
        if nodes:
            return nodes[master_id % len(nodes)]
        return master_id % (config.rows * config.cols)

    @staticmethod
    def slave_node(config: NocConfig, slave_index: int) -> int:
        """Mesh node of the ``slave_index``-th attached slave.

        Defaults to spreading slaves from the far corner of the mesh
        backwards, opposite the masters filling it from node 0.
        """
        nodes = config.memory_nodes
        num_nodes = config.rows * config.cols
        if nodes:
            return nodes[slave_index % len(nodes)]
        return num_nodes - 1 - (slave_index % num_nodes)

    def node_of_master(self, master_id: int) -> int:
        return self.master_node(self.config, master_id)

    def node_of_slave(self, slave_index: int) -> int:
        return self.slave_node(self.config, slave_index)

    # -- construction-time wiring --------------------------------------------------
    def _on_attach(self, region: Region, slave: BusSlave) -> None:
        """Give a newly mapped slave a node and its service process."""
        if id(slave) not in self._servers:
            node = self.node_of_slave(self._slave_count)
            self._slave_count += 1
            server = _SlaveServer(slave, node, region.name, self.new_policy())
            server.event = self.add_event(
                Event(f"{self.name}.{region.name}.serve"))
            self._servers[id(slave)] = server
            self.add_process(lambda s=server: self._run_server(s),
                             name=f"serve_{region.name}")

    # -- master-side entry point -----------------------------------------------------
    def _post(self, port: MasterPort, request: BusRequest) -> None:
        if port.master_id in self._inflight:
            raise RuntimeError(
                f"master {port.master_id} posted a request while one is "
                f"outstanding"
            )
        try:
            slave, offset, _region = self.address_map.decode(request.address)
        except AddressDecodeError:
            self._complete_decode_error(port, request)
            return
        self._inflight.add(port.master_id)
        now = self.sim_now()
        src = self.node_of_master(port.master_id)
        dst = self._servers[id(slave)].node
        packet = Packet(
            request=request,
            src_node=src,
            dst_node=dst,
            flits=flits_for_payload(request_payload_bytes(request),
                                    self.config.flit_bytes),
            inject_time=now,
            post_time=now,
            slave=slave,
            offset=offset,
        )
        packet.path, packet.lanes = self._route(src, dst, request.master_id)
        self._inject("req", packet)

    # -- routing -----------------------------------------------------------------
    def _route(self, src: int, dst: int, lane0: int
               ) -> Tuple[List[Tuple], List[int]]:
        """XY dimension-order path from ``src`` to ``dst``.

        Returns the ordered port keys and, for each, the input lane the
        packet occupies there (master/originator id at injection, the
        entry side everywhere else).
        """
        cols = self.cols
        path: List[Tuple] = [("inj", src)]
        lanes: List[int] = [lane0]
        row, col = divmod(src, cols)
        dst_row, dst_col = divmod(dst, cols)
        node = src
        lane = LOCAL_LANE
        while col != dst_col:
            direction = "E" if dst_col > col else "W"
            path.append(("link", node, direction))
            lanes.append(lane)
            lane = entry_lane(direction)
            col += 1 if dst_col > col else -1
            node = row * cols + col
        while row != dst_row:
            direction = "S" if dst_row > row else "N"
            path.append(("link", node, direction))
            lanes.append(lane)
            lane = entry_lane(direction)
            row += 1 if dst_row > row else -1
            node = row * cols + col
        path.append(("ej", node))
        lanes.append(lane)
        return path, lanes

    def _inject(self, label: str, packet: Packet) -> None:
        self.noc_stats.record_packet(packet.flits, packet.hops)
        inject_port = self._nets[label][packet.path[0]]
        inject_port.enqueue(packet.lanes[0], packet)

    # -- per-port router process ---------------------------------------------------
    def _run_port(self, label: str, port: _OutputPort):
        period = self.period
        config = self.config
        net = self._nets[label]
        # Hoisted out of the per-packet path: these never change after
        # construction, and the products were recomputed for every hop.
        router_cycles = config.router_cycles
        link_cycles = config.link_cycles
        head_link_time = link_cycles * period
        while True:
            lanes = port.waiting_lanes()
            if not lanes:
                yield port.event
                continue
            if len(lanes) > 1:
                port.stats.contended_grants += 1
                waiting = sum(len(port.queues[lane]) for lane in lanes) - 1
                self.noc_stats.record_contention(port.node, waiting)
            winner = port.arbiter.grant(lanes)
            packet = port.queues[winner].popleft()
            # Router pipeline: route computation, VC and switch allocation.
            for _ in range(router_cycles):
                yield period
            # The head flit crosses the link...
            yield head_link_time
            tail_cycles = (packet.flits - 1) * link_cycles
            if packet.hop + 1 < len(packet.path):
                # ...and is handed downstream while the body flits still
                # stream over this channel (wormhole pipelining).  A full
                # downstream buffer blocks the worm here.
                yield from self._forward(net, port, packet)
                if tail_cycles:
                    yield tail_cycles * period
            else:
                # Terminal (ejection) port: the payload is in the body
                # flits, so delivery happens once the tail arrived.
                if tail_cycles:
                    yield tail_cycles * period
                self._eject(packet)
            port.stats.busy_cycles += (router_cycles
                                       + packet.flits * link_cycles)
            port.stats.packets += 1
            port.stats.flits += packet.flits
            port.occupancy -= 1
            port.credit_event.notify()

    def _forward(self, net: Dict[Tuple, _OutputPort], port: _OutputPort,
                 packet: Packet):
        next_port = net[packet.path[packet.hop + 1]]
        while not next_port.has_room():
            blocked_from = self.sim_now()
            yield next_port.credit_event
            port.stats.blocked_cycles += (
                (self.sim_now() - blocked_from) // self.period
            )
        packet.hop += 1
        next_port.enqueue(packet.lanes[packet.hop], packet)

    def _eject(self, packet: Packet) -> None:
        if packet.is_response:
            self._complete(packet)
            return
        server = self._servers[id(packet.slave)]
        server.pending[packet.request.master_id] = packet
        server.event.notify()

    # -- slave service ------------------------------------------------------------
    def _run_server(self, server: _SlaveServer):
        while True:
            if not server.pending:
                yield server.event
                continue
            winner = self._grant(server.arbiter, sorted(server.pending))
            packet = server.pending.pop(winner)
            request = packet.request
            response, cycles = yield from self._drive_slave(
                server.slave, request, packet.offset)
            response.slave_cycles = cycles
            # Packet completion: the transaction took effect at the slave.
            # Snoopers observe it here, in service order, before any other
            # master can see the new state — identical to the bus hook.
            self._fire_snoopers(request, response)
            self._inject_response(server, packet, response)

    def _inject_response(self, server: _SlaveServer, packet: Packet,
                         response: BusResponse) -> None:
        reply = Packet(
            request=packet.request,
            src_node=server.node,
            dst_node=packet.src_node,
            flits=flits_for_payload(
                response_payload_bytes(packet.request, response),
                self.config.flit_bytes),
            inject_time=self.sim_now(),
            post_time=packet.post_time,
            response=response,
        )
        reply.path, reply.lanes = self._route(server.node, packet.src_node,
                                              packet.request.master_id)
        self._inject("resp", reply)

    def _complete(self, packet: Packet) -> None:
        response = packet.response
        now = self.sim_now()
        response.total_cycles = (now - packet.post_time) // self.period
        self._account(packet.request, response)
        self.noc_stats.record_latency(response.total_cycles)
        self._inflight.discard(packet.request.master_id)
        port = self._master_ports[packet.request.master_id]
        for hook in self._complete_hooks:
            hook(port, packet.request, response)
        port._response = response
        port._completion.notify()

    # -- reporting ----------------------------------------------------------------
    def utilization(self, elapsed_time: int) -> float:
        """Average link utilization across both networks (0.0-1.0)."""
        ports = sum(len(net) for net in self._nets.values())
        if elapsed_time <= 0 or not ports:
            return 0.0
        elapsed_cycles = elapsed_time // self.period
        if elapsed_cycles <= 0:
            return 0.0
        busy = self.noc_stats.total_busy_cycles()
        return min(1.0, busy / (elapsed_cycles * ports))

    def noc_summary(self, elapsed_time: int = 0) -> dict:
        """JSON-ready NoC block for ``interconnect_stats`` (mesh shape,
        packet/flit totals, latency percentiles, per-link counters)."""
        summary = {
            "rows": self.rows,
            "cols": self.cols,
            "flit_bytes": self.config.flit_bytes,
            "link_cycles": self.config.link_cycles,
            "router_cycles": self.config.router_cycles,
        }
        summary.update(self.noc_stats.as_dict(
            elapsed_cycles=elapsed_time // self.period if elapsed_time else 0))
        return summary

    def _decorate_stats(self, block: Dict[str, object],
                        elapsed_time: int) -> None:
        block["noc"] = self.noc_summary(elapsed_time)
