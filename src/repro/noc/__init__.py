"""Packet-switched 2D-mesh network-on-chip interconnect.

The third platform topology next to the shared bus and the crossbar:
per-node wormhole routers with XY dimension-order routing, round-robin
virtual-channel arbitration per output port, configurable link width and
latencies, separate request/response networks (deadlock-free by
construction) and link-level statistics.

Drop-in use through the platform layer::

    config = (PlatformBuilder()
              .pes(8)
              .wrapper_memories(2)
              .mesh(rows=2, cols=4)
              .build())

or standalone, with the same surface as ``SharedBus``/``Crossbar``::

    noc = MeshNoc("noc", config=NocConfig(rows=2, cols=2))
    noc.attach_slave("mem", 0x1000_0000, 0x1_0000, memory)
    port = noc.master_port(0)
"""

from .config import NocConfig
from .mesh import MeshNoc
from .packet import (
    LOCAL_LANE,
    Packet,
    entry_lane,
    flits_for_payload,
    request_payload_bytes,
    response_payload_bytes,
)
from .stats import LinkStats, NocStats

__all__ = [
    "LOCAL_LANE",
    "LinkStats",
    "MeshNoc",
    "NocConfig",
    "NocStats",
    "Packet",
    "entry_lane",
    "flits_for_payload",
    "request_payload_bytes",
    "response_payload_bytes",
]
