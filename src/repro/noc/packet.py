"""Network packets: bus transactions chopped into flits.

The mesh carries two packet kinds on two physically separate networks:

* a *request* packet wraps one :class:`~repro.fabric.transaction.BusRequest`
  travelling from a master's network interface to the node of the
  addressed slave;
* a *response* packet wraps the matching
  :class:`~repro.fabric.transaction.BusResponse` on the way back.

A packet is ``1 + ceil(payload_bytes / flit_bytes)`` flits long: one head
flit carrying the route/command and as many body flits as the payload
needs.  Reads request no payload, so their request packet is head-only;
burst writes carry their words outward and burst reads carry them back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..fabric.transaction import BusOp, BusRequest, BusResponse, WORD_SIZE

#: Input-lane index of traffic entering a router from its local port
#: (network interface); link lanes use the direction indices below.
LOCAL_LANE = 4

#: Direction name -> input-lane index at the downstream router.
_ENTRY_LANE = {"E": 0, "W": 1, "S": 2, "N": 3}  # entered from the W/E/N/S side


def flits_for_payload(payload_bytes: int, flit_bytes: int) -> int:
    """Total flits of a packet carrying ``payload_bytes`` of data."""
    return 1 + -(-payload_bytes // flit_bytes)


def request_payload_bytes(request: BusRequest) -> int:
    """Bytes a request packet carries besides its head flit."""
    if request.op is BusOp.WRITE:
        return request.word_count * WORD_SIZE
    return 0


def response_payload_bytes(request: BusRequest, response: BusResponse) -> int:
    """Bytes the matching response packet carries back."""
    if request.op is BusOp.READ:
        words = len(response.burst_data) if response.burst_data else 1
        return words * WORD_SIZE
    return 0


@dataclass
class Packet:
    """One packet in flight on a mesh network."""

    #: The transaction this packet belongs to.
    request: BusRequest
    #: Source and destination node indices.
    src_node: int
    dst_node: int
    #: Total length in flits (head + body).
    flits: int
    #: Port keys the packet traverses, in order (see ``MeshNoc``).
    path: List[Tuple] = field(default_factory=list)
    #: Input lane of the packet at each port of :attr:`path`.
    lanes: List[int] = field(default_factory=list)
    #: Index of the port the packet currently occupies.
    hop: int = 0
    #: Simulated time the packet entered its network.
    inject_time: int = 0
    #: Simulated time the master posted the transaction (requests only).
    post_time: int = 0
    #: Decoded slave-side target (requests only).
    slave: object = None
    offset: int = 0
    #: The carried response (response packets only).
    response: Optional[BusResponse] = None

    @property
    def is_response(self) -> bool:
        return self.response is not None

    @property
    def hops(self) -> int:
        """Number of ports (inject + links + eject) on the path."""
        return len(self.path)

    def describe(self) -> str:  # pragma: no cover - debugging helper
        kind = "resp" if self.is_response else "req"
        return (f"{kind} m{self.request.master_id} "
                f"n{self.src_node}->n{self.dst_node} {self.flits}f")


def entry_lane(direction: str) -> int:
    """Input-lane index at the router a ``direction`` link feeds into."""
    return _ENTRY_LANE[direction]
