"""Link-level and end-to-end statistics of the mesh interconnect.

:class:`NocStats` mirrors what :class:`~repro.interconnect.monitor.BusMonitor`
provides for a single slave, at network granularity:

* per-link counters — busy cycles, packets, flits, blocked (backpressure)
  cycles — and from them per-link utilization;
* per-router contention — how many packets were left waiting whenever an
  output port made a grant decision;
* end-to-end transaction latency percentiles (inject-to-completion, in
  interconnect cycles), nearest-rank like the monitor's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..fabric.stats import percentile_summary


@dataclass
class LinkStats:
    """Counters of one directed link (or injection/ejection port)."""

    name: str
    busy_cycles: int = 0
    packets: int = 0
    flits: int = 0
    #: Cycles the port spent stalled on downstream backpressure while
    #: holding the channel (the wormhole "blocked worm" time).
    blocked_cycles: int = 0
    #: Packets that found at least one rival waiting at grant time.
    contended_grants: int = 0

    def utilization(self, elapsed_cycles: int) -> float:
        """Fraction of ``elapsed_cycles`` the link carried flits."""
        if elapsed_cycles <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / elapsed_cycles)

    def as_dict(self) -> dict:
        return {
            "busy_cycles": self.busy_cycles,
            "packets": self.packets,
            "flits": self.flits,
            "blocked_cycles": self.blocked_cycles,
            "contended_grants": self.contended_grants,
        }


@dataclass
class NocStats:
    """Aggregate statistics of one mesh interconnect."""

    #: Link name -> counters ("n3->n4", "n0.inject", "n5.eject", ...).
    links: Dict[str, LinkStats] = field(default_factory=dict)
    #: Router node -> packets that waited behind another grant there.
    router_contention: Dict[int, int] = field(default_factory=dict)
    #: End-to-end latency (cycles, inject to completion) per transaction.
    latencies: List[int] = field(default_factory=list)
    packets_sent: int = 0
    flits_sent: int = 0
    hops_total: int = 0

    # -- recording ---------------------------------------------------------------
    def link(self, name: str) -> LinkStats:
        """Counters of one link (created on first use)."""
        stats = self.links.get(name)
        if stats is None:
            stats = self.links[name] = LinkStats(name)
        return stats

    def record_contention(self, node: int, waiting: int) -> None:
        if waiting > 0:
            self.router_contention[node] = (
                self.router_contention.get(node, 0) + waiting
            )

    def record_packet(self, flits: int, hops: int) -> None:
        self.packets_sent += 1
        self.flits_sent += flits
        self.hops_total += hops

    def record_latency(self, cycles: int) -> None:
        self.latencies.append(cycles)

    # -- queries -----------------------------------------------------------------
    @property
    def average_hops(self) -> float:
        if not self.packets_sent:
            return 0.0
        return self.hops_total / self.packets_sent

    def latency_percentiles(self) -> Dict[str, float]:
        """p50/p95/max end-to-end transaction latency in cycles."""
        return percentile_summary(self.latencies)

    def link_utilization(self, elapsed_cycles: int) -> Dict[str, float]:
        """Per-link utilization over ``elapsed_cycles`` (0.0-1.0)."""
        return {name: round(link.utilization(elapsed_cycles), 4)
                for name, link in sorted(self.links.items())}

    def hottest_links(self, count: int = 5) -> List[LinkStats]:
        """The ``count`` busiest links by busy cycles."""
        ranked = sorted(self.links.values(),
                        key=lambda link: (-link.busy_cycles, link.name))
        return ranked[:count]

    def total_busy_cycles(self) -> int:
        return sum(link.busy_cycles for link in self.links.values())

    def as_dict(self, elapsed_cycles: int = 0) -> dict:
        """JSON-ready summary block for ``interconnect_stats``."""
        summary = {
            "packets": self.packets_sent,
            "flits": self.flits_sent,
            "average_hops": round(self.average_hops, 3),
            "latency_percentiles": self.latency_percentiles(),
            "router_contention": {str(node): count for node, count
                                  in sorted(self.router_contention.items())},
            "links": {name: link.as_dict()
                      for name, link in sorted(self.links.items())},
        }
        if elapsed_cycles > 0:
            summary["link_utilization"] = self.link_utilization(elapsed_cycles)
        return summary
