"""Mesh network-on-chip configuration.

A :class:`NocConfig` describes the third interconnect topology of the
platform (``InterconnectKind.MESH``): a 2D mesh of packet routers with
XY dimension-order wormhole routing.  The knobs map directly onto the
hardware parameters a NoC generator would expose:

* ``rows`` / ``cols`` — mesh dimensions (``None`` = derived from the
  platform's PE/memory counts, near-square);
* ``flit_bytes`` — link width: how many payload bytes one flit carries;
* ``link_cycles`` — cycles one flit needs to traverse one link;
* ``router_cycles`` — router pipeline depth (route computation, virtual
  channel allocation and switch traversal) paid once per hop by the head
  flit;
* ``buffer_packets`` — input buffer depth of a router port, in packets;
  a full buffer exerts backpressure, so an upstream link stays held
  exactly like a blocked wormhole worm.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class NocConfig:
    """Parameters of the 2D-mesh packet-switched interconnect."""

    #: Mesh rows (``None`` = derived from the platform size).
    rows: Optional[int] = None
    #: Mesh columns (``None`` = derived from the platform size).
    cols: Optional[int] = None
    #: Payload bytes per flit (the link width).
    flit_bytes: int = 4
    #: Cycles one flit needs to traverse one link.
    link_cycles: int = 1
    #: Router pipeline depth in cycles (paid per hop by the head flit).
    router_cycles: int = 1
    #: Input buffer depth per router port, in packets (backpressure bound).
    buffer_packets: int = 2
    #: Explicit node of every memory module (``None`` = spread from the
    #: far corner of the mesh, opposite the PEs).
    memory_nodes: Optional[Tuple[int, ...]] = None
    #: Explicit node of every processing element (``None`` = row-major
    #: from node 0, wrapping).
    pe_nodes: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        for label, value in (("rows", self.rows), ("cols", self.cols)):
            if value is not None and value <= 0:
                raise ValueError(f"mesh {label} must be positive, got {value}")
        if self.flit_bytes <= 0:
            raise ValueError("flit_bytes must be positive")
        if self.link_cycles <= 0:
            raise ValueError("link_cycles must be positive")
        if self.router_cycles < 0:
            raise ValueError("router_cycles must be >= 0")
        if self.buffer_packets <= 0:
            raise ValueError("buffer_packets must be positive")
        for label, nodes in (("memory_nodes", self.memory_nodes),
                             ("pe_nodes", self.pe_nodes)):
            if nodes is None:
                continue
            if not isinstance(nodes, tuple):
                raise ValueError(f"{label} must be a tuple of node indices")
            for node in nodes:
                if node < 0:
                    raise ValueError(f"{label} entries must be >= 0")

    # -- resolution -------------------------------------------------------------
    @property
    def has_dims(self) -> bool:
        """True when both mesh dimensions are explicit."""
        return self.rows is not None and self.cols is not None

    def resolve(self, num_masters: int, num_slaves: int) -> "NocConfig":
        """A copy with concrete mesh dimensions.

        When ``rows``/``cols`` are unset, the smallest near-square grid
        holding ``max(num_masters, num_slaves)`` nodes is chosen (PEs and
        memories may share nodes, so either count alone bounds the mesh).
        """
        rows, cols = self.rows, self.cols
        if rows is None or cols is None:
            need = max(1, num_masters, num_slaves)
            if cols is None and rows is None:
                cols = max(1, math.isqrt(need - 1) + 1) if need > 1 else 1
                rows = -(-need // cols)
            elif cols is None:
                cols = -(-need // rows)
            else:
                rows = -(-need // cols)
        resolved = NocConfig(
            rows=rows, cols=cols, flit_bytes=self.flit_bytes,
            link_cycles=self.link_cycles, router_cycles=self.router_cycles,
            buffer_packets=self.buffer_packets,
            memory_nodes=self.memory_nodes, pe_nodes=self.pe_nodes,
        )
        num_nodes = rows * cols
        for label, nodes in (("memory_nodes", resolved.memory_nodes),
                             ("pe_nodes", resolved.pe_nodes)):
            if nodes is not None and any(n >= num_nodes for n in nodes):
                raise ValueError(
                    f"{label} {nodes} reference nodes outside the "
                    f"{rows}x{cols} mesh"
                )
        return resolved

    def describe(self) -> str:
        """Short summary used in platform descriptions."""
        dims = (f"{self.rows}x{self.cols}" if self.has_dims else "auto")
        return (f"mesh {dims}, {self.flit_bytes}B flits, "
                f"{self.link_cycles}c links, {self.router_cycles}c routers")
