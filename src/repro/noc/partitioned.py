"""Partition-aware mesh NoC: boundary-link proxies for PDES execution.

:class:`PartitionedMeshNoc` is a :class:`~repro.noc.mesh.MeshNoc` that
knows which mesh nodes its partition owns.  Every partition builds the
*full* mesh (identical geometry, identical slave-server placement, so
routes and address decode agree everywhere), but only the owned nodes
ever carry traffic: the moment a wormhole head flit would be handed to an
output port at a foreign node, the whole packet is serialized into a
:class:`BoundaryFlit` and handed to the partition's
:class:`BoundaryRuntime` instead of the neighbour's input buffer.

The cut behaves like a link with a fixed latency of ``epoch_cycles``
clock cycles (the PDES lookahead): a flit departing at ``t`` is injected
into the destination partition's matching port at ``t + epoch_time``.
Because every boundary crossing pays at least that latency, each
partition can safely simulate ``epoch_time`` ahead of the earliest thing
any other partition might still do — the classical conservative-PDES
lookahead argument.  Cut ingress is unbounded (no credit backpressure
travels across a cut); intra-partition wormhole backpressure is
unchanged.

Cross-partition ``RESERVE``/``RELEASE`` memory commands are rejected at
the cut with :class:`PartitionError`: the reservation bit is a global
synchronization point whose blocking retry loops would be timing-ordered
across partitions, which the epoch model cannot reproduce faithfully.
Locked workloads must keep each lock's contenders inside one partition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple, Union

from ..fabric import ArbitrationSpec
from ..fabric.transaction import BusOp
from ..kernel import Module
from ..kernel.simtime import NS
from ..memory.protocol import REG_COMMAND, REG_OPCODE, MemOpcode
from .config import NocConfig
from .mesh import MeshNoc, _OutputPort
from .packet import Packet


class PartitionError(RuntimeError):
    """A platform/workload feature is incompatible with partitioned
    (PDES) execution."""


@dataclass(frozen=True)
class PartitionContext:
    """Everything one partition needs to know about the global tiling."""

    #: Total number of partitions.
    partitions: int
    #: This partition's index (0-based).
    index: int
    #: Conservative-sync window in clock cycles (the cut-link latency).
    epoch_cycles: int
    #: The same window in kernel time units.
    epoch_time: int
    #: Mesh nodes owned by this partition.
    owned_nodes: FrozenSet[int]
    #: Owning partition of every global PE index.
    pe_owner: Tuple[int, ...]
    #: Owning partition of every memory index.
    memory_owner: Tuple[int, ...]

    def owns_pe(self, pe_index: int) -> bool:
        return self.pe_owner[pe_index] == self.index

    def owns_memory(self, memory_index: int) -> bool:
        return self.memory_owner[memory_index] == self.index


@dataclass
class BoundaryFlit:
    """One packet crossing a partition cut (pickled over the worker pipe).

    ``(deliver_time, src_partition, seq)`` is a deterministic total order:
    the receiving partition delivers flits in exactly this order no matter
    how the coordinator's pipes interleave.
    """

    net: str
    src_partition: int
    seq: int
    depart_time: int
    deliver_time: int
    packet: Packet

    def sort_key(self) -> Tuple[int, int, int]:
        return (self.deliver_time, self.src_partition, self.seq)


_LOCK_OPCODES = (int(MemOpcode.RESERVE), int(MemOpcode.RELEASE))


def _is_lock_command(packet: Packet) -> bool:
    """True when the request packet carries a RESERVE/RELEASE command
    (either the burst command-port encoding or the register-poke one)."""
    request = packet.request
    if request.op is not BusOp.WRITE:
        return False
    if packet.offset == REG_COMMAND and request.burst_data:
        return int(request.burst_data[0]) in _LOCK_OPCODES
    if packet.offset == REG_OPCODE and not request.burst_data:
        return int(request.data) in _LOCK_OPCODES
    return False


class BoundaryRuntime:
    """Collects the flits leaving one partition during the current window.

    The per-event hot path only ever appends to a plain list; all
    null-message/outbox bookkeeping is batched at the epoch barrier
    (:meth:`drain`), so the sequential ``partitions=1`` path never sees
    any of it.
    """

    def __init__(self, context: PartitionContext) -> None:
        self.context = context
        self.outbox: List[BoundaryFlit] = []
        self.sent = 0
        self.received = 0
        self._seq = 0

    def emit(self, net: str, packet: Packet, now: int) -> None:
        """Serialize ``packet`` as it crosses the cut at time ``now``."""
        if not packet.is_response and _is_lock_command(packet):
            raise PartitionError(
                f"cross-partition reserve/release: master "
                f"{packet.request.master_id} sent a memory lock command "
                f"across a partition cut; keep each lock's contenders "
                f"(masters and the locked memory) inside one partition"
            )
        # The slave object is partition-local state; the receiving side
        # rebinds it from its own (identical) address map.
        packet.slave = None
        flit = BoundaryFlit(
            net=net,
            src_partition=self.context.index,
            seq=self._seq,
            depart_time=now,
            deliver_time=now + self.context.epoch_time,
            packet=packet,
        )
        self._seq += 1
        self.sent += 1
        self.outbox.append(flit)

    def drain(self) -> List[BoundaryFlit]:
        """Take the outbox (called once per epoch barrier)."""
        outbox, self.outbox = self.outbox, []
        return outbox


class PartitionedMeshNoc(MeshNoc):
    """A mesh NoC whose foreign-node hops become boundary flits."""

    def __init__(
        self,
        name: str = "noc",
        period: int = 10 * NS,
        config: Optional[NocConfig] = None,
        parent: Optional[Module] = None,
        arbitration: Union[ArbitrationSpec, str, None] = None,
        partition: Optional[PartitionContext] = None,
        runtime: Optional[BoundaryRuntime] = None,
    ) -> None:
        if partition is None or runtime is None:
            raise ValueError(
                "PartitionedMeshNoc needs a PartitionContext and a "
                "BoundaryRuntime"
            )
        super().__init__(name, period, config=config, parent=parent,
                         arbitration=arbitration)
        self.partition = partition
        self.runtime = runtime
        self._owned_nodes = partition.owned_nodes
        self._net_labels: Dict[int, str] = {
            id(net): label for label, net in self._nets.items()
        }

    def _forward(self, net: Dict[Tuple, _OutputPort], port: _OutputPort,
                 packet: Packet):
        # Port keys are ("inj", node) / ("ej", node) / ("link", node, dir):
        # key[1] is always the node owning the port.
        next_key = packet.path[packet.hop + 1]
        if next_key[1] in self._owned_nodes:
            yield from MeshNoc._forward(self, net, port, packet)
            return
        # The downstream port lives in another partition: hand the packet
        # to the coordinator instead of the neighbour's input buffer.  No
        # credit wait — the cut ingress is unbounded by design.
        packet.hop += 1
        self.runtime.emit(self._net_labels[id(net)], packet, self.sim_now())

    def deliver(self, flit: BoundaryFlit) -> None:
        """Inject an inbound boundary flit at its first owned port.

        Called between kernel run windows when simulated time has reached
        ``flit.deliver_time``; the enqueue wakes the port process through
        an immediate notification, so it resumes in the next delta cycle
        at exactly the delivery time.
        """
        packet = flit.packet
        if not packet.is_response and packet.slave is None:
            slave, offset, _region = self.address_map.decode(
                packet.request.address)
            packet.slave = slave
            packet.offset = offset
        port = self._nets[flit.net][packet.path[packet.hop]]
        port.enqueue(packet.lanes[packet.hop], packet)
        self.runtime.received += 1
