"""Memory-to-memory DMA engine: a register-file device that is also a
first-class fabric master.

The engine owns its own ``Fabric.master_port()`` (master id above the PEs)
and moves data between dynamic shared memories by speaking the exact
wrapper protocol the PEs use — burst READ_ARRAY / WRITE_ARRAY command
sequences through each memory's I/O array window, chunked to the engine's
``burst_words``.  That makes its traffic indistinguishable from PE traffic
at every layer below: the arbitration policies grant it like any master,
``BusMonitor`` accounts its transfers, and the MSI ``CoherenceDomain``
snoops its writes (a DMA write invalidates matching L1 lines, superseding
dirty copies, because the engine is an *uncached* master).

One caveat of uncached reads: the coherence domain cannot write back a
PE's dirty line on the engine's behalf, so driver software must flush
source buffers before kicking a transfer.  :meth:`DmaDriver.flush` does
that with the protocol's RESERVE/RELEASE pair, which the L1 uses as a
flush barrier.

Channel register map (word offsets)::

    0   CTRL        W: bit0 GO
    1   STATUS      R: 0 idle, 1 busy, 2 done, 3 error    W: clear to idle
    2   SRC_MEM     R/W: source memory index
    3   SRC_PTR     R/W: source Vptr
    4   SRC_OFF     R/W: source element offset
    5   DST_MEM     R/W: destination memory index
    6   DST_PTR     R/W: destination Vptr
    7   DST_OFF     R/W: destination element offset
    8   COUNT       R/W: elements to copy
    9   WORDS_DONE  R: elements copied of the current/last transfer
    10  IRQ_LINE    R: completion interrupt line
    11  TRANSFERS   R: completed transfers since elaboration

Programming is burst-friendly: ``SRC_MEM..COUNT`` are contiguous, so a
driver programs a whole channel with one burst write and then sets GO.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from ..fabric import MasterPort
from ..kernel import Event, Module
from ..wrapper.api import IO_ARRAY_WORDS, SharedMemoryAPI
from .irq import InterruptController
from .peripheral import RegisterFilePeripheral

REG_CTRL = 0
REG_STATUS = 1
REG_SRC_MEM = 2
REG_SRC_PTR = 3
REG_SRC_OFF = 4
REG_DST_MEM = 5
REG_DST_PTR = 6
REG_DST_OFF = 7
REG_COUNT = 8
REG_WORDS_DONE = 9
REG_IRQ_LINE = 10
REG_TRANSFERS = 11
NUM_REGS = 12

#: Number of channel registers a programming burst covers (SRC_MEM..COUNT).
PROGRAM_REGS = REG_COUNT - REG_SRC_MEM + 1

CTRL_GO = 1 << 0

STATUS_IDLE = 0
STATUS_BUSY = 1
STATUS_DONE = 2
STATUS_ERROR = 3


class DmaEngine(RegisterFilePeripheral):
    """A single-channel memory-to-memory DMA engine."""

    kind = "dma"

    def __init__(
        self,
        name: str,
        port: MasterPort,
        memory_apis: List[SharedMemoryAPI],
        controller: InterruptController,
        irq_line: int,
        burst_words: int = 64,
        parent: Optional[Module] = None,
    ) -> None:
        super().__init__(name, NUM_REGS, parent=parent)
        if burst_words < 1:
            raise ValueError("burst_words must be >= 1")
        self.port = port
        #: One protocol client per dynamic memory, bound to the engine's
        #: own master port (``raise_on_error=False``: bad programming must
        #: end in STATUS_ERROR, never crash the simulation).
        self.memory_apis = memory_apis
        self.controller = controller
        self.irq_line = irq_line
        self.burst_words = min(burst_words, IO_ARRAY_WORDS)
        self._regs[REG_IRQ_LINE] = irq_line
        #: Totals over the run (reports).
        self.words_copied = 0
        self.transfers = 0
        self.errors = 0
        #: Observability hook (:class:`repro.obs.ObsSuite` when the
        #: platform runs with obs on): sees transfer begin/end.
        self.obs_observer = None
        self._go_event = Event(f"{name}_go")
        self.add_event(self._go_event)
        self.add_process(self._run, name="engine")

    # -- register semantics -------------------------------------------------------
    @property
    def status(self) -> int:
        return self._regs[REG_STATUS]

    def on_write(self, index: int, value: int) -> None:
        if index == REG_CTRL:
            if value & CTRL_GO and self.status != STATUS_BUSY:
                self._regs[REG_STATUS] = STATUS_BUSY
                self._regs[REG_WORDS_DONE] = 0
                self._go_event.notify(None)
            return
        if index == REG_STATUS:
            if self.status != STATUS_BUSY:
                self._regs[REG_STATUS] = STATUS_IDLE
            return
        if index in (REG_WORDS_DONE, REG_IRQ_LINE, REG_TRANSFERS):
            return  # read-only
        self._regs[index] = value

    # -- the engine ----------------------------------------------------------------
    def _api(self, index: int) -> Optional[SharedMemoryAPI]:
        if 0 <= index < len(self.memory_apis):
            return self.memory_apis[index]
        return None

    def _run(self) -> Generator[object, None, None]:
        while True:
            if self.status != STATUS_BUSY:
                yield self._go_event
                continue
            if self.obs_observer is not None:
                self.obs_observer.dma_begin(self, self._regs[REG_COUNT])
            ok = yield from self._transfer()
            if self.obs_observer is not None:
                self.obs_observer.dma_end(self, ok,
                                          self._regs[REG_WORDS_DONE])
            if ok:
                self._regs[REG_STATUS] = STATUS_DONE
                self.transfers += 1
                self._regs[REG_TRANSFERS] = self.transfers
            else:
                self._regs[REG_STATUS] = STATUS_ERROR
                self.errors += 1
            # Completion and error both interrupt; software reads STATUS.
            self.controller.raise_irq(self.irq_line)

    def _transfer(self) -> Generator[object, None, bool]:
        source = self._api(self._regs[REG_SRC_MEM])
        destination = self._api(self._regs[REG_DST_MEM])
        count = self._regs[REG_COUNT]
        if source is None or destination is None or count < 1:
            return False
        src_ptr = self._regs[REG_SRC_PTR]
        dst_ptr = self._regs[REG_DST_PTR]
        src_off = self._regs[REG_SRC_OFF]
        dst_off = self._regs[REG_DST_OFF]
        copied = 0
        while copied < count:
            chunk = min(self.burst_words, count - copied)
            data = yield from source.read_array(src_ptr, chunk,
                                                offset=src_off + copied)
            if data is None:
                return False
            ok = yield from destination.write_array(dst_ptr, data,
                                                    offset=dst_off + copied)
            if not ok:
                return False
            copied += chunk
            self._regs[REG_WORDS_DONE] = copied
            self.words_copied += chunk
        return True

    # -- reporting ---------------------------------------------------------------------
    def report(self) -> dict:
        data = super().report()
        data.update(
            master_id=self.port.master_id,
            irq_line=self.irq_line,
            burst_words=self.burst_words,
            transfers=self.transfers,
            words_copied=self.words_copied,
            errors=self.errors,
            status=self.status,
        )
        return data


class DmaDriver:
    """The software side: programs a DMA engine from a task over the bus.

    Built on the task context's raw port and device layout, so it works on
    every topology and with caches enabled (device-window accesses pass
    through an L1 untouched).  The completion path is interrupt-driven via
    ``ctx.wait_irq``.
    """

    def __init__(self, ctx, engine_index: int = 0) -> None:
        if ctx.devices is None or not ctx.devices.dmas:
            raise ValueError(f"{ctx.name}: the platform has no DMA engine")
        slot = ctx.devices.dma(engine_index)
        self.ctx = ctx
        self.base = slot.base
        self.irq_line = slot.irq_line
        ctx.enable_irq(self.irq_line)

    # -- raw register access ------------------------------------------------------
    def read_reg(self, index: int) -> Generator[object, None, int]:
        response = yield from self.ctx.port.read(self.base + 4 * index,
                                                 tag="dma.reg")
        return response.data

    def write_reg(self, index: int, value: int
                  ) -> Generator[object, None, None]:
        yield from self.ctx.port.write(self.base + 4 * index,
                                       value & 0xFFFFFFFF, tag="dma.reg")

    # -- channel operations ---------------------------------------------------------
    def start(self, src_mem: int, src_ptr: int, dst_mem: int, dst_ptr: int,
              count: int, src_off: int = 0, dst_off: int = 0
              ) -> Generator[object, None, None]:
        """Program the channel (one burst write) and kick the transfer."""
        yield from self.ctx.port.burst_write(
            self.base + 4 * REG_SRC_MEM,
            [src_mem, src_ptr, src_off, dst_mem, dst_ptr, dst_off, count],
            tag="dma.program",
        )
        yield from self.write_reg(REG_CTRL, CTRL_GO)

    def wait(self) -> Generator[object, None, bool]:
        """Block on the completion IRQ; returns True when the copy succeeded."""
        yield from self.ctx.wait_irq(self.irq_line)
        status = yield from self.read_reg(REG_STATUS)
        yield from self.write_reg(REG_STATUS, 0)
        return status == STATUS_DONE

    def copy(self, src_mem: int, src_ptr: int, dst_mem: int, dst_ptr: int,
             count: int, src_off: int = 0, dst_off: int = 0
             ) -> Generator[object, None, bool]:
        """Synchronous start + wait."""
        yield from self.start(src_mem, src_ptr, dst_mem, dst_ptr, count,
                              src_off=src_off, dst_off=dst_off)
        return (yield from self.wait())

    def flush(self, api: SharedMemoryAPI, vptr: int
              ) -> Generator[object, None, None]:
        """Write back any dirty cached data of ``vptr`` before a transfer.

        The protocol's RESERVE is an L1 flush barrier (and RELEASE flushes
        the reserver's own dirty lines), so this makes memory current for
        the engine's uncached reads.  Harmless without caches.
        """
        yield from api.reserve(vptr)
        yield from api.release(vptr)
