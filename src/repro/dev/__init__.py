"""Bus-attached devices: interrupt controller, DMA engine, timers.

The device subsystem turns the PE/memory/fabric platform into one that can
run device-driver-shaped software.  Everything is built from one base
class, :class:`RegisterFilePeripheral` — a kernel Module that is also a
fabric BusSlave exposing a decoded window of word registers:

* :class:`InterruptController` — up to 32 edge/level lines, per-PE enable
  masks, a software-raise doorbell register, and allocation-free wakeup
  delivery through one persistent event per PE (:class:`IrqClient`).
* :class:`DmaEngine` — a single-channel memory-to-memory engine with its
  own fabric master port, speaking the wrapper's READ_ARRAY/WRITE_ARRAY
  protocol in ``burst_words`` chunks and raising a completion IRQ
  (:class:`DmaDriver` is the task-side programming helper).
* :class:`TimerPeripheral` — one-shot/periodic compare-match timers on the
  kernel's timed fast path.

Devices are declared on a ``PlatformConfig`` via the frozen config classes
(:class:`IrqControllerConfig`, :class:`DmaConfig`, :class:`TimerConfig`);
:func:`resolve_layout` maps a declaration to concrete window addresses,
IRQ lines and master ids — the same resolution the platform builds from
and driver software reads (``ctx.devices``).
"""

from .config import (
    DEVICE_CONFIG_TYPES,
    MAX_IRQ_LINES,
    DeviceLayout,
    DeviceSlot,
    DmaConfig,
    IrqControllerConfig,
    TimerConfig,
    resolve_layout,
)
from .dma import DmaDriver, DmaEngine
from .irq import InterruptController, IrqClient, lines_to_mask
from .peripheral import RegisterFilePeripheral
from .timer import TimerPeripheral

__all__ = [
    "DEVICE_CONFIG_TYPES",
    "MAX_IRQ_LINES",
    "DeviceLayout",
    "DeviceSlot",
    "DmaConfig",
    "DmaDriver",
    "DmaEngine",
    "InterruptController",
    "IrqClient",
    "IrqControllerConfig",
    "RegisterFilePeripheral",
    "TimerConfig",
    "TimerPeripheral",
    "lines_to_mask",
    "resolve_layout",
]
