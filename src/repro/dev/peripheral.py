"""Memory-mapped register-file peripheral base class.

Every ``repro.dev`` device (interrupt controller, DMA engine, timer) is a
:class:`RegisterFilePeripheral`: a kernel :class:`~repro.kernel.Module` that
is also a fabric :class:`~repro.fabric.BusSlave`, exposing a decoded window
of 32-bit registers behind ``Fabric.attach_slave``.  Subclasses customise
behaviour through two side-effect hooks:

* :meth:`on_read` — observe / transform the value a bus read returns
  (e.g. a pending-mask register computed from latched state);
* :meth:`on_write` — apply a bus write (e.g. a ``GO`` bit kicking a DMA
  transfer, a write-one-to-clear acknowledge register).

Scalar and burst transactions both decode into per-word hook calls, so a
driver can program a whole channel with one burst write.  Accesses outside
the register file or misaligned answer ``SLAVE_ERROR`` without raising —
devices must never crash the simulation on a bad software access.
"""

from __future__ import annotations

from typing import List, Optional

from ..fabric import BusOp, BusRequest, BusResponse, BusSlave, ResponseStatus
from ..fabric.transaction import WORD_SIZE
from ..kernel import Module


class RegisterFilePeripheral(Module, BusSlave):
    """A bus-attached device built from a window of word registers."""

    #: Short device-kind tag surfaced in reports.
    kind = "peripheral"

    def __init__(
        self,
        name: str,
        num_regs: int,
        parent: Optional[Module] = None,
        access_cycles: int = 1,
    ) -> None:
        Module.__init__(self, name, parent)
        if num_regs < 1:
            raise ValueError("a register file needs at least one register")
        if access_cycles < 1:
            raise ValueError("access cycles must be >= 1")
        self._regs: List[int] = [0] * num_regs
        self.access_cycles = access_cycles
        #: Words read / written over the bus (reports).
        self.reg_reads = 0
        self.reg_writes = 0
        #: Rejected accesses (bad offset, misaligned, bad size).
        self.access_errors = 0

    # -- geometry ----------------------------------------------------------------
    @property
    def num_regs(self) -> int:
        return len(self._regs)

    def window_bytes(self) -> int:
        """Size of the decoded register window in bytes."""
        return len(self._regs) * WORD_SIZE

    # -- side-effect hooks (override in subclasses) --------------------------------
    def on_read(self, index: int, value: int) -> int:
        """Return the value a bus read of register ``index`` observes."""
        return value

    def on_write(self, index: int, value: int) -> None:
        """Apply a bus write of ``value`` to register ``index``."""
        self._regs[index] = value

    # -- direct (non-bus) register access ------------------------------------------
    def read_reg(self, index: int) -> int:
        """Raw backing value of register ``index`` (no hook, no bus)."""
        return self._regs[index]

    def write_reg(self, index: int, value: int) -> None:
        """Set the backing value of register ``index`` (no hook, no bus)."""
        self._regs[index] = value & 0xFFFFFFFF

    # -- BusSlave protocol ------------------------------------------------------------
    def latency(self, request: BusRequest) -> int:
        return max(1, request.word_count) * self.access_cycles

    def access(self, request: BusRequest, offset: int) -> BusResponse:
        if offset % WORD_SIZE or request.size != WORD_SIZE:
            self.access_errors += 1
            return BusResponse(status=ResponseStatus.SLAVE_ERROR)
        index = offset // WORD_SIZE
        count = max(1, request.word_count)
        if index + count > len(self._regs):
            self.access_errors += 1
            return BusResponse(status=ResponseStatus.SLAVE_ERROR)
        if request.op is BusOp.WRITE:
            words = (request.burst_data if request.burst_data is not None
                     else [request.data])
            for position, word in enumerate(words):
                self.on_write(index + position, word & 0xFFFFFFFF)
            self.reg_writes += len(words)
            return BusResponse()
        if request.burst_length:
            values = [self.on_read(index + position,
                                   self._regs[index + position]) & 0xFFFFFFFF
                      for position in range(request.burst_length)]
            self.reg_reads += len(values)
            return BusResponse(burst_data=values)
        self.reg_reads += 1
        return BusResponse(data=self.on_read(index, self._regs[index])
                           & 0xFFFFFFFF)

    # -- reporting ---------------------------------------------------------------------
    def report(self) -> dict:
        """Summary dictionary surfaced in ``SimulationReport.device_reports``."""
        return {
            "name": self.name,
            "kind": self.kind,
            "reg_reads": self.reg_reads,
            "reg_writes": self.reg_writes,
            "access_errors": self.access_errors,
        }
