"""Interrupt controller with per-PE lines, masking and software doorbells.

The controller is a :class:`~repro.dev.peripheral.RegisterFilePeripheral`
with up to 32 interrupt lines shared by every target processing element.
Lines are **edge** sources by default — ``raise_irq`` latches the pending
bit until a target acknowledges it — and can be switched to **level**
semantics (``configure_level`` + ``set_level``), where the pending bit
follows the wire and an acknowledge only clears it once the line drops.

Delivery rides the kernel fast path: each target PE owns one persistent
:class:`~repro.kernel.Event` created at elaboration.  ``IrqClient.wait``
yields that same event object on every blocking wait, so interrupt-driven
software allocates nothing per wait (the PR-2 waiter-token mechanism keeps
stale wakeups out).  Raising, masking and acknowledging are plain integer
mask operations.

Register map (word offsets)::

    0  PENDING  R: effective pending mask   W: software raise (W1S doorbell)
    1  ACK      W: acknowledge (W1C; level lines re-pend while high)
    2  LEVEL    R: current level-source wire state
    3  (reserved)
    4+ ENABLE   R/W: per-PE enable mask, one register per target PE

The ``PENDING`` write path is the doorbell used for inter-processor
interrupts: any master (a PE, a DMA engine) can raise a line with one bus
write, which is what the ``producer_consumer_irq`` workload builds on.
"""

from __future__ import annotations

from typing import Generator, Iterable, Optional, Union

from ..kernel import Event, Module
from .config import MAX_IRQ_LINES
from .peripheral import RegisterFilePeripheral

REG_PENDING = 0
REG_ACK = 1
REG_LEVEL = 2
REG_ENABLE_BASE = 4

#: Accepted ``lines`` arguments: one line number or an iterable of them.
LinesArg = Union[int, Iterable[int]]


def lines_to_mask(lines: LinesArg, limit: int = MAX_IRQ_LINES) -> int:
    """Fold line numbers into a mask, validating the range."""
    if isinstance(lines, int):
        lines = (lines,)
    mask = 0
    for line in lines:
        if not 0 <= line < limit:
            raise ValueError(f"interrupt line {line} outside 0..{limit - 1}")
        mask |= 1 << line
    return mask


class InterruptController(RegisterFilePeripheral):
    """Shared interrupt controller for every PE of a platform."""

    kind = "irq_controller"

    def __init__(
        self,
        name: str,
        num_pes: int,
        lines: int = MAX_IRQ_LINES,
        parent: Optional[Module] = None,
    ) -> None:
        if not 1 <= lines <= MAX_IRQ_LINES:
            raise ValueError(f"lines must be 1..{MAX_IRQ_LINES}, got {lines}")
        super().__init__(name, REG_ENABLE_BASE + num_pes, parent=parent)
        self.num_pes = num_pes
        self.lines = lines
        self.line_mask = (1 << lines) - 1
        #: Latched (edge) pending bits, cleared by acknowledge.
        self._latched = 0
        #: Current wire state of level-configured lines.
        self._level_state = 0
        #: Which lines follow level semantics (the rest latch edges).
        self._level_lines = 0
        #: Per-PE enable masks (mirrors the ENABLE registers).
        self.enable = [0] * num_pes
        #: One persistent wakeup event per target PE (fast-path delivery).
        self._pe_events = [Event(f"irq_pe{pe}") for pe in range(num_pes)]
        for event in self._pe_events:
            self.add_event(event)
        #: Counters for reports.
        self.raises = 0
        self.soft_raises = 0
        self.acks = 0
        self.wakeups = 0
        #: Sanitizer hook (:class:`repro.check.SanitizerSuite` when the
        #: platform runs with sanitizers on): sees every raise and claim.
        self.check_observer = None
        #: Observability hook (:class:`repro.obs.ObsSuite` when the
        #: platform runs with obs on): a parallel slot, so sanitizers and
        #: tracing coexist.  Sees raises, claims and wait begin/end.
        self.obs_observer = None

    # -- hardware-side wires -----------------------------------------------------
    @property
    def pending_mask(self) -> int:
        """Effective pending mask: latched edges plus asserted level lines."""
        return (self._latched | (self._level_state & self._level_lines)) \
            & self.line_mask

    def configure_level(self, lines: LinesArg) -> None:
        """Switch ``lines`` to level semantics (default is edge)."""
        self._level_lines |= lines_to_mask(lines, self.lines)

    def raise_irq(self, lines: LinesArg) -> None:
        """Latch an edge on ``lines`` and wake any enabled waiting PE."""
        mask = lines_to_mask(lines, self.lines)
        self.raises += 1
        self._latched |= mask
        if self.check_observer is not None:
            self.check_observer.irq_raised(mask)
        if self.obs_observer is not None:
            self.obs_observer.irq_raised(mask)
        self._notify_targets(mask)

    def set_level(self, line: int, asserted: bool) -> None:
        """Drive the wire of a level-configured ``line``."""
        mask = lines_to_mask(line, self.lines)
        if asserted:
            rising = mask & ~self._level_state
            self._level_state |= mask
            if rising:
                self.raises += 1
                if self.check_observer is not None:
                    self.check_observer.irq_raised(mask)
                if self.obs_observer is not None:
                    self.obs_observer.irq_raised(mask)
                self._notify_targets(mask)
        else:
            self._level_state &= ~mask

    def ack_mask(self, mask: int) -> None:
        """Acknowledge pending ``mask`` bits (level lines re-pend while high)."""
        self.acks += 1
        self._latched &= ~mask

    def _notify_targets(self, mask: int) -> None:
        for pe, enabled in enumerate(self.enable):
            if enabled & mask:
                event = self._pe_events[pe]
                # Unbound outside a simulation (direct wire tests): the
                # latch still records the raise, there is no one to wake.
                if event._sim is not None:
                    event.notify(None)

    # -- software-side register semantics ------------------------------------------
    def on_read(self, index: int, value: int) -> int:
        if index == REG_PENDING:
            return self.pending_mask
        if index == REG_LEVEL:
            return self._level_state
        if index >= REG_ENABLE_BASE:
            return self.enable[index - REG_ENABLE_BASE]
        return value

    def on_write(self, index: int, value: int) -> None:
        if index == REG_PENDING:
            # W1S software doorbell: any master raises lines with one write.
            self.soft_raises += 1
            self.raise_irq([line for line in range(self.lines)
                            if value & (1 << line)])
        elif index == REG_ACK:
            self.ack_mask(value)
        elif index >= REG_ENABLE_BASE:
            self.set_enable(index - REG_ENABLE_BASE, value)
        else:
            self._regs[index] = value

    def set_enable(self, pe: int, mask: int) -> None:
        """Replace the enable mask of target ``pe``."""
        self.enable[pe] = mask & self.line_mask
        event = self._pe_events[pe]
        if self.pending_mask & self.enable[pe] and event._sim is not None:
            event.notify(None)

    # -- reporting ---------------------------------------------------------------------
    def report(self) -> dict:
        data = super().report()
        data.update(
            lines=self.lines,
            pending=self.pending_mask,
            raises=self.raises,
            soft_raises=self.soft_raises,
            acks=self.acks,
            wakeups=self.wakeups,
        )
        return data


class IrqClient:
    """One PE's view of the interrupt controller (the CPU-side IRQ pins).

    Enabling/masking and waiting are direct wire operations (no bus
    traffic), exactly like a core's local interrupt mask registers.
    Blocking waits always yield the PE's persistent controller event —
    never a freshly allocated one.
    """

    __slots__ = ("controller", "pe_id", "_event")

    def __init__(self, controller: InterruptController, pe_id: int) -> None:
        if not 0 <= pe_id < controller.num_pes:
            raise ValueError(f"pe_id {pe_id} outside the controller's targets")
        self.controller = controller
        self.pe_id = pe_id
        self._event = controller._pe_events[pe_id]

    @property
    def enabled_mask(self) -> int:
        return self.controller.enable[self.pe_id]

    def enable(self, lines: LinesArg) -> None:
        """Unmask ``lines`` for this PE."""
        controller = self.controller
        controller.set_enable(
            self.pe_id,
            controller.enable[self.pe_id]
            | lines_to_mask(lines, controller.lines),
        )

    def disable(self, lines: LinesArg) -> None:
        """Mask ``lines`` for this PE."""
        controller = self.controller
        controller.set_enable(
            self.pe_id,
            controller.enable[self.pe_id]
            & ~lines_to_mask(lines, controller.lines),
        )

    def pending(self, lines: Optional[LinesArg] = None) -> int:
        """Pending-and-enabled mask, optionally restricted to ``lines``."""
        mask = (lines_to_mask(lines, self.controller.lines)
                if lines is not None else ~0)
        return self.controller.pending_mask & self.enabled_mask & mask

    def wait(self, lines: Optional[LinesArg] = None
             ) -> Generator[object, None, int]:
        """Block until an enabled line in ``lines`` pends; claim and return it.

        Returns the claimed mask after acknowledging it.  ``lines=None``
        waits for any enabled line.  Waiting for a masked line would never
        wake, so at least one requested line must be enabled.
        """
        controller = self.controller
        mask = (lines_to_mask(lines, controller.lines)
                if lines is not None else controller.line_mask)
        if not mask & self.enabled_mask:
            raise ValueError(
                f"pe{self.pe_id} waits on masked interrupt lines "
                f"{mask:#x} (enabled {self.enabled_mask:#x})"
            )
        if controller.obs_observer is not None:
            controller.obs_observer.irq_wait_begin(self.pe_id)
        while True:
            hit = controller.pending_mask & self.enabled_mask & mask
            if hit:
                if controller.check_observer is not None:
                    controller.check_observer.irq_claimed(self.pe_id, hit)
                if controller.obs_observer is not None:
                    controller.obs_observer.irq_claimed(self.pe_id, hit)
                controller.ack_mask(hit)
                controller.wakeups += 1
                return hit
            yield self._event
