"""Device configuration and address-layout resolution.

Devices are declared on a :class:`~repro.soc.config.PlatformConfig` as a
tuple of small frozen dataclasses (:class:`IrqControllerConfig`,
:class:`DmaConfig`, :class:`TimerConfig`).  :func:`resolve_layout` turns
that declaration into a concrete :class:`DeviceLayout`: every device gets a
register window base address, IRQ-raising devices get a line on the
interrupt controller (explicit lines win, the rest are auto-assigned), and
DMA engines get fabric master ids above the processing elements.

Keeping the resolution here (rather than inside ``Platform``) lets software
— workload factories, drivers running on a PE — compute the exact same
layout from the config alone, which is how a :class:`~repro.dev.dma.DmaDriver`
knows where its engine's registers live.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

#: Hard upper bound of interrupt lines (pending/enable masks are one word).
MAX_IRQ_LINES = 32


@dataclass(frozen=True)
class IrqControllerConfig:
    """One platform-wide interrupt controller."""

    #: Number of interrupt lines (1..32; masks are single 32-bit words).
    lines: int = MAX_IRQ_LINES
    #: Instance name (also the register window name on the fabric).
    name: str = "irqc"


@dataclass(frozen=True)
class DmaConfig:
    """One memory-to-memory DMA engine (its own fabric master)."""

    #: Largest burst the engine moves per READ_ARRAY/WRITE_ARRAY pair.
    burst_words: int = 64
    #: Completion interrupt line (``None`` = auto-assigned).
    irq_line: Optional[int] = None
    #: Instance name (``""`` = ``dma<k>`` by engine ordinal).
    name: str = ""


@dataclass(frozen=True)
class TimerConfig:
    """One compare-match timer raising an IRQ on expiry."""

    #: Compare value in platform clock cycles.
    compare_cycles: int = 1000
    #: Reload and keep ticking after each expiry.
    periodic: bool = False
    #: Start counting at elaboration without software programming.
    auto_start: bool = False
    #: Expiry interrupt line (``None`` = auto-assigned).
    irq_line: Optional[int] = None
    #: Instance name (``""`` = ``timer<k>`` by timer ordinal).
    name: str = ""


#: Every config class a ``PlatformConfig.devices`` tuple may contain.
DEVICE_CONFIG_TYPES = (IrqControllerConfig, DmaConfig, TimerConfig)


@dataclass(frozen=True)
class DeviceSlot:
    """One resolved device instance: config plus its platform addresses."""

    #: Device kind: ``"irq"``, ``"dma"`` or ``"timer"``.
    kind: str
    #: Instance name (unique across devices; fabric window name).
    name: str
    #: The declaring config object.
    config: object
    #: Base byte address of the register window on the fabric.
    base: int
    #: Interrupt line the device raises (``None`` for the controller).
    irq_line: Optional[int] = None
    #: Fabric master id (DMA engines only).
    master_id: Optional[int] = None


@dataclass(frozen=True)
class DeviceLayout:
    """The resolved device map of one platform."""

    #: Every slot in window order (controller first).
    slots: Tuple[DeviceSlot, ...]
    #: The interrupt controller slot (always present when any device is).
    controller: DeviceSlot
    #: DMA engine slots in declaration order.
    dmas: Tuple[DeviceSlot, ...]
    #: Timer slots in declaration order.
    timers: Tuple[DeviceSlot, ...]

    def dma(self, index: int = 0) -> DeviceSlot:
        """The ``index``-th DMA engine slot (raises when absent)."""
        try:
            return self.dmas[index]
        except IndexError:
            raise ValueError(
                f"no DMA engine with index {index} "
                f"(platform has {len(self.dmas)})"
            ) from None

    def timer(self, index: int = 0) -> DeviceSlot:
        """The ``index``-th timer slot (raises when absent)."""
        try:
            return self.timers[index]
        except IndexError:
            raise ValueError(
                f"no timer with index {index} "
                f"(platform has {len(self.timers)})"
            ) from None

    def describe(self) -> str:
        """Compact summary used by ``PlatformConfig.describe()``."""
        parts = [f"irqc({self.controller.config.lines})"]
        if self.dmas:
            parts.append(f"{len(self.dmas)} dma")
        if self.timers:
            parts.append(f"{len(self.timers)} timer")
        return "+".join(parts)


def resolve_layout(
    devices: Tuple[object, ...],
    num_pes: int,
    base_address: int,
    stride: int,
) -> Optional[DeviceLayout]:
    """Resolve a ``PlatformConfig.devices`` tuple into a :class:`DeviceLayout`.

    Returns ``None`` for an empty declaration (a device-free platform must
    stay bit-identical to the pre-``repro.dev`` model).  An interrupt
    controller is injected implicitly when DMA engines or timers are
    declared without one; explicit IRQ lines are honoured first and the
    remaining devices fill the lowest free lines.
    """
    if not devices:
        return None
    for config in devices:
        if not isinstance(config, DEVICE_CONFIG_TYPES):
            raise ValueError(
                f"devices entries must be device configs, got "
                f"{type(config).__name__}"
            )
    controllers = [c for c in devices if isinstance(c, IrqControllerConfig)]
    if len(controllers) > 1:
        raise ValueError("a platform supports at most one interrupt controller")
    controller_config = controllers[0] if controllers else IrqControllerConfig()
    if not 1 <= controller_config.lines <= MAX_IRQ_LINES:
        raise ValueError(
            f"interrupt controller lines must be 1..{MAX_IRQ_LINES}, "
            f"got {controller_config.lines}"
        )

    raisers = [c for c in devices if not isinstance(c, IrqControllerConfig)]
    claimed = set()
    for config in raisers:
        line = config.irq_line
        if line is None:
            continue
        if not 0 <= line < controller_config.lines:
            raise ValueError(
                f"irq_line {line} outside controller lines "
                f"0..{controller_config.lines - 1}"
            )
        if line in claimed:
            raise ValueError(
                f"irq_line {line} claimed by more than one device "
                f"(completion claims would race)"
            )
        claimed.add(line)

    def next_free_line(start: List[int]) -> int:
        while start[0] in claimed:
            start[0] += 1
        line = start[0]
        if line >= controller_config.lines:
            raise ValueError(
                f"not enough interrupt lines for every device "
                f"(controller has {controller_config.lines})"
            )
        claimed.add(line)
        return line

    cursor = [0]
    slots: List[DeviceSlot] = []
    controller_slot = DeviceSlot(
        kind="irq", name=controller_config.name, config=controller_config,
        base=base_address,
    )
    slots.append(controller_slot)

    names = {controller_config.name}
    dma_slots: List[DeviceSlot] = []
    timer_slots: List[DeviceSlot] = []
    for config in raisers:
        window = len(slots)
        line = (config.irq_line if config.irq_line is not None
                else next_free_line(cursor))
        if isinstance(config, DmaConfig):
            if config.burst_words < 1:
                raise ValueError("DMA burst_words must be >= 1")
            name = config.name or f"dma{len(dma_slots)}"
            slot = DeviceSlot(
                kind="dma", name=name, config=config,
                base=base_address + window * stride, irq_line=line,
                master_id=num_pes + len(dma_slots),
            )
            dma_slots.append(slot)
        else:
            if config.compare_cycles < 1:
                raise ValueError("timer compare_cycles must be >= 1")
            name = config.name or f"timer{len(timer_slots)}"
            slot = DeviceSlot(
                kind="timer", name=name, config=config,
                base=base_address + window * stride, irq_line=line,
            )
            timer_slots.append(slot)
        if slot.name in names:
            raise ValueError(f"duplicate device name {slot.name!r}")
        names.add(slot.name)
        slots.append(slot)

    return DeviceLayout(
        slots=tuple(slots),
        controller=controller_slot,
        dmas=tuple(dma_slots),
        timers=tuple(timer_slots),
    )
