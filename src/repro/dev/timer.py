"""Compare-match timer peripheral (one-shot and periodic).

A :class:`TimerPeripheral` counts platform clock cycles toward a compare
value and raises its interrupt line on expiry.  The counting process rides
the kernel's timed fast path — while armed it is a plain ``yield cycles``
loop, so a free-running periodic timer costs one timed step per period and
nothing else.  Software programs it through the register window; a timer
can also be configured to ``auto_start`` at elaboration, which makes the
platform never-idle (the regression target of the ``Platform.run``
``max_time`` clamp tests).

Register map (word offsets)::

    0  CTRL     R/W: bit0 enable, bit1 periodic
    1  COMPARE  R/W: compare value in clock cycles
    2  STATUS   R: expiry count since the last clear   W: clear
    3  IRQ_LINE R: the controller line this timer raises

A CTRL/COMPARE write while a period is already in flight takes effect at
the *next* expiry boundary (the in-flight timed wait is not recalled);
disabling mid-period suppresses the pending expiry.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..kernel import Event, Module
from .irq import InterruptController
from .peripheral import RegisterFilePeripheral

REG_CTRL = 0
REG_COMPARE = 1
REG_STATUS = 2
REG_IRQ_LINE = 3

CTRL_ENABLE = 1 << 0
CTRL_PERIODIC = 1 << 1


class TimerPeripheral(RegisterFilePeripheral):
    """A compare-match timer raising an IRQ on every expiry."""

    kind = "timer"

    def __init__(
        self,
        name: str,
        controller: InterruptController,
        irq_line: int,
        clock_period: int,
        compare_cycles: int = 1000,
        periodic: bool = False,
        auto_start: bool = False,
        parent: Optional[Module] = None,
    ) -> None:
        super().__init__(name, 4, parent=parent)
        if compare_cycles < 1:
            raise ValueError("compare_cycles must be >= 1")
        self.controller = controller
        self.irq_line = irq_line
        self.clock_period = clock_period
        self._regs[REG_COMPARE] = compare_cycles
        self._regs[REG_IRQ_LINE] = irq_line
        if auto_start:
            self._regs[REG_CTRL] = CTRL_ENABLE | (CTRL_PERIODIC if periodic
                                                  else 0)
        elif periodic:
            self._regs[REG_CTRL] = CTRL_PERIODIC
        #: Total expirations over the run (STATUS is software-clearable).
        self.expirations = 0
        #: Bumped on every CTRL/COMPARE write; invalidates in-flight waits.
        self._generation = 0
        self._program_event = Event(f"{name}_program")
        self.add_event(self._program_event)
        self.add_process(self._run, name="tick")

    # -- register semantics -------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return bool(self._regs[REG_CTRL] & CTRL_ENABLE)

    @property
    def periodic(self) -> bool:
        return bool(self._regs[REG_CTRL] & CTRL_PERIODIC)

    def on_write(self, index: int, value: int) -> None:
        if index == REG_STATUS:
            self._regs[REG_STATUS] = 0
            return
        if index == REG_IRQ_LINE:
            return  # read-only
        self._regs[index] = value
        if index in (REG_CTRL, REG_COMPARE):
            self._generation += 1
            self._program_event.notify(None)

    # -- counting process ----------------------------------------------------------
    def _run(self) -> Generator[object, None, None]:
        while True:
            if not self.enabled:
                yield self._program_event
                continue
            generation = self._generation
            compare = max(1, self._regs[REG_COMPARE])
            yield compare * self.clock_period
            if self._generation != generation:
                continue  # reprogrammed mid-period: restart with new values
            self.expirations += 1
            self._regs[REG_STATUS] += 1
            self.controller.raise_irq(self.irq_line)
            if not self.periodic:
                self._regs[REG_CTRL] &= ~CTRL_ENABLE

    # -- reporting ---------------------------------------------------------------------
    def report(self) -> dict:
        data = super().report()
        data.update(
            irq_line=self.irq_line,
            compare_cycles=self._regs[REG_COMPARE],
            periodic=self.periodic,
            enabled=self.enabled,
            expirations=self.expirations,
        )
        return data
