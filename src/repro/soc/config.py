"""Platform configuration.

A :class:`PlatformConfig` captures everything needed to build one of the
paper's co-simulation platforms: how many processing elements, how many
dynamic shared memories and of which model (host-backed wrapper vs.
fully-modelled baseline), the interconnect topology and arbitration, clock
period, wrapper delay parameters, and whether memory modules are ticked
every cycle (cycle-driven co-simulation style) or only evaluated on demand
(event-driven style).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..cache.geometry import CacheConfig
from ..check.config import CheckConfig
from ..obs.config import ObsConfig
from ..dev.config import DEVICE_CONFIG_TYPES, DeviceLayout, resolve_layout
from ..fabric import ArbitrationSpec
from ..kernel.simtime import NS
from ..memory.latency import LatencyModel
from ..memory.protocol import Endianness
from ..noc.config import NocConfig
from ..sw.instruction_costs import ARM7_LIKE, CostModel
from ..wrapper.delays import WrapperDelays


class MemoryKind(enum.Enum):
    """Which dynamic-memory model the platform instantiates."""

    #: The paper's host-backed dynamic shared memory wrapper.
    WRAPPER = "wrapper"
    #: The traditional fully-modelled dynamic memory baseline.
    MODELED = "modeled"


class InterconnectKind(enum.Enum):
    """Interconnect topology."""

    SHARED_BUS = "shared_bus"
    CROSSBAR = "crossbar"
    MESH = "mesh"


class ArbitrationKind(enum.Enum):
    """Arbitration policy applied at every grant point of the interconnect
    fabric (the bus channel, each crossbar channel, each mesh slave
    server) — see :mod:`repro.fabric.policy`."""

    ROUND_ROBIN = "round_robin"
    FIXED_PRIORITY = "fixed_priority"
    WEIGHTED_ROUND_ROBIN = "weighted_round_robin"
    TDMA = "tdma"


@dataclass
class PlatformConfig:
    """Complete description of one simulated MPSoC platform."""

    #: Number of processing elements (the paper's ISSs).
    num_pes: int = 4
    #: Number of dynamic shared memory modules.
    num_memories: int = 1
    #: Dynamic memory model used for every memory module.
    memory_kind: MemoryKind = MemoryKind.WRAPPER
    #: Simulated capacity of each memory (None = unlimited for the wrapper).
    memory_capacity_bytes: Optional[int] = 1 << 20
    #: Interconnect topology.
    interconnect: InterconnectKind = InterconnectKind.SHARED_BUS
    #: Arbitration policy, applied uniformly on every topology.
    arbitration: ArbitrationKind = ArbitrationKind.ROUND_ROBIN
    #: Weighted-RR grant budgets indexed by master id (``None`` = PE count
    #: down to 1, so lower-id masters get proportionally more bandwidth).
    arbitration_weights: Optional[Tuple[int, ...]] = None
    #: Fixed-priority order, most important first (``None`` = by master id).
    arbitration_priority: Optional[Tuple[int, ...]] = None
    #: TDMA slot schedule of master ids (``None`` = one slot per PE).
    arbitration_schedule: Optional[Tuple[int, ...]] = None
    #: Mesh NoC parameters (``InterconnectKind.MESH`` only).  ``None``
    #: derives a near-square mesh sized for the platform; see
    #: :meth:`resolved_noc`.
    noc: Optional[NocConfig] = None
    #: Clock period of the platform in kernel time units.
    clock_period: int = 10 * NS
    #: Fixed interconnect overhead cycles per transfer.
    arbitration_cycles: int = 1
    #: Delay parameters of the wrapper FSM.
    wrapper_delays: WrapperDelays = field(default_factory=WrapperDelays)
    #: Latency model of the modelled baseline memories.
    modeled_latency: LatencyModel = field(default_factory=LatencyModel)
    #: Byte order of the simulated architecture.
    endianness: Endianness = Endianness.LITTLE
    #: Cost model of local computation on the PEs.
    cost_model: CostModel = ARM7_LIKE
    #: If True, every memory module is evaluated once per clock cycle even
    #: when idle, as in cycle-driven co-simulation kernels (GEZEL/SystemC
    #: without dynamic sensitivity).  This is what makes "more memories"
    #: cost host time in the paper's experiment.
    idle_tick_memories: bool = False
    #: Host-side work units performed per idle tick per memory (knob used to
    #: match the relative weight of memory modules in the authors' kernel).
    idle_tick_work: int = 4
    #: Host-side work units performed per cycle per processing element when
    #: the platform is ticked cycle by cycle (0 = PEs are event-driven).  An
    #: instruction-set simulator costs noticeably more per evaluated cycle
    #: than a memory wrapper FSM; the default ratio of 3:1 versus
    #: ``idle_tick_work`` reflects that.
    pe_tick_work: int = 0
    #: Per-PE L1 data cache configuration; ``None`` (the default) builds the
    #: flat PE -> interconnect -> memory platform, bit-identical to the
    #: pre-cache model.  A :class:`~repro.cache.geometry.CacheConfig` places
    #: one L1 cache per PE, kept coherent with MSI snooping.
    cache: Optional[CacheConfig] = None
    #: Simulation sanitizers (:mod:`repro.check`); ``None`` (the default)
    #: runs without any checker attached — bit-identical to the unchecked
    #: platform.  A :class:`~repro.check.config.CheckConfig` attaches the
    #: happens-before race detector, protocol checkers and/or the
    #: coherence invariant scanner; checks are timing-transparent (they
    #: observe transfers, they never consume simulated time).
    check: Optional[CheckConfig] = None
    #: Observability (:mod:`repro.obs`); ``None`` (the default) installs
    #: zero hooks — bit-identical to the unobserved platform.  An
    #: :class:`~repro.obs.config.ObsConfig` attaches timeline tracing,
    #: the metrics time-series sampler and/or host-time attribution; all
    #: heads are timing-transparent (they observe, they never consume
    #: simulated time or touch the scheduler).
    obs: Optional[ObsConfig] = None
    #: Wrap every memory module in a :class:`~repro.interconnect.monitor.BusMonitor`
    #: (timing-transparent) and surface per-memory transaction counts and
    #: latency percentiles in ``interconnect_stats``.
    monitor_memories: bool = False
    #: Base byte address of the first memory window on the interconnect.
    memory_base_address: int = 0x1000_0000
    #: Address stride between consecutive memory windows.
    memory_window_stride: int = 0x0001_0000
    #: Bus-attached devices (:mod:`repro.dev` config objects: an
    #: ``IrqControllerConfig``, ``DmaConfig`` and/or ``TimerConfig``
    #: entries).  Empty (the default) builds the device-free platform,
    #: bit-identical to the pre-device model.
    devices: Tuple[object, ...] = ()
    #: Base byte address of the first device register window.
    device_base_address: int = 0x2000_0000
    #: Address stride between consecutive device windows.
    device_window_stride: int = 0x0001_0000
    #: Number of spatial partitions the mesh platform is sharded into for
    #: parallel (PDES) execution — see :mod:`repro.pdes`.  ``1`` (the
    #: default) is the ordinary sequential simulation, bit-identical to a
    #: config without the field.  Values > 1 require a mesh interconnect
    #: and tile the NoC into that many rectangles, each simulated by its
    #: own event loop; such configs must be run through
    #: :func:`repro.pdes.run_partitioned` (the scenario runner dispatches
    #: automatically).
    partitions: int = 1
    #: Conservative-sync window of partitioned runs, in clock cycles: every
    #: boundary-crossing packet is delivered this many cycles after it
    #: leaves its source partition, and the coordinator advances all
    #: partitions in lockstep windows bounded by this lookahead.  ``None``
    #: derives a default from the mesh timing parameters.
    pdes_epoch_cycles: Optional[int] = None
    #: Name given to the top module.
    name: str = "mpsoc"

    def __post_init__(self) -> None:
        if self.num_pes <= 0:
            raise ValueError("a platform needs at least one processing element")
        if self.num_memories <= 0:
            raise ValueError("a platform needs at least one shared memory")
        if self.clock_period <= 0:
            raise ValueError("clock period must be positive")
        if self.idle_tick_work < 0:
            raise ValueError("idle tick work must be >= 0")
        if self.pe_tick_work < 0:
            raise ValueError("PE tick work must be >= 0")
        if self.cache is not None and not isinstance(self.cache, CacheConfig):
            raise ValueError(
                f"cache must be a CacheConfig or None, got "
                f"{type(self.cache).__name__}"
            )
        if self.check is not None and not isinstance(self.check, CheckConfig):
            raise ValueError(
                f"check must be a CheckConfig or None, got "
                f"{type(self.check).__name__}"
            )
        if self.obs is not None and not isinstance(self.obs, ObsConfig):
            raise ValueError(
                f"obs must be an ObsConfig or None, got "
                f"{type(self.obs).__name__}"
            )
        if self.noc is not None and not isinstance(self.noc, NocConfig):
            raise ValueError(
                f"noc must be a NocConfig or None, got "
                f"{type(self.noc).__name__}"
            )
        for name in ("arbitration_weights", "arbitration_priority",
                     "arbitration_schedule"):
            value = getattr(self, name)
            if value is None:
                continue
            value = tuple(value)
            if not value or not all(isinstance(item, int)
                                    and not isinstance(item, bool)
                                    for item in value):
                raise ValueError(f"{name} must be a non-empty tuple of ints")
            setattr(self, name, value)
        if self.arbitration_weights is not None and any(
                weight < 1 for weight in self.arbitration_weights):
            raise ValueError("arbitration weights must be >= 1")
        self.devices = tuple(self.devices)
        for device in self.devices:
            if not isinstance(device, DEVICE_CONFIG_TYPES):
                raise ValueError(
                    f"devices entries must be repro.dev config objects, got "
                    f"{type(device).__name__}"
                )
        if self.devices:
            memories_end = (self.memory_base_address
                            + self.num_memories * self.memory_window_stride)
            if self.device_base_address < memories_end:
                raise ValueError(
                    "device windows overlap the memory windows; raise "
                    "device_base_address"
                )
            # Validates line assignments / names / counts eagerly.
            self.device_layout()
        if self.partitions < 1 or self.partitions & (self.partitions - 1):
            raise ValueError("partitions must be a power of two >= 1")
        if self.pdes_epoch_cycles is not None and self.pdes_epoch_cycles < 1:
            raise ValueError("pdes_epoch_cycles must be >= 1 (or None)")
        if self.partitions > 1:
            if self.interconnect is not InterconnectKind.MESH:
                raise ValueError(
                    "partitioned (PDES) execution tiles the mesh NoC; "
                    "partitions > 1 requires InterconnectKind.MESH"
                )
            if self.cache is not None:
                raise ValueError(
                    "partitions > 1 does not support caches: MSI snooping "
                    "needs a global transfer order the partitioned "
                    "simulation does not provide"
                )
            if self.check is not None:
                raise ValueError(
                    "partitions > 1 does not support simulation sanitizers: "
                    "the race detector needs the global event order; run "
                    "checked simulations sequentially"
                )
            if self.devices:
                raise ValueError(
                    "partitions > 1 does not support bus-attached devices "
                    "(DMA/IRQ/timer windows are not partition-aware yet)"
                )
            if self.idle_tick_memories:
                raise ValueError(
                    "partitions > 1 does not support cycle-driven idle "
                    "ticking (the host ticker is a global process)"
                )

    # -- derived helpers -----------------------------------------------------------
    def memory_base(self, index: int) -> int:
        """Bus base address of memory ``index``."""
        if not 0 <= index < self.num_memories:
            raise ValueError(f"memory index {index} out of range")
        return self.memory_base_address + index * self.memory_window_stride

    def arbitration_spec(self) -> ArbitrationSpec:
        """The fabric-level arbitration description of this platform.

        Per-policy parameters default to PE-count-derived values: priority
        and TDMA slots follow master ids, weighted-RR budgets descend from
        ``num_pes`` to 1 (so the policies are distinguishable out of the
        box; override the ``arbitration_*`` fields for exact control).
        """
        return ArbitrationSpec(
            kind=self.arbitration.value,
            priority_order=(self.arbitration_priority
                            if self.arbitration_priority is not None
                            else tuple(range(self.num_pes))),
            weights=(self.arbitration_weights
                     if self.arbitration_weights is not None
                     else tuple(range(self.num_pes, 0, -1))),
            schedule=(self.arbitration_schedule
                      if self.arbitration_schedule is not None
                      else tuple(range(self.num_pes))),
        )

    def device_base(self, index: int) -> int:
        """Bus base address of device window ``index``."""
        return self.device_base_address + index * self.device_window_stride

    def device_layout(self) -> Optional[DeviceLayout]:
        """The resolved device map (``None`` on a device-free platform).

        Deterministic from the config alone, so driver software (through
        ``ctx.devices``) and the platform builder agree on every window
        base, IRQ line and DMA master id.
        """
        return resolve_layout(self.devices, self.num_pes,
                              self.device_base_address,
                              self.device_window_stride)

    def resolved_noc(self) -> NocConfig:
        """The mesh parameters with concrete dimensions for this platform."""
        base = self.noc if self.noc is not None else NocConfig()
        return base.resolve(self.num_pes, self.num_memories)

    def describe(self) -> str:
        """One-line summary used in logs and benchmark tables."""
        topology = self.interconnect.value
        if self.interconnect is InterconnectKind.MESH:
            noc = self.resolved_noc()
            topology = f"mesh {noc.rows}x{noc.cols}"
        text = (
            f"{self.num_pes} PE / {self.num_memories} x {self.memory_kind.value} "
            f"memory / {topology} ({self.arbitration.value})"
        )
        if self.cache is not None:
            text += f" / {self.cache.describe()}"
        if self.check is not None:
            text += f" / check[{self.check.describe()}]"
        if self.obs is not None:
            text += f" / obs[{self.obs.describe()}]"
        layout = self.device_layout()
        if layout is not None:
            text += f" / {layout.describe()}"
        if self.partitions > 1:
            epoch = self.pdes_epoch_cycles
            suffix = f" x{epoch}c" if epoch is not None else ""
            text += f" / pdes[{self.partitions}p{suffix}]"
        return text
