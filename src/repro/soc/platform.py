"""Platform builder: assembles PEs, interconnect and shared memories.

:class:`Platform` turns a :class:`~repro.soc.config.PlatformConfig` into a
ready-to-run module hierarchy:

* one interconnect (shared bus or crossbar),
* ``num_memories`` dynamic memory modules (host-backed wrappers or the
  fully-modelled baseline), each mapped in its own address window,
* ``num_pes`` task processors, each with one master port and one
  :class:`~repro.wrapper.api.SharedMemoryAPI` per memory,
* optionally a per-cycle "idle ticker" that evaluates every memory module
  each clock cycle, reproducing the cost structure of cycle-driven
  co-simulation kernels.

Typical use::

    config = PlatformConfig(num_pes=4, num_memories=1)
    platform = Platform(config)
    platform.add_task(make_fir_task(samples, taps))   # round-robin placement
    report = platform.run()
    print(report.summary())
"""

from __future__ import annotations

import time as _wallclock
import warnings
from typing import List, Optional, Union

from ..cache.coherence import CoherenceDomain
from ..cache.l1 import L1Cache
from ..check.suite import SanitizerSuite
from ..dev.dma import DmaEngine
from ..dev.irq import InterruptController, IrqClient
from ..dev.peripheral import RegisterFilePeripheral
from ..dev.timer import TimerPeripheral
from ..interconnect.bus import SharedBus
from ..interconnect.crossbar import Crossbar
from ..interconnect.monitor import BusMonitor
from ..noc.mesh import MeshNoc
from ..noc.partitioned import (
    BoundaryRuntime,
    PartitionContext,
    PartitionedMeshNoc,
)
from ..obs.suite import ObsSuite
from ..kernel import Event, Module, Simulator
from ..memory.host_memory import HostMemory
from ..memory.modeled_dynamic_memory import ModeledDynamicMemory
from ..memory.protocol import REGISTER_WINDOW_BYTES
from ..wrapper.api import SharedMemoryAPI
from ..wrapper.shared_memory import SharedMemoryWrapper
from ..sw.task import TaskFunction
from ..sw.task_processor import TaskProcessor
from .config import InterconnectKind, MemoryKind, PlatformConfig
from .stats import SimulationReport

DynamicMemory = Union[SharedMemoryWrapper, ModeledDynamicMemory]


class MemoryIdleTicker(Module):
    """Evaluates platform modules once per clock cycle (cycle-driven mode).

    Cycle-driven co-simulation kernels (GEZEL, plain SystemC RTL) evaluate
    every hardware module on every clock edge whether or not it has work to
    do.  This module reproduces that cost structure: each simulated cycle it
    performs ``work_units`` host-work units per memory module (the wrapper
    FSM input evaluation) and, optionally, ``pe_work_units`` per processing
    element (the ISS stepping one instruction/cycle).  The paper's
    "degradation of simulation speed" when adding shared memories comes
    exactly from the memory part of this per-cycle cost.
    """

    def __init__(self, name: str, memories: List[DynamicMemory], period: int,
                 work_units: int, processors: Optional[List[TaskProcessor]] = None,
                 pe_work_units: int = 0,
                 parent: Optional[Module] = None) -> None:
        super().__init__(name, parent)
        self.memories = memories
        self.period = period
        self.work_units = max(0, work_units)
        self.processors = processors if processors is not None else []
        self.pe_work_units = max(0, pe_work_units)
        self.ticks = 0
        self._sink = 0
        self._ticks_flushed = 0
        self.add_process(self._run, name="tick")

    def _spin(self, units: int) -> None:
        sink = self._sink
        for _ in range(units):
            sink = (sink * 33 + 1) & 0xFFFFFFFF
        self._sink = sink

    def _run(self):
        # Per-cycle hot loop: the work *units* are the model (one unit of
        # host work per module evaluation, as a cycle-driven kernel would
        # perform); bindings and unit totals are hoisted so the plumbing
        # around them costs as little as possible.  No simulated time passes
        # within a tick, so the per-module spins fold into one call, and the
        # per-module idle-cycle *bookkeeping* (counters only, no modelled
        # work) is batch-flushed in :meth:`end_of_simulation`.
        period = self.period
        spin = self._spin
        units_per_tick = (self.work_units * len(self.memories)
                          + self.pe_work_units * len(self.processors))
        while True:
            yield period
            self.ticks += 1
            if units_per_tick:
                spin(units_per_tick)

    def end_of_simulation(self) -> None:
        """Flush the accumulated idle-cycle counts into every memory.

        One batched ``account_idle_cycles`` per memory replaces the per-cycle
        ``idle_tick`` calls; the final counter values are identical.
        """
        new_ticks = self.ticks - self._ticks_flushed
        if not new_ticks:
            return
        self._ticks_flushed = self.ticks
        for memory in self.memories:
            account = getattr(memory, "account_idle_cycles", None)
            if account is not None:
                account(new_ticks)


class Platform:
    """A complete MPSoC co-simulation platform built from a configuration.

    With ``partition`` set (a :class:`~repro.noc.partitioned.PartitionContext`
    built by :mod:`repro.pdes`), the platform becomes one shard of a
    partitioned (PDES) run: the mesh is built partition-aware, tasks whose
    PE lives in another partition are skipped, and the kernel windows are
    driven by the PDES coordinator instead of :meth:`run`.
    """

    def __init__(self, config: PlatformConfig,
                 host: Optional[HostMemory] = None,
                 partition: Optional[PartitionContext] = None) -> None:
        self.config = config
        self.top = Module(config.name)
        self.host = host if host is not None else HostMemory()
        #: PDES shard identity (``None`` on an ordinary sequential platform).
        self.partition = partition
        self.boundary: Optional[BoundaryRuntime] = (
            BoundaryRuntime(partition) if partition is not None else None
        )
        self.interconnect = self._build_interconnect()
        self.memories: List[DynamicMemory] = [
            self._build_memory(index) for index in range(config.num_memories)
        ]
        #: Timing-transparent per-memory traffic probes (``monitor_memories``).
        self.monitors: List[BusMonitor] = []
        for index, memory in enumerate(self.memories):
            slave = memory
            if config.monitor_memories:
                slave = BusMonitor(memory, name=f"smem{index}.monitor")
                self.monitors.append(slave)
            self.interconnect.attach_slave(
                f"smem{index}", config.memory_base(index), REGISTER_WINDOW_BYTES,
                slave,
            )
        #: One L1 cache per PE plus their coherence domain (``config.cache``).
        self.caches: List[L1Cache] = []
        self.coherence: Optional[CoherenceDomain] = None
        #: Window base address -> memory index (shared by the coherence
        #: domain's bus snooper and every per-PE cache shim).
        self._windows = {config.memory_base(index): index
                         for index in range(config.num_memories)}
        if config.cache is not None:
            self.coherence = CoherenceDomain()
            self.coherence.attach_interconnect(self.interconnect,
                                               self._windows)
        #: Bus-attached devices (``config.devices``), window-ordered.
        self.devices: List[RegisterFilePeripheral] = []
        self.irq_controller: Optional[InterruptController] = None
        self.dma_engines: List[DmaEngine] = []
        self.timers: List[TimerPeripheral] = []
        self._device_layout = config.device_layout()
        if self._device_layout is not None:
            self._build_devices(self._device_layout)
        #: Runtime sanitizers (``config.check``), timing-transparent.
        self.check_suite: Optional[SanitizerSuite] = None
        if config.check is not None:
            self.check_suite = self._build_check_suite()
        #: Observability (``config.obs``), timing-transparent.
        self.obs: Optional[ObsSuite] = None
        if config.obs is not None:
            self.obs = self._build_obs()
        self.processors: List[TaskProcessor] = []
        #: Global PE index of each entry of :attr:`processors` (in a
        #: partitioned shard the two differ: foreign PEs are skipped).
        self.pe_indices: List[int] = []
        #: Next default placement slot — counts *global* PE slots, so a
        #: partitioned shard assigns the same indices as the sequential run.
        self._pe_cursor = 0
        self._pending_tasks: List[TaskFunction] = []
        self.ticker: Optional[MemoryIdleTicker] = None
        if config.idle_tick_memories:
            self.ticker = MemoryIdleTicker(
                "mem_ticker", self.memories, config.clock_period,
                config.idle_tick_work, processors=self.processors,
                pe_work_units=config.pe_tick_work, parent=self.top,
            )
        self.simulator: Optional[Simulator] = None
        self._stop_event: Optional[Event] = None

    # -- construction helpers ---------------------------------------------------------
    def _build_interconnect(self):
        config = self.config
        arbitration = config.arbitration_spec()
        if config.interconnect is InterconnectKind.MESH:
            if self.partition is not None:
                return PartitionedMeshNoc(
                    "noc", period=config.clock_period,
                    config=config.resolved_noc(),
                    arbitration=arbitration, parent=self.top,
                    partition=self.partition, runtime=self.boundary,
                )
            return MeshNoc("noc", period=config.clock_period,
                           config=config.resolved_noc(),
                           arbitration=arbitration, parent=self.top)
        if config.interconnect is InterconnectKind.CROSSBAR:
            return Crossbar("xbar", period=config.clock_period,
                            arbitration_cycles=config.arbitration_cycles,
                            arbitration=arbitration, parent=self.top)
        return SharedBus("bus", period=config.clock_period,
                         arbitration_cycles=config.arbitration_cycles,
                         arbitration=arbitration, parent=self.top)

    def _build_memory(self, index: int) -> DynamicMemory:
        config = self.config
        if config.memory_kind is MemoryKind.WRAPPER:
            return SharedMemoryWrapper(
                capacity_bytes=config.memory_capacity_bytes,
                sm_addr=index,
                host=self.host,
                delays=config.wrapper_delays,
                endianness=config.endianness,
                base_vptr=0,
                name=f"smem{index}",
            )
        capacity = config.memory_capacity_bytes or (1 << 20)
        return ModeledDynamicMemory(
            size_bytes=capacity,
            sm_addr=index,
            endianness=config.endianness,
            latency=config.modeled_latency,
            name=f"smem{index}",
        )

    def _build_devices(self, layout) -> None:
        """Instantiate and attach every device slot of the resolved layout."""
        config = self.config
        controller = InterruptController(
            layout.controller.name, num_pes=config.num_pes,
            lines=layout.controller.config.lines, parent=self.top,
        )
        self.irq_controller = controller
        built = {layout.controller.name: controller}
        for slot in layout.slots:
            if slot.kind == "dma":
                port = self.interconnect.master_port(slot.master_id,
                                                     name=slot.name)
                apis = [
                    SharedMemoryAPI(
                        port,
                        base_address=config.memory_base(mem_index),
                        sm_addr=mem_index,
                        raise_on_error=False,
                        tag_prefix=f"{slot.name}.smem{mem_index}",
                    )
                    for mem_index in range(config.num_memories)
                ]
                built[slot.name] = DmaEngine(
                    slot.name, port, apis, controller, slot.irq_line,
                    burst_words=slot.config.burst_words, parent=self.top,
                )
            elif slot.kind == "timer":
                built[slot.name] = TimerPeripheral(
                    slot.name, controller, slot.irq_line,
                    clock_period=config.clock_period,
                    compare_cycles=slot.config.compare_cycles,
                    periodic=slot.config.periodic,
                    auto_start=slot.config.auto_start,
                    parent=self.top,
                )
        for slot in layout.slots:
            device = built[slot.name]
            self.devices.append(device)
            self.interconnect.attach_slave(slot.name, slot.base,
                                           device.window_bytes(), device)
        self.dma_engines = [built[slot.name] for slot in layout.dmas]
        self.timers = [built[slot.name] for slot in layout.timers]

    def _build_check_suite(self) -> SanitizerSuite:
        """Assemble the sanitizer suite and register the static topology.

        PE actors join in :meth:`add_task` (they do not exist yet) and the
        L1 caches + kernel observer bind in :meth:`run`.
        """
        config = self.config
        assert config.check is not None
        suite = SanitizerSuite(config.check, self.interconnect)
        for index in range(config.num_memories):
            suite.register_memory_window(config.memory_base(index),
                                         REGISTER_WINDOW_BYTES, index)
        layout = self._device_layout
        if layout is not None:
            for slot, device in zip(layout.slots, self.devices):
                # device.kind, not slot.kind: the layout spells the
                # controller "irq", the peripheral classes "irq_controller".
                suite.register_device_window(
                    slot.base, device.window_bytes(), device.kind, slot.name,
                    device_actor=(slot.master_id if device.kind == "dma"
                                  else None),
                )
            assert self.irq_controller is not None
            suite.register_controller(self.irq_controller)
            for slot, engine in zip(layout.dmas, self.dma_engines):
                suite.register_actor(slot.master_id, slot.name,
                                     process=engine.processes[0])
        self.interconnect.add_port_observer(on_issue=suite.on_port_issue,
                                            on_complete=suite.on_port_complete)
        return suite

    def _build_obs(self) -> ObsSuite:
        """Assemble the observability suite on the same hook surface.

        PEs register in :meth:`add_task` and the caches + simulator bind
        in :meth:`run`.  The interrupt controller and the DMA engines get
        the suite on their ``obs_observer`` slot — parallel to (never
        displacing) the sanitizers' ``check_observer``.
        """
        config = self.config
        assert config.obs is not None
        suite = ObsSuite(config.obs, self.interconnect, config.clock_period)
        self.interconnect.add_port_observer(on_issue=suite.on_port_issue,
                                            on_complete=suite.on_port_complete)
        if self.irq_controller is not None:
            suite.register_controller(self.irq_controller)
        for engine in self.dma_engines:
            suite.register_dma(engine)
        return suite

    # -- task placement ------------------------------------------------------------------
    def add_task(self, task: TaskFunction, pe_index: Optional[int] = None,
                 start_delay_cycles: int = 0, name: Optional[str] = None
                 ) -> Optional[TaskProcessor]:
        """Place ``task`` on a processing element (round-robin by default).

        On a partitioned shard, a task whose PE belongs to another
        partition is skipped (the slot still advances, so placement is
        identical across shards) and ``None`` is returned.
        """
        if pe_index is None:
            pe_index = (self._pe_cursor if self.partition is not None
                        else len(self.processors))
        if pe_index >= self.config.num_pes:
            raise ValueError(
                f"PE index {pe_index} out of range (platform has "
                f"{self.config.num_pes} PEs)"
            )
        if self.partition is not None:
            self._pe_cursor = max(self._pe_cursor, pe_index + 1)
            if not self.partition.owns_pe(pe_index):
                return None
        port = self.interconnect.master_port(pe_index, name=f"pe{pe_index}")
        if self.coherence is not None:
            assert self.config.cache is not None
            cache = L1Cache(
                f"pe{pe_index}.l1", self.config.cache, port, self.coherence,
                self._windows, self.config.clock_period,
            )
            self.caches.append(cache)
            port = cache.port
        apis = [
            SharedMemoryAPI(
                port,
                base_address=self.config.memory_base(mem_index),
                sm_addr=mem_index,
                tag_prefix=f"pe{pe_index}.smem{mem_index}",
            )
            for mem_index in range(self.config.num_memories)
        ]
        irq = (IrqClient(self.irq_controller, pe_index)
               if self.irq_controller is not None else None)
        processor = TaskProcessor(
            name or f"pe{pe_index}",
            port,
            apis,
            task,
            clock_period=self.config.clock_period,
            cost_model=self.config.cost_model,
            start_delay_cycles=start_delay_cycles,
            parent=self.top,
            irq=irq,
            devices=self._device_layout,
        )
        self.processors.append(processor)
        self.pe_indices.append(pe_index)
        if self.check_suite is not None:
            self.check_suite.register_actor(pe_index, processor.name,
                                            process=processor.processes[0])
        if self.obs is not None:
            self.obs.register_processor(processor)
        return processor

    def add_tasks(self, tasks: List[TaskFunction]) -> List[TaskProcessor]:
        """Place one task per PE, in order (skipping foreign PEs on a
        partitioned shard)."""
        placed = [self.add_task(task) for task in tasks]
        return [processor for processor in placed if processor is not None]

    # -- execution ----------------------------------------------------------------------------
    def prepare_run(self) -> Simulator:
        """Create the simulator and bind the check/obs suites.

        Split out of :meth:`run` so the PDES partition driver
        (:mod:`repro.pdes.partition`) can own the kernel windows itself.
        """
        if not self.processors and self.partition is None:
            raise RuntimeError("no tasks were added to the platform")
        self.simulator = Simulator(self.top)
        if self.check_suite is not None:
            self.check_suite.register_caches(self.caches)
            self.check_suite.install(self.simulator)
        if self.obs is not None:
            self.obs.register_caches(self.caches)
            self.obs.install(self.simulator)
        return self.simulator

    def finish_run(self, wallclock_seconds: float) -> SimulationReport:
        """End-of-simulation callbacks plus the report (counterpart of
        :meth:`prepare_run`)."""
        assert self.simulator is not None
        self.simulator.finalize()
        if self.check_suite is not None:
            self.check_suite.finish(self.simulator.now)
        if self.obs is not None:
            self.obs.finish(self.simulator.now)
        return self._build_report(wallclock_seconds)

    def run(self, max_time: Optional[int] = None) -> SimulationReport:
        """Simulate until every PE finishes (or ``max_time`` elapses)."""
        if self.config.partitions > 1 and self.partition is None:
            raise RuntimeError(
                "this configuration requests partitioned (PDES) execution; "
                "run it through repro.pdes.run_partitioned() or the "
                "scenario runner (repro.api.run_scenario), which dispatch "
                "automatically"
            )
        self.prepare_run()
        wall_start = _wallclock.perf_counter()
        if self.ticker is None and max_time is None and not self.devices:
            # Pure event-driven run: ends when no activity remains.
            self.simulator.run()
        else:
            # The ticker (or a free-running timer device) keeps the event
            # queue busy forever, so run in slices
            # until every PE finished (or the optional deadline passes).
            slice_time = 50_000 * self.config.clock_period
            deadline = max_time
            while True:
                remaining = None if deadline is None else deadline - self.simulator.now
                if remaining is not None and remaining <= 0:
                    break
                step = slice_time if remaining is None else min(slice_time, remaining)
                self.simulator.run(step)
                if all(p.finished for p in self.processors):
                    break
                if not self.simulator.pending_activity:
                    break
            # run(step) clamps to the slice boundary (sc_start semantics);
            # if everything drained before the deadline, the report should
            # end at the actual finish time, not the padded boundary.
            self.simulator.trim_to_last_activity()
        wallclock = _wallclock.perf_counter() - wall_start
        return self.finish_run(wallclock)

    def _build_report(self, wallclock_seconds: float) -> SimulationReport:
        assert self.simulator is not None
        # The fabric emits the uniform counters (per-master columns,
        # utilization, latency percentiles, arbitration grants) plus any
        # topology block (the mesh's "noc" section) for every topology.
        interconnect_stats = self.interconnect.interconnect_stats(
            self.simulator.now)
        if self.monitors:
            interconnect_stats["memory_monitors"] = [
                monitor.stats() for monitor in self.monitors
            ]
            interconnect_stats["memory_transactions"] = sum(
                monitor.transaction_count for monitor in self.monitors
            )
        if self.coherence is not None:
            interconnect_stats["coherence"] = self.coherence.stats.as_dict()
        memory_reports = []
        for memory in self.memories:
            if isinstance(memory, SharedMemoryWrapper):
                memory_reports.append(memory.report())
            else:
                memory_reports.append({
                    "name": memory.name,
                    "live_allocations": memory.live_count(),
                    "used_bytes": memory.used_bytes(),
                    "heap_accesses": memory.heap_accesses(),
                    "op_counts": {op.name: count
                                  for op, count in memory.op_counts.items()},
                })
        return SimulationReport(
            description=self.config.describe(),
            simulated_time=self.simulator.now,
            clock_period=self.config.clock_period,
            wallclock_seconds=wallclock_seconds,
            kernel_stats=self.simulator.stats.as_dict(),
            pe_reports=[p.report() for p in self.processors],
            memory_reports=memory_reports,
            interconnect_stats=interconnect_stats,
            cache_reports=[cache.report() for cache in self.caches],
            device_reports=[device.report() for device in self.devices],
            sanitizer_reports=(self.check_suite.reports
                               if self.check_suite is not None else []),
            timeseries=(self.obs.timeseries if self.obs is not None else []),
            obs_summary=(self.obs.summary() if self.obs is not None else None),
            results={p.name: p.stats.result for p in self.processors},
            finished={p.name: p.finished for p in self.processors},
        )


def run_platform(config: PlatformConfig, tasks: List[TaskFunction],
                 max_time: Optional[int] = None,
                 host: Optional[HostMemory] = None) -> SimulationReport:
    """Deprecated shim: build a platform, place ``tasks`` and run it.

    Use :func:`repro.api.run_tasks` (same signature) or, for named
    workloads and sweeps, :class:`repro.api.ExperimentRunner`.
    """
    warnings.warn(
        "run_platform() is deprecated; use repro.api.run_tasks() or "
        "repro.api.ExperimentRunner",
        DeprecationWarning, stacklevel=2,
    )
    from ..api.runner import run_tasks

    return run_tasks(config, tasks, max_time=max_time, host=host)
