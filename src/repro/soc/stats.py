"""Simulation-speed and platform-level statistics.

The paper's evaluation metric is *simulation speed*: how fast the host
machine advances simulated time (and how much that degrades when the
platform grows).  :class:`SimulationReport` gathers everything one platform
run produces — wall-clock time, simulated cycles, per-PE and per-memory
summaries — and :func:`speed_degradation` compares two runs the way the
paper's Section 4 does.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class SimulationReport:
    """Results of one platform simulation run."""

    description: str
    simulated_time: int
    clock_period: int
    wallclock_seconds: float
    kernel_stats: Dict[str, float]
    pe_reports: List[dict] = field(default_factory=list)
    memory_reports: List[dict] = field(default_factory=list)
    interconnect_stats: Dict[str, float] = field(default_factory=dict)
    #: Per-PE L1 cache summaries (empty when the platform runs uncached).
    cache_reports: List[dict] = field(default_factory=list)
    #: Per-device summaries (interrupt controller, DMA engines, timers);
    #: empty on a device-free platform.
    device_reports: List[dict] = field(default_factory=list)
    #: Sanitizer findings of this run (``config.check``): one dict per
    #: report (see :meth:`repro.check.report.SanitizerReport.as_dict`);
    #: empty on a clean run and on unsanitized platforms.
    sanitizer_reports: List[dict] = field(default_factory=list)
    #: Metrics time-series rows of the :mod:`repro.obs` sampler
    #: (``config.obs.metrics_interval_cycles``): one columnar dict per
    #: sampling boundary; empty when the metrics head is off.
    timeseries: List[dict] = field(default_factory=list)
    #: Observability summary (event/drop counts, host-time buckets) from
    #: ``ObsSuite.summary()``; ``None`` on unobserved platforms.
    obs_summary: Optional[dict] = None
    results: Dict[str, object] = field(default_factory=dict)
    #: Per-PE completion flags: ``{pe_name: True/False}``.  A run that ends
    #: on ``max_time`` leaves unfinished PEs with ``False`` here and their
    #: ``results`` entry is ``None`` — check this instead of trusting a
    #: ``None`` result to mean "the task returned nothing".
    finished: Dict[str, bool] = field(default_factory=dict)
    #: Partitioned (PDES) execution breakdown — partition/epoch geometry,
    #: sync rounds, boundary-message counts and per-partition kernel stats
    #: (see :func:`repro.pdes.merge.merge_reports`).  ``None`` on ordinary
    #: sequential runs.
    pdes: Optional[dict] = None

    def __post_init__(self) -> None:
        if not self.finished:
            self.finished = {report["name"]: bool(report.get("finished"))
                             for report in self.pe_reports if "name" in report}

    # -- core metrics -----------------------------------------------------------
    @property
    def simulated_cycles(self) -> int:
        """Simulated clock cycles covered by the run."""
        return self.simulated_time // self.clock_period

    @property
    def simulation_speed(self) -> float:
        """Simulated cycles per host second (the paper's speed metric).

        ``float("inf")`` when the wall-clock resolution rounded the run's
        duration down to zero; JSON views serialise that as ``None``
        (see :meth:`simulation_speed_or_none`) because ``Infinity`` is not
        valid JSON.
        """
        if self.wallclock_seconds <= 0:
            return float("inf")
        return self.simulated_cycles / self.wallclock_seconds

    @property
    def simulation_speed_or_none(self) -> Optional[float]:
        """The speed metric, with non-finite values clamped to ``None``."""
        speed = self.simulation_speed
        return speed if math.isfinite(speed) else None

    @property
    def all_pes_finished(self) -> bool:
        """True when every processing element ran its task to completion."""
        if self.finished:
            return all(self.finished.values())
        return all(report.get("finished") for report in self.pe_reports)

    def result_of(self, pe_name: str) -> object:
        """Result of one PE, raising if its task never ran to completion."""
        if pe_name not in self.finished:
            known = ", ".join(sorted(self.finished)) or "(none)"
            raise KeyError(f"unknown PE {pe_name!r}; PEs in this run: {known}")
        if not self.finished[pe_name]:
            raise KeyError(
                f"PE {pe_name!r} did not finish (run ended on max_time?); "
                f"its result is not available"
            )
        return self.results[pe_name]

    def total_api_calls(self) -> int:
        """Total shared-memory API calls issued by all PEs."""
        return sum(report.get("api_calls", 0) for report in self.pe_reports)

    def total_transactions(self) -> int:
        """Total interconnect transactions."""
        return int(self.interconnect_stats.get("transactions", 0))

    # -- cache metrics ----------------------------------------------------------
    def total_cache_hits(self) -> int:
        """Cache lookups served locally across every PE's L1 (the numerator
        of :meth:`cache_hit_rate`; absorbed array writes are not lookups)."""
        return sum(report.get("hits", 0) + report.get("array_hits", 0)
                   for report in self.cache_reports)

    def cache_hit_rate(self) -> float:
        """Aggregate L1 hit rate over all PEs (0.0 when caches are off)."""
        lookups = sum(report.get("hits", 0) + report.get("misses", 0)
                      + report.get("array_hits", 0)
                      + report.get("array_misses", 0)
                      for report in self.cache_reports)
        if not lookups:
            return 0.0
        return self.total_cache_hits() / lookups

    # -- formatting ----------------------------------------------------------------
    def summary(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"platform:        {self.description}",
            f"simulated time:  {self.simulated_time} ({self.simulated_cycles} cycles)",
            f"wall clock:      {self.wallclock_seconds:.3f} s",
            f"speed:           {self.simulation_speed:,.0f} cycles/s",
            f"transactions:    {self.total_transactions()}",
            f"API calls:       {self.total_api_calls()}",
            f"PEs finished:    {sum(1 for r in self.pe_reports if r.get('finished'))}"
            f"/{len(self.pe_reports)}",
        ]
        if self.cache_reports:
            lines.append(
                f"L1 caches:       {len(self.cache_reports)} x "
                f"{self.cache_reports[0].get('geometry', '?')} "
                f"({self.cache_reports[0].get('policy', '?')}), "
                f"hit rate {self.cache_hit_rate() * 100:.1f}%"
            )
        if self.device_reports:
            kinds = ", ".join(
                f"{report.get('name', '?')}({report.get('kind', '?')})"
                for report in self.device_reports
            )
            lines.append(f"devices:         {kinds}")
        if self.sanitizer_reports:
            by_checker: Dict[str, int] = {}
            for report in self.sanitizer_reports:
                checker = report.get("checker", "?")
                by_checker[checker] = by_checker.get(checker, 0) + 1
            breakdown = ", ".join(f"{count} {checker}" for checker, count
                                  in sorted(by_checker.items()))
            lines.append(f"sanitizers:      "
                         f"{len(self.sanitizer_reports)} report(s) "
                         f"({breakdown})")
        if self.obs_summary is not None:
            trace = self.obs_summary.get("trace")
            parts = [f"config {self.obs_summary.get('config', '?')}"]
            if trace:
                parts.append(f"{trace['events']} events "
                             f"({trace['dropped']} dropped)")
            if self.timeseries:
                parts.append(f"{len(self.timeseries)} metrics rows")
            lines.append(f"observability:   {', '.join(parts)}")
        if self.pdes is not None:
            lines.append(
                f"pdes:            {self.pdes.get('partitions')} partitions, "
                f"{self.pdes.get('epoch_cycles')}-cycle epochs, "
                f"{self.pdes.get('rounds')} rounds, "
                f"{self.pdes.get('boundary_messages')} boundary messages "
                f"({self.pdes.get('mode')})"
            )
        return "\n".join(lines)

    def as_dict(self) -> dict:
        """Plain-dict view (JSON-serialisable) used by the benches.

        ``simulation_speed`` is clamped to ``None`` when the wall clock
        rounded to zero: ``float("inf")`` would serialise as the
        non-standard ``Infinity`` token most JSON parsers reject.
        """
        data = {
            "description": self.description,
            "simulated_time": self.simulated_time,
            "simulated_cycles": self.simulated_cycles,
            "wallclock_seconds": self.wallclock_seconds,
            "simulation_speed": self.simulation_speed_or_none,
            "kernel_stats": dict(self.kernel_stats),
            "interconnect_stats": dict(self.interconnect_stats),
            "pe_reports": list(self.pe_reports),
            "memory_reports": list(self.memory_reports),
            "cache_reports": list(self.cache_reports),
            "device_reports": list(self.device_reports),
            "sanitizer_reports": list(self.sanitizer_reports),
            "timeseries": list(self.timeseries),
            "obs_summary": self.obs_summary,
            "finished": dict(self.finished),
        }
        if self.pdes is not None:
            data["pdes"] = self.pdes
        return data


def speed_degradation(reference: SimulationReport, other: SimulationReport) -> float:
    """Relative simulation-speed degradation of ``other`` vs. ``reference``.

    Returns a fraction: 0.20 means ``other`` simulates 20% slower (the
    paper's headline number when going from one to four shared memories).
    Negative values mean ``other`` is faster.
    """
    if reference.simulation_speed <= 0:
        return 0.0
    return 1.0 - (other.simulation_speed / reference.simulation_speed)


def wallclock_overhead(reference: SimulationReport, other: SimulationReport) -> float:
    """Relative wall-clock increase of ``other`` vs. ``reference`` (same workload)."""
    if reference.wallclock_seconds <= 0:
        return 0.0
    return other.wallclock_seconds / reference.wallclock_seconds - 1.0


@dataclass
class SweepPoint:
    """One configuration point of a parameter sweep."""

    label: str
    parameters: Dict[str, object]
    report: SimulationReport

    def row(self) -> Dict[str, object]:
        """Flat row used by the bench table printers."""
        row: Dict[str, object] = {"label": self.label}
        row.update(self.parameters)
        row["simulated_cycles"] = self.report.simulated_cycles
        row["wallclock_seconds"] = round(self.report.wallclock_seconds, 4)
        speed = self.report.simulation_speed_or_none
        row["simulation_speed"] = None if speed is None else round(speed, 1)
        return row


def format_table(rows: List[Dict[str, object]], columns: Optional[List[str]] = None
                 ) -> str:
    """Render a list of dict rows as an aligned text table."""
    if not rows:
        return "(no data)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {col: max(len(str(col)), max(len(str(row.get(col, ""))) for row in rows))
              for col in columns}
    header = "  ".join(str(col).ljust(widths[col]) for col in columns)
    separator = "  ".join("-" * widths[col] for col in columns)
    lines = [header, separator]
    for row in rows:
        lines.append("  ".join(str(row.get(col, "")).ljust(widths[col])
                               for col in columns))
    return "\n".join(lines)
