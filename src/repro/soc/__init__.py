"""SoC composition: platform configuration, builder and reporting."""

from .config import (
    ArbitrationKind,
    InterconnectKind,
    MemoryKind,
    PlatformConfig,
)
from .platform import MemoryIdleTicker, Platform, run_platform
from .stats import (
    SimulationReport,
    SweepPoint,
    format_table,
    speed_degradation,
    wallclock_overhead,
)

__all__ = [
    "ArbitrationKind",
    "InterconnectKind",
    "MemoryIdleTicker",
    "MemoryKind",
    "Platform",
    "PlatformConfig",
    "SimulationReport",
    "SweepPoint",
    "format_table",
    "run_platform",
    "speed_degradation",
    "wallclock_overhead",
]
