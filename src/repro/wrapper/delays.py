"""Delay parameters of the wrapper's cycle-true FSM.

The paper states that "the wrapper guarantees the simulation accuracy using
parameters of delays which can be dynamic and data dependent".
:class:`WrapperDelays` gathers those parameters: every FSM phase has a
configurable cycle cost, data transfers add a per-word cost, and an optional
hook makes the total data dependent (e.g. to model a DRAM-backed shared
memory instead of an SRAM).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..memory.protocol import MemOpcode

#: Signature of the data-dependent hook: ``hook(opcode, byte_count) -> cycles``.
DelayHook = Callable[[MemOpcode, int], int]


@dataclass
class WrapperDelays:
    """Cycle costs of the wrapper FSM phases.

    Attributes
    ----------
    decode_cycles:
        Cycles spent decoding the opcode/sm_addr head of a transaction.
    table_cycles:
        Cycles per pointer-table operation (lookup, insert, remove).
    host_call_cycles:
        Cycles modelling the latency hidden behind a host management call
        (the simulated memory controller doing the allocate/free work).
    access_cycles:
        Cycles for a scalar data access once the host pointer is known.
    per_word_cycles:
        Additional cycles per word moved through the I/O arrays.
    respond_cycles:
        Cycles spent driving the response/ack back to the master.
    data_dependent:
        Optional hook adding cycles as a function of opcode and byte count.
    """

    decode_cycles: int = 1
    table_cycles: int = 1
    host_call_cycles: int = 2
    access_cycles: int = 1
    per_word_cycles: int = 1
    respond_cycles: int = 1
    data_dependent: Optional[DelayHook] = None

    def __post_init__(self) -> None:
        for name in ("decode_cycles", "table_cycles", "host_call_cycles",
                     "access_cycles", "per_word_cycles", "respond_cycles"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    def extra(self, opcode: MemOpcode, byte_count: int) -> int:
        """Data-dependent extra cycles for an operation (0 without a hook)."""
        if self.data_dependent is None:
            return 0
        value = self.data_dependent(opcode, byte_count)
        if value < 0:
            raise ValueError("data-dependent delay hook returned a negative value")
        return value

    # -- canned configurations ------------------------------------------------------
    @classmethod
    def sram_like(cls) -> "WrapperDelays":
        """Fast on-chip shared memory (single-cycle phases)."""
        return cls(decode_cycles=1, table_cycles=1, host_call_cycles=1,
                   access_cycles=1, per_word_cycles=1, respond_cycles=1)

    @classmethod
    def sdram_like(cls) -> "WrapperDelays":
        """Off-chip shared memory: slower management and first access."""
        return cls(decode_cycles=1, table_cycles=2, host_call_cycles=6,
                   access_cycles=4, per_word_cycles=1, respond_cycles=1)

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view of the static parameters (for reports)."""
        return {
            "decode_cycles": self.decode_cycles,
            "table_cycles": self.table_cycles,
            "host_call_cycles": self.host_call_cycles,
            "access_cycles": self.access_cycles,
            "per_word_cycles": self.per_word_cycles,
            "respond_cycles": self.respond_cycles,
        }
