"""The dynamic shared memory wrapper — the paper's contribution.

:class:`SharedMemoryWrapper` is a bus slave exposing the dynamic-memory
protocol (the same register window as the fully-modelled baseline) while
storing the application data in *host* memory:

* ALLOC → host ``calloc`` through the translator; the new (Vptr, Hptr, type,
  dim, reservation bit) row is added to the pointer table; the Vptr is
  returned to the master.
* WRITE/READ → pointer-table lookup (with pointer-arithmetic resolution for
  interior pointers), then a single native host access through the
  translator.
* WRITE_ARRAY/READ_ARRAY → the I/O arrays stage the words, the translator
  moves the whole block with one host operation.
* FREE → table entry removed (table re-compacted), host ``free`` issued,
  used-bytes counter decremented.
* RESERVE/RELEASE → the reservation bit provides the paper's data-coherence
  semaphore.

Timing comes from the cycle-true FSM (:class:`~repro.wrapper.wrapper_fsm.WrapperFsm`)
parameterised by :class:`~repro.wrapper.delays.WrapperDelays`; the host work
per operation is O(1) in the number of live allocations (a dict-backed
pointer table), which is what makes the model fast on the host.
"""

from __future__ import annotations

from typing import List, Optional

from ..memory.dynamic_base import DynamicMemorySlave
from ..memory.host_memory import HostMemory
from ..memory.protocol import (
    DATA_TYPE_SIZES,
    Endianness,
    MemCommand,
    MemOpcode,
    MemResult,
    MemStatus,
)
from .delays import WrapperDelays
from .errors import PointerTableError, TranslationError
from .pointer_table import PointerTable
from .translator import Translator
from .wrapper_fsm import WrapperFsm


class SharedMemoryWrapper(DynamicMemorySlave):
    """Host-backed dynamic shared memory module.

    Parameters
    ----------
    capacity_bytes:
        Simulated capacity of the shared memory; allocations beyond it are
        refused with ``ERR_FULL`` (the paper's finite-size modelling).
        ``None`` removes the limit.
    sm_addr:
        Identifier checked against the ``sm_addr`` word of every command.
    host:
        The host memory layer; platforms typically share one instance among
        all wrappers so that global host-usage statistics are meaningful.
    delays:
        FSM delay parameters (accuracy knobs).
    endianness:
        Byte order of the simulated architecture.
    base_vptr:
        Virtual address the first allocation receives (lets every shared
        memory own a distinct virtual window in multi-memory platforms).
    """

    def __init__(
        self,
        capacity_bytes: Optional[int] = None,
        sm_addr: int = 0,
        host: Optional[HostMemory] = None,
        delays: Optional[WrapperDelays] = None,
        endianness: Endianness = Endianness.LITTLE,
        base_vptr: int = 0,
        name: str = "shared_mem",
    ) -> None:
        super().__init__(sm_addr=sm_addr, endianness=endianness, name=name)
        self.host = host if host is not None else HostMemory()
        self.delays = delays if delays is not None else WrapperDelays()
        self.table = PointerTable(capacity_bytes=capacity_bytes, base_vptr=base_vptr)
        self.translator = Translator(self.host, endianness)
        self.fsm = WrapperFsm(self.delays)
        #: Words moved by the most recent operation (for the FSM schedule).
        self._last_words = 0

    # -- diagnostics ------------------------------------------------------------------
    def idle_tick(self) -> None:
        """Evaluate the FSM's idle state for one cycle (cycle-driven mode)."""
        self.account_idle_cycles(1)

    def account_idle_cycles(self, cycles: int) -> None:
        """Account ``cycles`` idle-state FSM evaluations at once.

        Cycle-driven platforms batch their idle bookkeeping (see
        :meth:`repro.soc.platform.MemoryIdleTicker.end_of_simulation`); the
        counters end up exactly as if ``idle_tick`` had run every cycle.
        """
        self.idle_cycles += cycles
        fsm = self.fsm._fsm
        fsm.cycles += cycles
        fsm.occupancy["IDLE"] += cycles

    def live_count(self) -> int:
        return self.table.live_count()

    def used_bytes(self) -> int:
        return self.table.used_bytes()

    @property
    def capacity_bytes(self) -> Optional[int]:
        """The configured simulated capacity (None = unlimited)."""
        return self.table.capacity_bytes

    # -- functional behaviour --------------------------------------------------------------
    def _execute(self, command: MemCommand, io_words: List[int],
                 master_id: int) -> MemResult:
        self._last_words = 0
        opcode = command.opcode
        if opcode == MemOpcode.ALLOC:
            return self._op_alloc(command)
        if opcode == MemOpcode.FREE:
            return self._op_free(command, master_id)
        if opcode == MemOpcode.WRITE:
            return self._op_write(command, master_id)
        if opcode == MemOpcode.READ:
            return self._op_read(command)
        if opcode == MemOpcode.WRITE_ARRAY:
            return self._op_write_array(command, io_words, master_id)
        if opcode == MemOpcode.READ_ARRAY:
            return self._op_read_array(command)
        if opcode == MemOpcode.RESERVE:
            return self._op_reserve(command, master_id)
        if opcode == MemOpcode.RELEASE:
            return self._op_release(command, master_id)
        if opcode == MemOpcode.QUERY:
            return self._op_query(command)
        if opcode == MemOpcode.NOP:
            return MemResult(MemStatus.OK)
        return MemResult(MemStatus.ERR_BAD_OPCODE)

    # -- operations ---------------------------------------------------------------------------
    def _op_alloc(self, command: MemCommand) -> MemResult:
        if command.dim <= 0:
            return MemResult(MemStatus.ERR_MALFORMED)
        size_bytes = command.dim * DATA_TYPE_SIZES[command.data_type]
        if not self.table.would_fit(size_bytes):
            return MemResult(MemStatus.ERR_FULL)
        try:
            block = self.translator.host_calloc(command.dim, command.data_type)
        except TranslationError:
            return MemResult(MemStatus.ERR_FULL)
        entry = self.table.insert(block, command.dim, command.data_type)
        return MemResult(MemStatus.OK, value=entry.vptr)

    def _op_free(self, command: MemCommand, master_id: int) -> MemResult:
        try:
            entry = self.table.lookup(command.vptr)
        except PointerTableError:
            return MemResult(MemStatus.ERR_INVALID_PTR)
        if not self.table.check_access(entry, master_id):
            return MemResult(MemStatus.ERR_RESERVED)
        self.table.remove(command.vptr)
        self.translator.host_free(entry.hptr)
        return MemResult(MemStatus.OK)

    def _resolve_element(self, command: MemCommand):
        """Resolve vptr+offset to (entry, byte offset); MemResult on error."""
        resolved = self.table.try_resolve(command.vptr)
        if resolved is None:
            return MemResult(MemStatus.ERR_INVALID_PTR)
        entry, byte_offset = resolved
        element_index = byte_offset // entry.element_size + command.offset
        if element_index < 0 or element_index >= entry.dim:
            return MemResult(MemStatus.ERR_OUT_OF_RANGE)
        return entry, element_index * entry.element_size

    def _op_write(self, command: MemCommand, master_id: int) -> MemResult:
        resolved = self._resolve_element(command)
        if isinstance(resolved, MemResult):
            return resolved
        entry, byte_offset = resolved
        if not self.table.check_access(entry, master_id):
            return MemResult(MemStatus.ERR_RESERVED)
        self.translator.store_element(entry.hptr, byte_offset, command.data,
                                      entry.data_type)
        return MemResult(MemStatus.OK)

    def _op_read(self, command: MemCommand) -> MemResult:
        resolved = self._resolve_element(command)
        if isinstance(resolved, MemResult):
            return resolved
        entry, byte_offset = resolved
        value = self.translator.load_element(entry.hptr, byte_offset, entry.data_type)
        return MemResult(MemStatus.OK, value=value & 0xFFFFFFFF)

    def _array_bounds(self, command: MemCommand):
        resolved = self.table.try_resolve(command.vptr)
        if resolved is None:
            return MemResult(MemStatus.ERR_INVALID_PTR)
        entry, byte_offset = resolved
        start = byte_offset // entry.element_size + command.offset
        if command.dim < 0 or start < 0 or start + command.dim > entry.dim:
            return MemResult(MemStatus.ERR_OUT_OF_RANGE)
        return entry, start * entry.element_size

    def _op_write_array(self, command: MemCommand, io_words: List[int],
                        master_id: int) -> MemResult:
        bounds = self._array_bounds(command)
        if isinstance(bounds, MemResult):
            return bounds
        entry, byte_offset = bounds
        if not self.table.check_access(entry, master_id):
            return MemResult(MemStatus.ERR_RESERVED)
        values = io_words[:command.dim]
        if len(values) < command.dim:
            values = values + [0] * (command.dim - len(values))
        self.translator.store_array(entry.hptr, byte_offset, values, entry.data_type)
        self._last_words = command.dim
        return MemResult(MemStatus.OK, value=command.dim)

    def _op_read_array(self, command: MemCommand) -> MemResult:
        bounds = self._array_bounds(command)
        if isinstance(bounds, MemResult):
            return bounds
        entry, byte_offset = bounds
        words = self.translator.load_array(entry.hptr, byte_offset, command.dim,
                                           entry.data_type)
        self._last_words = command.dim
        return MemResult(MemStatus.OK, value=command.dim, burst=words)

    def _op_reserve(self, command: MemCommand, master_id: int) -> MemResult:
        try:
            self.table.reserve(command.vptr, master_id)
        except PointerTableError:
            if self.table.try_resolve(command.vptr) is None:
                return MemResult(MemStatus.ERR_INVALID_PTR)
            return MemResult(MemStatus.ERR_RESERVED)
        return MemResult(MemStatus.OK)

    def _op_release(self, command: MemCommand, master_id: int) -> MemResult:
        try:
            self.table.release(command.vptr, master_id)
        except PointerTableError:
            if self.table.try_resolve(command.vptr) is None:
                return MemResult(MemStatus.ERR_INVALID_PTR)
            return MemResult(MemStatus.ERR_RESERVED)
        return MemResult(MemStatus.OK)

    def _op_query(self, command: MemCommand) -> MemResult:
        try:
            entry = self.table.lookup(command.vptr)
        except PointerTableError:
            return MemResult(MemStatus.ERR_INVALID_PTR)
        return MemResult(MemStatus.OK, value=entry.size_bytes)

    # -- timing ------------------------------------------------------------------------------------
    def _cycles_for(self, command: MemCommand, result: MemResult) -> int:
        byte_count = 0
        if command.opcode == MemOpcode.ALLOC:
            byte_count = command.dim * DATA_TYPE_SIZES[command.data_type]
        elif command.opcode in (MemOpcode.READ_ARRAY, MemOpcode.WRITE_ARRAY):
            byte_count = command.dim * 4
        return self.fsm.run_operation(command.opcode, words=self._last_words,
                                      byte_count=byte_count)

    # -- reporting ----------------------------------------------------------------------------------
    def report(self) -> dict:
        """Summary of wrapper activity (used by platform reports and benches)."""
        return {
            "name": self.name,
            "sm_addr": self.sm_addr,
            "live_allocations": self.live_count(),
            "used_bytes": self.used_bytes(),
            "capacity_bytes": self.capacity_bytes,
            "total_allocations": self.table.total_allocations,
            "total_frees": self.table.total_frees,
            "peak_used_bytes": self.table.peak_used_bytes,
            "fsm_cycles": self.fsm.cycles,
            "fsm_occupancy": self.fsm.occupancy(),
            "op_counts": {op.name: count for op, count in self.op_counts.items()},
            "host_stats": self.host.stats.as_dict(),
            "translator_stats": {
                "host_allocs": self.translator.stats.host_allocs,
                "host_frees": self.translator.stats.host_frees,
                "element_reads": self.translator.stats.element_reads,
                "element_writes": self.translator.stats.element_writes,
                "array_elements_moved": self.translator.stats.array_elements_moved,
            },
        }
