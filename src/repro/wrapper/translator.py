"""The wrapper's translator.

The translator is the component of the wrapper's functional part that, led
by the FSM, performs "endianess, data type translation and host machine
functional calls".  Concretely it:

* converts between the simulated architecture's element representation
  (data type width, signedness, byte order) and the host representation,
* maps ALLOC/FREE onto host ``calloc``/``free`` calls,
* performs the native loads/stores on the host blocks for READ/WRITE and
  for the I/O-array (indexed structure) transfers.

It also counts how many host calls and native accesses it performed, which
the benches use to show that wrapper operations cost O(1) host work per
element instead of a simulated allocator walk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..memory.dynamic_base import decode_element, encode_element, to_signed
from ..memory.host_memory import HostAllocationError, HostBlock, HostMemory
from ..memory.protocol import DATA_TYPE_SIZES, DataType, Endianness
from .errors import TranslationError


@dataclass
class TranslatorStats:
    """Work counters of one translator instance."""

    host_allocs: int = 0
    host_frees: int = 0
    element_reads: int = 0
    element_writes: int = 0
    array_elements_moved: int = 0


class Translator:
    """Endianness/data-type translation plus host function call marshalling."""

    def __init__(self, host: HostMemory,
                 endianness: Endianness = Endianness.LITTLE) -> None:
        self.host = host
        self.endianness = endianness
        self.stats = TranslatorStats()

    # -- host management calls ---------------------------------------------------
    def host_calloc(self, dim: int, data_type: DataType) -> HostBlock:
        """Allocate ``dim`` elements of ``data_type`` on the host (calloc)."""
        if dim <= 0:
            raise TranslationError("allocation dimension must be positive")
        try:
            block = self.host.calloc(dim, DATA_TYPE_SIZES[data_type])
        except HostAllocationError as exc:
            raise TranslationError(str(exc)) from exc
        self.stats.host_allocs += 1
        return block

    def host_free(self, block: HostBlock) -> None:
        """Release a host block (free)."""
        self.host.free(block)
        self.stats.host_frees += 1

    # -- scalar element transfers ---------------------------------------------------
    def store_element(self, block: HostBlock, byte_offset: int, value: int,
                      data_type: DataType) -> None:
        """Translate ``value`` and store it into the host block."""
        payload = encode_element(value, data_type, self.endianness)
        block.write_bytes(byte_offset, payload)
        self.stats.element_writes += 1

    def load_element(self, block: HostBlock, byte_offset: int,
                     data_type: DataType) -> int:
        """Load an element from the host block and translate it back."""
        size = DATA_TYPE_SIZES[data_type]
        payload = block.read_bytes(byte_offset, size)
        self.stats.element_reads += 1
        return decode_element(payload, data_type, self.endianness)

    # -- indexed structure (array) transfers --------------------------------------------
    def store_array(self, block: HostBlock, byte_offset: int, values: List[int],
                    data_type: DataType) -> int:
        """Store a list of raw element words into the host block."""
        size = DATA_TYPE_SIZES[data_type]
        payload = bytearray()
        for value in values:
            payload += encode_element(value, data_type, self.endianness)
        block.write_bytes(byte_offset, bytes(payload))
        self.stats.array_elements_moved += len(values)
        return len(values) * size

    def load_array(self, block: HostBlock, byte_offset: int, count: int,
                   data_type: DataType) -> List[int]:
        """Load ``count`` elements from the host block as raw element words."""
        size = DATA_TYPE_SIZES[data_type]
        payload = block.read_bytes(byte_offset, count * size)
        self.stats.array_elements_moved += count
        values = []
        for index in range(count):
            chunk = payload[index * size:(index + 1) * size]
            values.append(decode_element(chunk, data_type, self.endianness)
                          & 0xFFFFFFFF)
        return values

    # -- value reinterpretation helpers ----------------------------------------------------
    @staticmethod
    def as_signed(value: int, data_type: DataType) -> int:
        """Reinterpret a raw register word as a (possibly signed) element value."""
        return to_signed(value, data_type)
