"""The wrapper's cycle-true FSM.

The FSM is the cycle-true part of the wrapper: it receives the transaction
head (opcode + sm_addr), drives the functional part (pointer table and
translator) and paces the whole operation according to the configured delay
parameters.  :class:`WrapperFsm` builds the per-operation *cycle schedule* —
the exact sequence of states the FSM traverses — and steps an underlying
:class:`~repro.kernel.fsm.CycleTrueFsm` through it so that state-occupancy
statistics (how many cycles were spent decoding, calling the host,
transferring data, responding) are available to the evaluation benches.
"""

from __future__ import annotations

from typing import Dict, List

from ..kernel.fsm import CycleTrueFsm
from ..memory.protocol import MemOpcode
from .delays import WrapperDelays

#: FSM state names (Figure 2: Idle, Address/decode, Functional, Write/Read
#: transfer, respond).
S_IDLE = "IDLE"
S_DECODE = "DECODE"
S_TABLE = "TABLE"
S_HOST_CALL = "HOST_CALL"
S_ACCESS = "ACCESS"
S_TRANSFER = "TRANSFER"
S_RESPOND = "RESPOND"

ALL_STATES = (S_IDLE, S_DECODE, S_TABLE, S_HOST_CALL, S_ACCESS, S_TRANSFER, S_RESPOND)


class WrapperFsm:
    """Builds and replays the cycle schedule of every wrapper operation."""

    def __init__(self, delays: WrapperDelays) -> None:
        self.delays = delays
        self._fsm = CycleTrueFsm(S_IDLE)
        self._schedule: List[str] = []
        self._cursor = 0
        for state in ALL_STATES:
            self._fsm.state(state, self._advance)
        #: Number of operations processed, by opcode name.
        self.operations: Dict[str, int] = {}

    # -- schedule construction --------------------------------------------------------
    def schedule_for(self, opcode: MemOpcode, words: int, byte_count: int
                     ) -> List[str]:
        """Return the state sequence for one operation.

        ``words`` is the number of data words moved through the I/O arrays
        (0 for scalar operations), ``byte_count`` the payload size used for
        the data-dependent hook.
        """
        d = self.delays
        schedule: List[str] = [S_DECODE] * max(1, d.decode_cycles)
        if opcode == MemOpcode.ALLOC:
            schedule += [S_TABLE] * d.table_cycles
            schedule += [S_HOST_CALL] * d.host_call_cycles
        elif opcode == MemOpcode.FREE:
            schedule += [S_TABLE] * d.table_cycles
            schedule += [S_HOST_CALL] * d.host_call_cycles
            # Re-compaction of the pointer table happens in the table state.
            schedule += [S_TABLE] * d.table_cycles
        elif opcode in (MemOpcode.READ, MemOpcode.WRITE):
            schedule += [S_TABLE] * d.table_cycles
            schedule += [S_ACCESS] * d.access_cycles
        elif opcode in (MemOpcode.READ_ARRAY, MemOpcode.WRITE_ARRAY):
            schedule += [S_TABLE] * d.table_cycles
            schedule += [S_ACCESS] * d.access_cycles
            schedule += [S_TRANSFER] * (d.per_word_cycles * max(0, words))
        elif opcode in (MemOpcode.RESERVE, MemOpcode.RELEASE, MemOpcode.QUERY):
            schedule += [S_TABLE] * d.table_cycles
        extra = self.delays.extra(opcode, byte_count)
        if extra:
            schedule += [S_ACCESS] * extra
        schedule += [S_RESPOND] * max(1, d.respond_cycles)
        return schedule

    # -- execution ----------------------------------------------------------------------
    def run_operation(self, opcode: MemOpcode, words: int = 0,
                      byte_count: int = 0) -> int:
        """Step the FSM through one operation; returns the cycle count."""
        schedule = self.schedule_for(opcode, words, byte_count)
        self._schedule = schedule
        self._cursor = 0
        # The request arrival edge moves the FSM out of IDLE; each scheduled
        # state is then occupied for exactly one stepped cycle.
        self._fsm.current_state = schedule[0]
        for _ in schedule:
            self._fsm.step()
        self.operations[opcode.name] = self.operations.get(opcode.name, 0) + 1
        return len(schedule)

    def _advance(self) -> str:
        self._cursor += 1
        if self._cursor < len(self._schedule):
            return self._schedule[self._cursor]
        return S_IDLE

    # -- statistics -----------------------------------------------------------------------
    @property
    def cycles(self) -> int:
        """Total cycles stepped (including idle returns)."""
        return self._fsm.cycles

    def occupancy(self) -> Dict[str, int]:
        """Cycles spent in each state since construction."""
        return dict(self._fsm.occupancy)

    def busy_fraction(self) -> float:
        """Fraction of stepped cycles spent outside the idle state."""
        if self._fsm.cycles == 0:
            return 0.0
        return 1.0 - self._fsm.occupancy[S_IDLE] / self._fsm.cycles

    @property
    def state(self) -> str:
        """The FSM's current state name."""
        return self._fsm.current_state
