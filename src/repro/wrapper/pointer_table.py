"""The wrapper's pointer table.

Figure 2 of the paper shows the table at the heart of the wrapper's
functional part.  Each live allocation has one entry holding:

* the **virtual pointer** (Vptr) handed to the simulated software,
* the **host pointer** (Hptr) — here a :class:`~repro.memory.HostBlock`,
* the element **type** and **dimension** of the allocation,
* the **reservation bit** used as a semaphore for data coherence.

Virtual pointers are generated exactly as described in the paper: every new
Vptr is the previous entry's Vptr plus the previous allocation's size in
bytes, and the very first Vptr is zero (an optional ``base_vptr`` shifts the
whole virtual range, which platforms use to give every shared memory its own
virtual window).  On deallocation the entry is removed and the table is
re-compacted; surviving Vptrs never change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..memory.host_memory import HostBlock
from ..memory.protocol import DATA_TYPE_SIZES, DataType
from .errors import PointerTableError


@dataclass
class PointerEntry:
    """One row of the pointer table."""

    vptr: int
    hptr: HostBlock
    dim: int
    data_type: DataType
    reserved_by: Optional[int] = None

    @property
    def element_size(self) -> int:
        """Size in bytes of one element of this allocation."""
        return DATA_TYPE_SIZES[self.data_type]

    @property
    def size_bytes(self) -> int:
        """Total payload size of the allocation in bytes."""
        return self.dim * self.element_size

    @property
    def end_vptr(self) -> int:
        """First virtual address *after* this allocation."""
        return self.vptr + self.size_bytes

    @property
    def reserved(self) -> bool:
        """True when some master holds the reservation bit."""
        return self.reserved_by is not None

    def contains(self, vptr: int) -> bool:
        """True when ``vptr`` points inside this allocation."""
        return self.vptr <= vptr < self.end_vptr


class PointerTable:
    """Ordered table of live allocations with paper-faithful Vptr generation."""

    def __init__(self, capacity_bytes: Optional[int] = None, base_vptr: int = 0) -> None:
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise ValueError("capacity must be positive (or None for unlimited)")
        self.capacity_bytes = capacity_bytes
        self.base_vptr = base_vptr
        self._entries: List[PointerEntry] = []
        #: Running counters used by the evaluation benches.
        self.total_allocations = 0
        self.total_frees = 0
        self.peak_entries = 0
        self.peak_used_bytes = 0

    # -- size accounting -----------------------------------------------------------
    def used_bytes(self) -> int:
        """Sum of the live allocations' sizes."""
        return sum(entry.size_bytes for entry in self._entries)

    def free_bytes(self) -> Optional[int]:
        """Remaining capacity, or ``None`` when the table is unlimited."""
        if self.capacity_bytes is None:
            return None
        return self.capacity_bytes - self.used_bytes()

    def would_fit(self, size_bytes: int) -> bool:
        """True if an allocation of ``size_bytes`` respects the capacity limit."""
        if self.capacity_bytes is None:
            return True
        return self.used_bytes() + size_bytes <= self.capacity_bytes

    # -- Vptr generation ---------------------------------------------------------------
    def next_vptr(self) -> int:
        """The Vptr the next allocation will receive.

        Paper rule: previous entry's Vptr plus previous allocation's size;
        zero (plus the configured base) for the first entry.
        """
        if not self._entries:
            return self.base_vptr
        last = self._entries[-1]
        return last.vptr + last.size_bytes

    # -- table operations ------------------------------------------------------------------
    def insert(self, hptr: HostBlock, dim: int, data_type: DataType) -> PointerEntry:
        """Add a new allocation and return its entry (Vptr already assigned)."""
        if dim <= 0:
            raise PointerTableError("allocation dimension must be positive")
        size_bytes = dim * DATA_TYPE_SIZES[data_type]
        if not self.would_fit(size_bytes):
            raise PointerTableError(
                f"allocation of {size_bytes} bytes exceeds capacity "
                f"{self.capacity_bytes}"
            )
        entry = PointerEntry(self.next_vptr(), hptr, dim, data_type)
        self._entries.append(entry)
        self.total_allocations += 1
        self.peak_entries = max(self.peak_entries, len(self._entries))
        self.peak_used_bytes = max(self.peak_used_bytes, self.used_bytes())
        return entry

    def remove(self, vptr: int) -> PointerEntry:
        """Remove the entry whose Vptr is exactly ``vptr`` and re-compact.

        Re-compaction preserves the order and the Vptrs of the surviving
        entries (only the list is compacted, as in the paper); the freed
        bytes are subtracted from the used total implicitly.
        """
        for index, entry in enumerate(self._entries):
            if entry.vptr == vptr:
                del self._entries[index]
                self.total_frees += 1
                return entry
        raise PointerTableError(f"no allocation with Vptr {vptr:#x}")

    def lookup(self, vptr: int) -> PointerEntry:
        """Find the entry whose Vptr is exactly ``vptr``."""
        for entry in self._entries:
            if entry.vptr == vptr:
                return entry
        raise PointerTableError(f"no allocation with Vptr {vptr:#x}")

    def resolve(self, vptr: int) -> Tuple[PointerEntry, int]:
        """Resolve a possibly-interior pointer to ``(entry, byte_offset)``.

        This implements the paper's pointer-arithmetic support: a Vptr that
        is not in the table is matched against the allocation that contains
        it, and the host pointer is later offset accordingly.
        """
        for entry in self._entries:
            if entry.contains(vptr):
                return entry, vptr - entry.vptr
        raise PointerTableError(f"Vptr {vptr:#x} does not fall in any allocation")

    def try_resolve(self, vptr: int) -> Optional[Tuple[PointerEntry, int]]:
        """Like :meth:`resolve` but returns ``None`` instead of raising."""
        try:
            return self.resolve(vptr)
        except PointerTableError:
            return None

    # -- reservation bits --------------------------------------------------------------------
    def reserve(self, vptr: int, master_id: int) -> PointerEntry:
        """Set the reservation bit of ``vptr`` on behalf of ``master_id``."""
        entry = self.lookup(vptr)
        if entry.reserved and entry.reserved_by != master_id:
            raise PointerTableError(
                f"Vptr {vptr:#x} already reserved by master {entry.reserved_by}"
            )
        entry.reserved_by = master_id
        return entry

    def release(self, vptr: int, master_id: int) -> PointerEntry:
        """Clear the reservation bit (only the holder may clear it)."""
        entry = self.lookup(vptr)
        if entry.reserved and entry.reserved_by != master_id:
            raise PointerTableError(
                f"Vptr {vptr:#x} is reserved by master {entry.reserved_by}"
            )
        entry.reserved_by = None
        return entry

    def check_access(self, entry: PointerEntry, master_id: int) -> bool:
        """True when ``master_id`` may modify ``entry`` (reservation honoured)."""
        return not entry.reserved or entry.reserved_by == master_id

    # -- inspection ---------------------------------------------------------------------------
    @property
    def entries(self) -> List[PointerEntry]:
        """Live entries in table order (oldest first)."""
        return list(self._entries)

    def live_count(self) -> int:
        """Number of live allocations."""
        return len(self._entries)

    def check_consistency(self) -> None:
        """Verify the table invariants (disjoint ranges, capacity respected).

        Note that Vptr ranges may legitimately be *reused* after frees (the
        paper's cumulative generation rule restarts from the last surviving
        entry), so disjointness is only required among live entries.
        """
        for index, entry in enumerate(self._entries):
            if entry.dim <= 0:
                raise PointerTableError("entry with non-positive dimension")
            for other in self._entries[index + 1:]:
                if entry.vptr < other.end_vptr and other.vptr < entry.end_vptr:
                    raise PointerTableError(
                        f"overlapping virtual ranges {entry.vptr:#x} and {other.vptr:#x}"
                    )
        if self.capacity_bytes is not None and self.used_bytes() > self.capacity_bytes:
            raise PointerTableError("capacity limit exceeded")
