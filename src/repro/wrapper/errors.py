"""Exception types raised by the dynamic shared-memory wrapper."""

from __future__ import annotations


class WrapperError(Exception):
    """Base class for wrapper-side errors."""


class PointerTableError(WrapperError):
    """An invalid pointer-table operation (unknown Vptr, duplicate entry...)."""


class CapacityError(WrapperError):
    """An allocation would exceed the simulated memory's configured capacity."""


class ReservationError(WrapperError):
    """A master touched a pointer reserved by another master."""


class TranslationError(WrapperError):
    """The translator could not convert a value or perform a host call."""


class ApiError(WrapperError):
    """A high-level API call failed (carries the returned status code)."""

    def __init__(self, message: str, status: int) -> None:
        super().__init__(message)
        self.status = status
