"""The dynamic shared memory wrapper (the paper's contribution).

The wrapper lets simulated software allocate, access and free dynamic data
that physically lives in *host* memory, while a cycle-true FSM keeps the
simulated timing accurate.  See :class:`SharedMemoryWrapper` for the bus
slave, :class:`SharedMemoryAPI` for the software-side API, and DESIGN.md for
how the pieces map onto Figure 2 of the paper.
"""

from .api import IO_ARRAY_WORDS, SharedMemoryAPI
from .delays import WrapperDelays
from .errors import (
    ApiError,
    CapacityError,
    PointerTableError,
    ReservationError,
    TranslationError,
    WrapperError,
)
from .pointer_table import PointerEntry, PointerTable
from .shared_memory import SharedMemoryWrapper
from .translator import Translator, TranslatorStats
from .wrapper_fsm import (
    S_ACCESS,
    S_DECODE,
    S_HOST_CALL,
    S_IDLE,
    S_RESPOND,
    S_TABLE,
    S_TRANSFER,
    WrapperFsm,
)

__all__ = [
    "ApiError",
    "CapacityError",
    "IO_ARRAY_WORDS",
    "PointerEntry",
    "PointerTable",
    "PointerTableError",
    "ReservationError",
    "S_ACCESS",
    "S_DECODE",
    "S_HOST_CALL",
    "S_IDLE",
    "S_RESPOND",
    "S_TABLE",
    "S_TRANSFER",
    "SharedMemoryAPI",
    "SharedMemoryWrapper",
    "TranslationError",
    "Translator",
    "TranslatorStats",
    "WrapperDelays",
    "WrapperError",
    "WrapperFsm",
]
