"""High-level software API for the dynamic shared memories.

The paper provides the ISSs with "high level APIs very similar to the host
machine functions ... using a C formalism".  :class:`SharedMemoryAPI` is
that layer: a thin, allocation-aware client bound to one master port and one
dynamic memory's bus window.  All methods are generators meant to be driven
with ``yield from`` inside a kernel process (ISS or task processor), because
every call turns into interconnect transactions::

    vptr = yield from smem.alloc(160, DataType.INT16)   # sm_calloc()
    yield from smem.write(vptr, sample, offset=i)       # *(ptr + i) = sample
    value = yield from smem.read(vptr, offset=i)        # sample = *(ptr + i)
    yield from smem.free(vptr)                          # sm_free()

The same API drives both the host-backed wrapper and the fully-modelled
baseline, since they share the protocol of :mod:`repro.memory.protocol`.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from ..fabric import MasterPort
from ..fabric import BusResponse
from ..memory.dynamic_base import to_signed
from ..memory.protocol import (
    IO_ARRAY_BASE,
    IO_ARRAY_BYTES,
    REG_COMMAND,
    REG_STATUS,
    DataType,
    MemCommand,
    MemOpcode,
    MemStatus,
)
from .errors import ApiError

#: Maximum number of words one I/O-array transfer can stage.
IO_ARRAY_WORDS = IO_ARRAY_BYTES // 4


class SharedMemoryAPI:
    """C-formalism dynamic memory API bound to one memory module's window."""

    def __init__(
        self,
        port: MasterPort,
        base_address: int,
        sm_addr: int = 0,
        raise_on_error: bool = True,
        tag_prefix: str = "smem",
    ) -> None:
        self.port = port
        self.base_address = base_address
        self.sm_addr = sm_addr
        self.raise_on_error = raise_on_error
        self.tag_prefix = tag_prefix
        #: Status of the most recent operation (updated on every call).
        self.last_status: MemStatus = MemStatus.OK
        #: Count of API calls issued, for reports.
        self.calls = 0

    # -- low-level helpers ------------------------------------------------------------
    def _command_address(self) -> int:
        return self.base_address + REG_COMMAND

    def _io_array_address(self) -> int:
        return self.base_address + IO_ARRAY_BASE

    def _send(self, command: MemCommand, tag: str
              ) -> Generator[object, None, BusResponse]:
        self.calls += 1
        command.sm_addr = self.sm_addr
        response = yield from self.port.burst_write(
            self._command_address(), command.to_words(),
            tag=f"{self.tag_prefix}.{tag}",
        )
        yield from self._update_status(response, tag)
        return response

    def _update_status(self, response: BusResponse, tag: str
                       ) -> Generator[object, None, None]:
        if response.ok:
            self.last_status = MemStatus.OK
            return
        status_response = yield from self.port.read(
            self.base_address + REG_STATUS, tag=f"{self.tag_prefix}.status"
        )
        try:
            self.last_status = MemStatus(status_response.data)
        except ValueError:
            self.last_status = MemStatus.ERR_MALFORMED
        if self.raise_on_error:
            raise ApiError(
                f"shared-memory operation {tag!r} failed with "
                f"{self.last_status.name}", int(self.last_status)
            )

    # -- management calls ---------------------------------------------------------------
    def alloc(self, dim: int, data_type: DataType = DataType.UINT32
              ) -> Generator[object, None, Optional[int]]:
        """``sm_calloc(dim, type)`` — returns the new Vptr (None on failure)."""
        response = yield from self._send(
            MemCommand(MemOpcode.ALLOC, dim=dim, data_type=data_type), "alloc"
        )
        return response.data if response.ok else None

    def free(self, vptr: int) -> Generator[object, None, bool]:
        """``sm_free(vptr)`` — returns True on success."""
        response = yield from self._send(MemCommand(MemOpcode.FREE, vptr=vptr), "free")
        return response.ok

    def query(self, vptr: int) -> Generator[object, None, Optional[int]]:
        """Size in bytes of the allocation holding ``vptr`` (None if unknown)."""
        response = yield from self._send(MemCommand(MemOpcode.QUERY, vptr=vptr), "query")
        return response.data if response.ok else None

    # -- scalar accesses -----------------------------------------------------------------
    def write(self, vptr: int, value: int, offset: int = 0
              ) -> Generator[object, None, bool]:
        """Store one element at ``vptr[offset]``."""
        response = yield from self._send(
            MemCommand(MemOpcode.WRITE, vptr=vptr, offset=offset,
                       data=value & 0xFFFFFFFF), "write"
        )
        return response.ok

    def read(self, vptr: int, offset: int = 0
             ) -> Generator[object, None, Optional[int]]:
        """Load one element from ``vptr[offset]`` as a raw unsigned word."""
        response = yield from self._send(
            MemCommand(MemOpcode.READ, vptr=vptr, offset=offset), "read"
        )
        return response.data if response.ok else None

    def read_signed(self, vptr: int, data_type: DataType, offset: int = 0
                    ) -> Generator[object, None, Optional[int]]:
        """Load one element and sign-extend it according to ``data_type``."""
        raw = yield from self.read(vptr, offset=offset)
        if raw is None:
            return None
        return to_signed(raw, data_type)

    # -- indexed structure (array) transfers ------------------------------------------------
    def write_array(self, vptr: int, values: List[int], offset: int = 0
                    ) -> Generator[object, None, bool]:
        """Store a whole array, chunked through the I/O array window."""
        position = 0
        while position < len(values):
            chunk = values[position:position + IO_ARRAY_WORDS]
            yield from self.port.burst_write(
                self._io_array_address(), [v & 0xFFFFFFFF for v in chunk],
                tag=f"{self.tag_prefix}.io_stage",
            )
            response = yield from self._send(
                MemCommand(MemOpcode.WRITE_ARRAY, vptr=vptr,
                           offset=offset + position, dim=len(chunk)),
                "write_array",
            )
            if not response.ok:
                return False
            position += len(chunk)
        return True

    def read_array(self, vptr: int, dim: int, offset: int = 0
                   ) -> Generator[object, None, Optional[List[int]]]:
        """Load ``dim`` elements, chunked through the I/O array window."""
        values: List[int] = []
        position = 0
        while position < dim:
            chunk_len = min(IO_ARRAY_WORDS, dim - position)
            response = yield from self._send(
                MemCommand(MemOpcode.READ_ARRAY, vptr=vptr,
                           offset=offset + position, dim=chunk_len),
                "read_array",
            )
            if not response.ok:
                return None
            data = yield from self.port.burst_read(
                self._io_array_address(), chunk_len,
                tag=f"{self.tag_prefix}.io_fetch",
            )
            values.extend(data.burst_data)
            position += chunk_len
        return values

    def read_array_signed(self, vptr: int, dim: int, data_type: DataType,
                          offset: int = 0
                          ) -> Generator[object, None, Optional[List[int]]]:
        """Load ``dim`` elements and sign-extend each according to ``data_type``."""
        raw = yield from self.read_array(vptr, dim, offset=offset)
        if raw is None:
            return None
        return [to_signed(word, data_type) for word in raw]

    # -- coherence -----------------------------------------------------------------------------
    def reserve(self, vptr: int) -> Generator[object, None, bool]:
        """Set the reservation bit of ``vptr`` (semaphore acquire)."""
        response = yield from self._send(MemCommand(MemOpcode.RESERVE, vptr=vptr),
                                         "reserve")
        return response.ok

    def release(self, vptr: int) -> Generator[object, None, bool]:
        """Clear the reservation bit of ``vptr`` (semaphore release)."""
        response = yield from self._send(MemCommand(MemOpcode.RELEASE, vptr=vptr),
                                         "release")
        return response.ok

    def try_reserve(self, vptr: int) -> Generator[object, None, bool]:
        """Non-raising reserve; returns False when another master holds it."""
        saved = self.raise_on_error
        self.raise_on_error = False
        try:
            ok = yield from self.reserve(vptr)
        finally:
            self.raise_on_error = saved
        return ok

    # -- convenience --------------------------------------------------------------------------------
    def memcpy(self, dst_vptr: int, src_vptr: int, dim: int,
               dst_offset: int = 0, src_offset: int = 0
               ) -> Generator[object, None, bool]:
        """Copy ``dim`` elements between two allocations (possibly on one memory)."""
        data = yield from self.read_array(src_vptr, dim, offset=src_offset)
        if data is None:
            return False
        return (yield from self.write_array(dst_vptr, data, offset=dst_offset))

    def status(self) -> Generator[object, None, MemStatus]:
        """Read the memory module's status register."""
        response = yield from self.port.read(self.base_address + REG_STATUS,
                                             tag=f"{self.tag_prefix}.status")
        try:
            return MemStatus(response.data)
        except ValueError:
            return MemStatus.ERR_MALFORMED
