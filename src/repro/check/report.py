"""Sanitizer findings: access sites and formatted reports.

Every runtime checker reports through these two dataclasses so the
platform report (:attr:`SimulationReport.sanitizer_reports`) carries one
uniform, JSON-ready shape and the CLI/tests can format any finding the
same way — always with *both* sites of a two-site finding (TSan style).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

#: One workload stack frame: (filename, line, function).
Frame = Tuple[str, int, str]


@dataclass
class AccessSite:
    """One side of a finding: who touched what, when, and from where."""

    #: Actor label ("pe0", "dma0", "timer0"...).
    master: str
    #: What the actor did ("write", "read", "reserve", "irq raise"...).
    op: str
    #: Simulated time of the access.
    time: int
    #: Shared memory index (-1 when not memory-related).
    mem_index: int = -1
    #: Virtual pointer of the accessed allocation (0 when not applicable).
    vptr: int = 0
    #: Element index inside the allocation (-1 when not applicable).
    element: int = -1
    #: Workload traceback, innermost frame last (empty when stack capture
    #: is disabled or the actor has no generator chain).
    traceback: List[Frame] = field(default_factory=list)

    def location(self) -> str:
        if not self.traceback:
            return "<no workload frames>"
        filename, line, function = self.traceback[-1]
        return f"{filename}:{line} in {function}"

    def describe(self) -> str:
        where = ""
        if self.mem_index >= 0:
            where = f" smem{self.mem_index} vptr={self.vptr:#x}"
            if self.element >= 0:
                where += f"[{self.element}]"
        return (f"{self.master}: {self.op}{where} at t={self.time} "
                f"({self.location()})")

    def as_dict(self) -> dict:
        return {
            "master": self.master,
            "op": self.op,
            "time": self.time,
            "mem_index": self.mem_index,
            "vptr": self.vptr,
            "element": self.element,
            "traceback": [list(frame) for frame in self.traceback],
        }


@dataclass
class SanitizerReport:
    """One finding of one checker, with every involved access site."""

    #: Which checker fired ("data-race", "lock-leak", "reserve-reentry",
    #: "port-lifecycle", "register-misuse", "coherence").
    checker: str
    #: One-line human summary of the finding.
    message: str
    #: Simulated time the finding was detected.
    time: int
    #: The involved access sites — two for a race (previous + current),
    #: one for protocol findings, one per dirty copy for coherence.
    sites: List[AccessSite] = field(default_factory=list)

    def format(self) -> str:
        lines = [f"[{self.checker}] {self.message} (detected at t={self.time})"]
        lines.extend(f"  #{index} {site.describe()}"
                     for index, site in enumerate(self.sites))
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "checker": self.checker,
            "message": self.message,
            "time": self.time,
            "sites": [site.as_dict() for site in self.sites],
        }


class ReportSink:
    """Bounded collector shared by every checker of one suite."""

    def __init__(self, max_reports: int) -> None:
        self.max_reports = max_reports
        self.reports: List[SanitizerReport] = []
        #: Findings seen, including those dropped past the cap.
        self.total = 0

    def emit(self, report: SanitizerReport) -> None:
        self.total += 1
        if len(self.reports) < self.max_reports:
            self.reports.append(report)

    @property
    def dropped(self) -> int:
        return self.total - len(self.reports)

    def by_checker(self, checker: str) -> List[SanitizerReport]:
        return [r for r in self.reports if r.checker == checker]

    def format(self) -> str:
        if not self.reports:
            return "sanitizers: no findings"
        parts = [report.format() for report in self.reports]
        if self.dropped:
            parts.append(f"... and {self.dropped} more finding(s) dropped "
                         f"(max_reports={self.max_reports})")
        return "\n".join(parts)

    def as_dicts(self) -> List[dict]:
        dicts = [report.as_dict() for report in self.reports]
        if self.dropped:
            dicts.append({
                "checker": "meta",
                "message": f"{self.dropped} finding(s) dropped past "
                           f"max_reports={self.max_reports}",
                "time": -1,
                "sites": [],
            })
        return dicts
