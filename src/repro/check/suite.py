"""The sanitizer suite: observer-hook glue between platform and checkers.

One :class:`SanitizerSuite` per sanitized :class:`~repro.soc.platform.Platform`.
The platform registers its actors (PE programs, DMA engines, timers), its
memory and device windows, its interrupt controller and its L1 caches;
the suite consumes three observation streams —

* fabric port hooks (:meth:`on_port_issue` / :meth:`on_port_complete`,
  installed via :meth:`~repro.fabric.base.Fabric.add_port_observer`),
* the kernel's sync-event observer (``Simulator._sync_observer``),
* the interrupt controller's check observer (raise/claim) —

and feeds the race detector, the protocol checkers and the coherence
checker.  A private :class:`~repro.cache.coherence.CoherenceDomain` acts
as the *shadow allocation map*: it replays ALLOC/FREE/RESERVE/RELEASE
commands observed on the fabric, so word state is keyed by allocation
generation uid and vptr reuse never aliases.

Everything here only observes.  No event is notified, no process is
created, no wait is issued: a sanitized run is counter-identical (delta
cycles, activations, timed steps, events fired, simulated time) to the
same run with ``check=None``.

With L1 caches enabled, accesses served from a cache never reach the
fabric and cache-internal traffic (fills, writebacks) is issued by
whichever process triggered the snoop; the race detector therefore skips
cache-tagged transfers — it stays free of false positives but may miss
races hidden by caching.  The coherence checker covers cached platforms.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional

from ..cache.coherence import CoherenceDomain
from ..fabric.transaction import WORD_SIZE, BusOp, BusRequest, BusResponse
from ..memory.protocol import (
    IO_ARRAY_BASE,
    REG_COMMAND,
    REG_LIVE_COUNT,
    REG_RESULT,
    REG_STATUS,
    REG_USED_BYTES,
    MemCommand,
    MemOpcode,
    ProtocolError,
)
from .config import CheckConfig
from .protocol import CoherenceChecker, ProtocolChecker
from .race import RaceDetector
from .report import AccessSite, Frame, ReportSink
from .vclock import Actor

#: Scalar writes to these memory-window offsets are documented read-only.
_MEM_READONLY = frozenset({REG_STATUS, REG_RESULT, REG_LIVE_COUNT,
                           REG_USED_BYTES})

#: Documented read-only word registers per device kind.
_DEVICE_READONLY = {
    "dma": frozenset({9, 10, 11}),        # WORDS_DONE, IRQ_LINE, TRANSFERS
    "timer": frozenset({3}),              # IRQ_LINE
    "irq_controller": frozenset({2}),     # LEVEL (wire state)
}

#: Tags of cache-internal transfers (fills, writebacks, restages): the
#: race detector skips them — they move data on behalf of *some* master
#: through *some* port and carry no software-level ordering.
_CACHE_TAG_SUFFIXES = (".fill", ".writeback", ".restage")


def _mask_lines(mask: int) -> List[int]:
    lines = []
    line = 0
    while mask:
        if mask & 1:
            lines.append(line)
        mask >>= 1
        line += 1
    return lines


def workload_frames(process) -> List[Frame]:
    """The ``yield from`` chain of a suspended process, outermost first."""
    frames: List[Frame] = []
    generator = getattr(process, "_generator", None)
    while generator is not None and hasattr(generator, "gi_frame"):
        frame = generator.gi_frame
        if frame is not None:
            code = frame.f_code
            frames.append((code.co_filename, frame.f_lineno, code.co_name))
        generator = getattr(generator, "gi_yieldfrom", None)
    return frames


class _Window:
    """One decoded address window (memory module or device)."""

    __slots__ = ("base", "size", "kind", "name", "mem_index", "device_actor",
                 "readonly")

    def __init__(self, base: int, size: int, kind: str, name: str,
                 mem_index: int = -1, device_actor: Optional[Actor] = None,
                 readonly: frozenset = frozenset()) -> None:
        self.base = base
        self.size = size
        self.kind = kind
        self.name = name
        self.mem_index = mem_index
        self.device_actor = device_actor
        self.readonly = readonly


class SanitizerSuite:
    """Runtime sanitizers of one platform run (see module docstring)."""

    def __init__(self, config: CheckConfig, fabric) -> None:
        self.config = config
        self._fabric = fabric
        self.sink = ReportSink(config.max_reports)
        self.race: Optional[RaceDetector] = (
            RaceDetector(self.sink) if config.race else None)
        self.protocol: Optional[ProtocolChecker] = (
            ProtocolChecker(self.sink) if config.protocol else None)
        self.coherence: Optional[CoherenceChecker] = None
        #: Shadow allocation map replayed from observed fabric commands.
        self.shadow = CoherenceDomain()
        self._windows: List[_Window] = []
        self._window_bases: List[int] = []
        self._actor_of_process: Dict[object, Actor] = {}
        self._process_of_actor: Dict[Actor, object] = {}
        self._labels: Dict[Actor, str] = {}
        self._controller_base: Optional[int] = None
        self._simulator = None
        self._finished = False

    # -- registration (called by the platform while building) ---------------------
    def register_actor(self, actor: Actor, label: str,
                       process=None) -> None:
        """Declare a synchronisation-carrying actor (PE, DMA engine...)."""
        self._labels[actor] = label
        if self.race is not None:
            self.race.register_actor(actor, label)
        if process is not None:
            self._actor_of_process[process] = actor
            self._process_of_actor[actor] = process

    def register_memory_window(self, base: int, size: int,
                               mem_index: int) -> None:
        self._add_window(_Window(base, size, "mem", f"smem{mem_index}",
                                 mem_index=mem_index))

    def register_device_window(self, base: int, size: int, kind: str,
                               name: str,
                               device_actor: Optional[Actor] = None) -> None:
        self._add_window(_Window(
            base, size, kind, name, device_actor=device_actor,
            readonly=_DEVICE_READONLY.get(kind, frozenset())))
        if kind == "irq_controller":
            self._controller_base = base

    def _add_window(self, window: _Window) -> None:
        index = bisect.bisect_left(self._window_bases, window.base)
        self._window_bases.insert(index, window.base)
        self._windows.insert(index, window)

    def register_controller(self, controller) -> None:
        """Install this suite as the controller's check observer."""
        controller.check_observer = self

    def register_caches(self, caches: List[object]) -> None:
        if self.config.coherence and caches:
            self.coherence = CoherenceChecker(self.sink, caches)

    def install(self, simulator) -> None:
        """Bind the kernel's sync-event observer to this suite."""
        self._simulator = simulator
        simulator._sync_observer = self.on_kernel_sync

    # -- shared helpers ------------------------------------------------------------
    def _find_window(self, address: int) -> Optional[_Window]:
        index = bisect.bisect_right(self._window_bases, address) - 1
        if index < 0:
            return None
        window = self._windows[index]
        if address < window.base + window.size:
            return window
        return None

    def _now(self) -> int:
        return self._fabric.sim_now()

    def _label(self, actor: Actor) -> str:
        return self._labels.get(actor, f"master{actor}")

    def _site(self, actor: Actor, op: str, time: int, mem_index: int = -1,
              vptr: int = 0, element: int = -1) -> AccessSite:
        traceback: List[Frame] = []
        if self.config.capture_stacks:
            process = self._process_of_actor.get(actor)
            if process is not None:
                traceback = workload_frames(process)
        return AccessSite(master=self._label(actor), op=op, time=time,
                          mem_index=mem_index, vptr=vptr, element=element,
                          traceback=traceback)

    # -- fabric port hooks -----------------------------------------------------------
    def on_port_issue(self, port, request: BusRequest) -> None:
        time = self._now()
        if self.protocol is not None:
            self.protocol.port_issued(port, self._port_label(port, request),
                                      time)
        race = self.race
        if race is None or request.op is not BusOp.WRITE:
            return
        actor = request.master_id
        if not race.is_actor(actor):
            return
        window = self._find_window(request.address)
        if window is None or window.kind == "mem":
            return
        # A doorbell: the writer's clock is published at *issue* time —
        # deliberately early (the device may act any time after), which
        # can only under-approximate the edge, never invent one.
        race.device_write_edge(actor, window.base, window.device_actor)

    def on_port_complete(self, port, request: BusRequest,
                         response: BusResponse) -> None:
        time = self._now()
        if self.protocol is not None:
            self.protocol.port_completed(port,
                                         self._port_label(port, request),
                                         time)
        window = self._find_window(request.address)
        if window is None:
            return
        if window.kind == "mem":
            self._memory_access(window, request, response, time)
        else:
            self._device_access(window, request, time)

    @staticmethod
    def _port_label(port, request: BusRequest) -> str:
        name = getattr(port, "name", "")
        return name or f"master{request.master_id}"

    # -- device-window accesses --------------------------------------------------------
    def _device_access(self, window: _Window, request: BusRequest,
                       time: int) -> None:
        if self.protocol is None:
            return
        offset = request.address - window.base
        actor = request.master_id
        if not request.is_burst and request.size != WORD_SIZE:
            self.protocol.register_misuse(
                f"{self._label(actor)}: {request.size}-byte access to "
                f"{window.name}+{offset:#x} (registers are word-access "
                f"only)",
                self._site(actor, "sub-word access", time))
            return
        if request.op is BusOp.WRITE and not request.is_burst \
                and offset % WORD_SIZE == 0 \
                and offset // WORD_SIZE in window.readonly:
            self.protocol.register_misuse(
                f"{self._label(actor)}: write to read-only register "
                f"{window.name}+{offset:#x} (silently ignored by the "
                f"device)",
                self._site(actor, "read-only write", time))

    # -- memory-window accesses --------------------------------------------------------
    def _memory_access(self, window: _Window, request: BusRequest,
                       response: BusResponse, time: int) -> None:
        offset = request.address - window.base
        actor = request.master_id
        if self.protocol is not None and offset < IO_ARRAY_BASE:
            if not request.is_burst and request.size != WORD_SIZE:
                self.protocol.register_misuse(
                    f"{self._label(actor)}: {request.size}-byte access to "
                    f"{window.name}+{offset:#x} (memory registers are "
                    f"word-access only)",
                    self._site(actor, "sub-word access", time))
            elif request.op is BusOp.WRITE and not request.is_burst \
                    and offset in _MEM_READONLY:
                self.protocol.register_misuse(
                    f"{self._label(actor)}: write to read-only register "
                    f"{window.name}+{offset:#x}",
                    self._site(actor, "read-only write", time))
        if (offset != REG_COMMAND or request.op is not BusOp.WRITE
                or request.burst_data is None):
            return
        try:
            command = MemCommand.from_words(list(request.burst_data))
        except ProtocolError:
            return
        self._memory_command(window.mem_index, actor, command, request,
                             response, time)

    def _memory_command(self, mem_index: int, actor: Actor,
                        command: MemCommand, request: BusRequest,
                        response: BusResponse, time: int) -> None:
        ok = response.ok
        opcode = command.opcode
        shadow = self.shadow
        race = self.race
        tracked = race is not None and race.is_actor(actor)
        cache_internal = request.tag.endswith(_CACHE_TAG_SUFFIXES)
        if tracked and not cache_internal:
            race.begin_op(actor)

        if opcode is MemOpcode.ALLOC:
            if ok and command.dim > 0:
                shadow.on_alloc(mem_index, response.data, command.dim,
                                command.data_type)
            return

        alloc = shadow.find_alloc(mem_index, command.vptr)

        if opcode is MemOpcode.FREE:
            if not ok or alloc is None:
                return
            key = (mem_index, alloc.uid)
            if tracked and not cache_internal:
                race.free_alloc(actor, key, self._site(
                    actor, "free", time, mem_index, command.vptr, -1))
            elif race is not None:
                race.words.pop(key, None)
                race.lock_vc.pop(key, None)
            if self.protocol is not None:
                self.protocol.freed(key)
            shadow.on_free(alloc)
            self._scan_coherence(time)
            return

        if opcode is MemOpcode.RESERVE:
            if not ok or alloc is None:
                return
            key = (mem_index, alloc.uid)
            if tracked:
                race.acquire(actor, key)
            if self.protocol is not None:
                self.protocol.reserved(key, self._label(actor), command.vptr,
                                       self._site(actor, "reserve", time,
                                                  mem_index, command.vptr))
            shadow.on_reserve(alloc, actor if isinstance(actor, int) else -1)
            self._scan_coherence(time)
            return

        if opcode is MemOpcode.RELEASE:
            if not ok or alloc is None:
                return
            key = (mem_index, alloc.uid)
            if tracked:
                race.release(actor, key)
            if self.protocol is not None:
                self.protocol.released(key)
            shadow.on_release(alloc)
            self._scan_coherence(time)
            return

        if not ok or not tracked or cache_internal:
            return

        if opcode is MemOpcode.WRITE:
            located = shadow.resolve(mem_index, command.vptr, command.offset)
            if located is not None:
                alloc, element = located
                race.atomic_write(actor, (mem_index, alloc.uid), element,
                                  self._site(actor, "scalar write", time,
                                             mem_index, command.vptr,
                                             element))
        elif opcode is MemOpcode.READ:
            located = shadow.resolve(mem_index, command.vptr, command.offset)
            if located is not None:
                alloc, element = located
                race.atomic_read(actor, (mem_index, alloc.uid), element,
                                 self._site(actor, "scalar read", time,
                                            mem_index, command.vptr,
                                            element))
        elif opcode is MemOpcode.WRITE_ARRAY:
            located = shadow.resolve_range(mem_index, command.vptr,
                                           command.offset, command.dim)
            if located is not None:
                alloc, start = located
                race.plain_write(actor, (mem_index, alloc.uid),
                                 range(start, start + command.dim),
                                 self._site(actor, "array write", time,
                                            mem_index, command.vptr, start))
        elif opcode is MemOpcode.READ_ARRAY:
            located = shadow.resolve_range(mem_index, command.vptr,
                                           command.offset, command.dim)
            if located is not None:
                alloc, start = located
                race.plain_read(actor, (mem_index, alloc.uid),
                                range(start, start + command.dim),
                                self._site(actor, "array read", time,
                                           mem_index, command.vptr, start))

    # -- kernel sync-event observer ----------------------------------------------------
    def on_kernel_sync(self, kind: str, event, process) -> None:
        race = self.race
        if race is None or process is None:
            return
        actor = self._actor_of_process.get(process)
        if actor is None:
            return
        if kind == "notify":
            race.kernel_notify(actor, event)
        else:
            race.kernel_wake(actor, event)

    # -- interrupt-controller observer (see dev.irq) -----------------------------------
    def irq_raised(self, mask: int) -> None:
        race = self.race
        if race is None:
            return
        raiser: Optional[Actor] = None
        if self._simulator is not None:
            process = getattr(self._simulator, "_current_process", None)
            if process is not None:
                raiser = self._actor_of_process.get(process)
        race.irq_raised(_mask_lines(mask), raiser, self._controller_base)

    def irq_claimed(self, pe_id: int, mask: int) -> None:
        if self.race is not None:
            self.race.irq_claimed(pe_id, _mask_lines(mask))

    # -- coherence scans ---------------------------------------------------------------
    def _scan_coherence(self, time: int) -> None:
        if self.coherence is not None:
            self.coherence.scan(time)

    # -- end of simulation -------------------------------------------------------------
    def finish(self, now: int) -> None:
        if self._finished:
            return
        self._finished = True
        if self.protocol is not None:
            self.protocol.finish(now)
        if self.coherence is not None:
            self.coherence.scan(now)

    # -- results -----------------------------------------------------------------------
    @property
    def reports(self) -> List[dict]:
        return self.sink.as_dicts()

    def counts(self) -> Dict[str, int]:
        counters: Dict[str, int] = {"total": self.sink.total}
        if self.race is not None:
            counters["data_races"] = self.race.races
        if self.protocol is not None:
            counters["lock_leaks"] = self.protocol.lock_leaks
            counters["reserve_reentries"] = self.protocol.reentries
            counters["lifecycle_violations"] = \
                self.protocol.lifecycle_violations
            counters["register_misuses"] = self.protocol.register_misuses
        if self.coherence is not None:
            counters["coherence_violations"] = self.coherence.violations
        return counters

    def format(self) -> str:
        return self.sink.format()
