"""Configuration of the simulation sanitizers.

A :class:`CheckConfig` on :attr:`repro.soc.config.PlatformConfig.check`
(builder: ``.sanitize()``) arms the runtime sanitizer suite of
:mod:`repro.check`.  The config is frozen so scenario sharding can pickle
platform configs, exactly like :class:`~repro.cache.config.CacheConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CheckConfig:
    """What the sanitizer suite observes during a simulation.

    Sanitizers only *observe*: with any combination of checkers enabled
    the simulated time and the golden scheduler counters are identical to
    a run with ``check=None``.
    """

    #: Happens-before data-race detection over shared-memory words.
    race: bool = True
    #: Protocol checkers: lock leaks, reserve re-entry, port lifecycle,
    #: register misuse.
    protocol: bool = True
    #: Coherence invariant: never two dirty L1 copies of the same line.
    coherence: bool = True
    #: Reports beyond this cap are counted but not recorded (a racy loop
    #: would otherwise flood the report with one entry per word).
    max_reports: int = 32
    #: Capture the workload traceback (file:line chain through
    #: ``yield from``) at every access site.  Costs a frame walk per
    #: transfer; disable for sanitized perf sweeps.
    capture_stacks: bool = True

    def __post_init__(self) -> None:
        if self.max_reports <= 0:
            raise ValueError("max_reports must be positive")
        if not (self.race or self.protocol or self.coherence):
            raise ValueError(
                "CheckConfig with every checker disabled checks nothing; "
                "use check=None instead"
            )

    def describe(self) -> str:
        enabled = [name for name, on in (("race", self.race),
                                         ("protocol", self.protocol),
                                         ("coherence", self.coherence)) if on]
        return "+".join(enabled)
