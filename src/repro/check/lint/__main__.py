"""CLI: ``python -m repro.check.lint [paths...]``.

Prints ``path:line:col CODE message`` per finding and exits 1 when any
finding was produced (0 on a clean run), so it slots straight into CI.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .engine import lint_paths, select_rules
from .rules import RULES


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check.lint",
        description="Static lint for simulated task/workload code.",
    )
    parser.add_argument("paths", nargs="*", default=["."],
                        help="files or directories to lint (default: .)")
    parser.add_argument("--select", action="append", default=None,
                        metavar="CODE",
                        help="only run rules whose code starts with CODE "
                             "(repeatable)")
    parser.add_argument("--list-rules", action="store_true",
                        help="list the registered rules and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for code in sorted(RULES):
            rule = RULES[code]
            print(f"{code} {rule.name}: {rule.summary}")
        return 0

    try:
        select_rules(args.select)
    except ValueError as exc:
        parser.error(str(exc))

    findings = lint_paths(args.paths or ["."], select=args.select)
    for finding in findings:
        print(finding.format())
    if findings:
        print(f"{len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
