"""Lint rules for workload/task code (rule-registry architecture).

Each rule is a class registered under a stable code (``RC001``...), like
ruff's rule registry: the engine instantiates every selected rule per
file and feeds it the parsed AST.  Rules only need the AST and the file
path — no imports are executed, so the lint runs on any Python source.

The flagship rule is **RC001**: the platform's software APIs
(:class:`~repro.wrapper.api.SharedMemoryAPI`,
:class:`~repro.sw.task.TaskContext`, the DMA driver, master ports) are
*generator functions* that must be driven with ``yield from``; calling
one as a statement silently creates a generator object and does
nothing — the single most common latent bug in simulated task code.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Set, Type

#: Generator-API method names that are unambiguous on any receiver.
API_GENERATOR_NAMES: Set[str] = {
    # SharedMemoryAPI
    "alloc", "read_signed", "write_array", "read_array",
    "read_array_signed", "reserve", "release", "try_reserve", "memcpy",
    # TaskContext
    "compute", "compute_ops", "set_flag", "wait_flag", "barrier",
    "wait_irq",
    # DmaDriver
    "read_reg", "write_reg",
    # MasterPort
    "burst_read", "burst_write",
}

#: Generator-API names too generic to flag on arbitrary receivers
#: (``f.write(...)`` is file IO, ``event.wait()`` is threading): these
#: are only flagged when the receiver expression *looks like* a platform
#: API handle.
GENERIC_API_NAMES: Set[str] = {
    "write", "read", "free", "query", "status", "flush", "wait", "start",
    "copy", "transfer",
    # raise_irq is a generator on TaskContext (a bus doorbell write) but a
    # plain method on the device-side InterruptController.
    "raise_irq",
}

#: Receiver-source substrings identifying a platform API handle.
API_RECEIVER_HINTS = ("smem", "mem", "api", "ctx", "port", "dma", "driver",
                      "task", "wrapper")

#: ``random`` module functions whose unseeded use makes a run
#: irreproducible.
RANDOM_FUNCTIONS: Set[str] = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "randbytes", "getrandbits", "betavariate",
    "expovariate",
}


@dataclass(frozen=True)
class Finding:
    """One lint finding, ready for ``path:line:col CODE message``."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col} {self.code} {self.message}"


#: The rule registry: code -> rule class.
RULES: Dict[str, Type["Rule"]] = {}


def register(rule_class: Type["Rule"]) -> Type["Rule"]:
    if rule_class.code in RULES:
        raise ValueError(f"duplicate rule code {rule_class.code}")
    RULES[rule_class.code] = rule_class
    return rule_class


class Rule:
    """Base class: one instance checks one file."""

    code = ""
    name = ""
    summary = ""

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, path: str, node: ast.AST, message: str) -> Finding:
        return Finding(path=path, line=getattr(node, "lineno", 0),
                       col=getattr(node, "col_offset", 0), code=self.code,
                       message=message)


def iter_functions(tree: ast.Module) -> Iterator[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def own_statements(function: ast.AST) -> Iterator[ast.AST]:
    """Every node of ``function`` excluding nested function/lambda bodies."""
    stack = list(ast.iter_child_nodes(function))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def is_generator(function: ast.AST) -> bool:
    return any(isinstance(node, (ast.Yield, ast.YieldFrom))
               for node in own_statements(function))


def api_generator_call(call: ast.expr) -> bool:
    """True when ``call`` is a platform generator-API method call."""
    if not isinstance(call, ast.Call) or not isinstance(call.func,
                                                        ast.Attribute):
        return False
    name = call.func.attr
    if name in API_GENERATOR_NAMES:
        return True
    if name in GENERIC_API_NAMES:
        receiver = ast.unparse(call.func.value).lower()
        return any(hint in receiver for hint in API_RECEIVER_HINTS)
    return False


@register
class UnconsumedGeneratorCall(Rule):
    """A generator-API call whose generator is never driven."""

    code = "RC001"
    name = "unconsumed-generator-call"
    summary = ("generator-API call without `yield from` silently does "
               "nothing")

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        for function in iter_functions(tree):
            if not is_generator(function):
                continue
            for node in own_statements(function):
                call = None
                if isinstance(node, ast.Expr):
                    call = node.value
                elif isinstance(node, ast.Assign):
                    call = node.value
                if call is None or not api_generator_call(call):
                    continue
                assert isinstance(call, ast.Call)
                assert isinstance(call.func, ast.Attribute)
                yield self.finding(
                    path, node,
                    f"`{ast.unparse(call.func)}(...)` returns a generator "
                    f"that is never driven; use `yield from` (or iterate "
                    f"it) or the call does nothing")


@register
class HostSleepInTask(Rule):
    """``time.sleep`` blocks the host, not simulated time."""

    code = "RC002"
    name = "host-sleep"
    summary = "time.sleep in simulation code (blocks the host process)"

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        time_aliases: Set[str] = set()
        sleep_names: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        time_aliases.add(alias.asname or "time")
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name == "sleep":
                        sleep_names.add(alias.asname or "sleep")
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (isinstance(func, ast.Attribute) and func.attr == "sleep"
                    and isinstance(func.value, ast.Name)
                    and func.value.id in time_aliases):
                yield self.finding(path, node,
                                   "time.sleep() stalls the host process, "
                                   "not simulated time; yield a wait "
                                   "instead")
            elif isinstance(func, ast.Name) and func.id in sleep_names:
                yield self.finding(path, node,
                                   "sleep() stalls the host process, not "
                                   "simulated time; yield a wait instead")


@register
class UnseededRandom(Rule):
    """Module-level ``random`` without a seed breaks reproducibility."""

    code = "RC003"
    name = "unseeded-random"
    summary = "unseeded random.* call (irreproducible simulation)"

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        seeded = any(
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "seed"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "random"
            for node in ast.walk(tree))
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "random"):
                continue
            if func.attr == "Random" and not node.args and not node.keywords:
                yield self.finding(path, node,
                                   "random.Random() without a seed is "
                                   "irreproducible; pass an explicit seed")
            elif func.attr in RANDOM_FUNCTIONS and not seeded:
                yield self.finding(path, node,
                                   f"random.{func.attr}() uses the shared "
                                   f"unseeded generator; seed it or use "
                                   f"random.Random(seed)")


@register
class ReserveWithoutRelease(Rule):
    """``reserve`` with no matching ``release`` on any path of the
    function leaks the allocation's semaphore (a lock leak the runtime
    sanitizer reports at end-of-sim — this catches it statically)."""

    code = "RC004"
    name = "reserve-without-release"
    summary = "reserve/try_reserve without a release on the same receiver"

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        for function in iter_functions(tree):
            reserves: List[ast.Call] = []
            released: Set[str] = set()
            for node in own_statements(function):
                if not (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)):
                    continue
                receiver = ast.unparse(node.func.value)
                if node.func.attr in ("reserve", "try_reserve"):
                    if receiver == "self" or receiver.startswith("self."):
                        continue  # API-internal wrappers manage their own
                    reserves.append(node)
                elif node.func.attr == "release":
                    released.add(receiver)
            for call in reserves:
                assert isinstance(call.func, ast.Attribute)
                receiver = ast.unparse(call.func.value)
                if receiver not in released:
                    yield self.finding(
                        path, call,
                        f"`{receiver}.{call.func.attr}(...)` has no "
                        f"`{receiver}.release(...)` anywhere in this "
                        f"function — the reservation leaks on every exit "
                        f"path")
