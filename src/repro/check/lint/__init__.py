"""Static lint for task/workload code (see ``python -m repro.check.lint``)."""

from .engine import lint_paths, lint_source, select_rules
from .rules import RULES, Finding, Rule

__all__ = ["RULES", "Finding", "Rule", "lint_paths", "lint_source",
           "select_rules"]
