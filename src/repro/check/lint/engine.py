"""Lint engine: walk paths, parse files, run the selected rules."""

from __future__ import annotations

import ast
import os
import re
from typing import Iterable, List, Optional, Sequence

from .rules import RULES, Finding

#: ``# noqa`` (suppress everything on the line) or ``# noqa: RC001,RC004``
#: (suppress the listed codes), matching the ruff/flake8 convention.
_NOQA = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9,\s]+))?", re.IGNORECASE)


def _suppressed(finding: Finding, lines: Sequence[str]) -> bool:
    if not 1 <= finding.line <= len(lines):
        return False
    match = _NOQA.search(lines[finding.line - 1])
    if match is None:
        return False
    codes = match.group("codes")
    if codes is None:
        return True
    return finding.code in {c.strip().upper() for c in codes.split(",")}


def iter_python_files(paths: Sequence[str]) -> Iterable[str]:
    """Every ``.py`` file under ``paths`` (files pass through directly)."""
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(d for d in dirnames
                                 if not d.startswith((".", "__pycache__")))
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield os.path.join(dirpath, filename)


def select_rules(select: Optional[Sequence[str]] = None) -> List[type]:
    """Rule classes matching ``select`` prefixes (all when ``None``)."""
    if not select:
        return [RULES[code] for code in sorted(RULES)]
    chosen = []
    for code in sorted(RULES):
        if any(code.startswith(prefix) for prefix in select):
            chosen.append(RULES[code])
    if not chosen:
        raise ValueError(f"--select {list(select)} matches no rule "
                         f"(known: {sorted(RULES)})")
    return chosen


def lint_source(source: str, path: str,
                select: Optional[Sequence[str]] = None) -> List[Finding]:
    """Lint one already-read source string (unit-test entry point)."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(path=path, line=exc.lineno or 0,
                        col=exc.offset or 0, code="RC000",
                        message=f"syntax error: {exc.msg}")]
    lines = source.splitlines()
    findings: List[Finding] = []
    for rule_class in select_rules(select):
        findings.extend(f for f in rule_class().check(tree, path)
                        if not _suppressed(f, lines))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def lint_paths(paths: Sequence[str],
               select: Optional[Sequence[str]] = None) -> List[Finding]:
    """Lint every Python file under ``paths``."""
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        try:
            with open(path, encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            findings.append(Finding(path=path, line=0, col=0, code="RC000",
                                    message=f"cannot read file: {exc}"))
            continue
        findings.extend(lint_source(source, path, select=select))
    return findings
