"""repro.check: simulation sanitizers and a static lint for task code.

Two heads:

* **Runtime sanitizers** (:class:`SanitizerSuite`, armed by a
  :class:`CheckConfig` on ``PlatformConfig.check`` / the builder's
  ``.sanitize()``): a happens-before data-race detector over fabric
  transactions plus cheap protocol checkers (lock leaks, reserve
  re-entry, port lifecycle, register misuse, L1 dirty-dirty coherence).
  Findings land in ``SimulationReport.sanitizer_reports``.
* **Static lint** (:mod:`repro.check.lint`, ``python -m
  repro.check.lint``): an AST rule registry that flags un-consumed
  generator-API calls (missing ``yield from``), nondeterminism
  (``time.sleep``, unseeded ``random``) and ``reserve`` without
  ``release`` in workload/task code.
"""

from .config import CheckConfig
from .race import RaceDetector
from .report import AccessSite, ReportSink, SanitizerReport
from .protocol import CoherenceChecker, ProtocolChecker
from .suite import SanitizerSuite, workload_frames
from .vclock import VectorClock

__all__ = [
    "AccessSite",
    "CheckConfig",
    "CoherenceChecker",
    "ProtocolChecker",
    "RaceDetector",
    "ReportSink",
    "SanitizerReport",
    "SanitizerSuite",
    "VectorClock",
    "workload_frames",
]
