"""Cheap protocol checkers riding the sanitizer suite's observer hooks.

Unlike the happens-before analysis these are simple state machines:

* **lock-leak** — an allocation's reservation bit still held when the
  simulation ends (the embedded analog of a mutex destroyed while
  locked);
* **reserve-reentry** — a master RESERVEs an allocation it already
  holds (the wrapper serialises the two, but the software pattern is a
  self-deadlock on a real semaphore);
* **port-lifecycle** — a master port issues a transfer while one is
  outstanding, or completes one that was never issued (a corrupted
  issue/complete pairing would silently skew every latency statistic);
* **register-misuse** — writes to documented read-only registers and
  sub-word accesses to register windows (both silently ignored or
  NACKed by the hardware model, so software bugs of this class are
  invisible without a checker);
* **coherence** (:class:`CoherenceChecker`) — two L1 caches must never
  hold dirty copies of overlapping bytes of one allocation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .report import AccessSite, ReportSink, SanitizerReport


class ProtocolChecker:
    """Lock, port-lifecycle and register-misuse state machines."""

    def __init__(self, sink: ReportSink) -> None:
        self.sink = sink
        #: (mem_index, alloc uid) -> (holder label, vptr, acquire site).
        self.held: Dict[Tuple[int, int], Tuple[str, int, AccessSite]] = {}
        #: id(port) -> (label, outstanding issue count, last issue time).
        self._ports: Dict[int, Tuple[str, int, int]] = {}
        self.lock_leaks = 0
        self.reentries = 0
        self.lifecycle_violations = 0
        self.register_misuses = 0

    # -- reservations ------------------------------------------------------------
    def reserved(self, key: Tuple[int, int], label: str, vptr: int,
                 site: AccessSite) -> None:
        holder = self.held.get(key)
        if holder is not None and holder[0] == label:
            self.reentries += 1
            self.sink.emit(SanitizerReport(
                checker="reserve-reentry",
                message=(f"{label} RESERVEs smem{key[0]} vptr={vptr:#x} "
                         f"while already holding it (self-deadlock on a "
                         f"real semaphore)"),
                time=site.time,
                sites=[holder[2], site],
            ))
            return
        self.held[key] = (label, vptr, site)

    def released(self, key: Tuple[int, int]) -> None:
        self.held.pop(key, None)

    def freed(self, key: Tuple[int, int]) -> None:
        """FREE of a reserved allocation implicitly drops the bit."""
        self.held.pop(key, None)

    # -- master-port lifecycle -----------------------------------------------------
    def port_issued(self, port: object, label: str, time: int,
                    site: Optional[AccessSite] = None) -> None:
        name, outstanding, _ = self._ports.get(id(port), (label, 0, 0))
        if outstanding:
            self.lifecycle_violations += 1
            self.sink.emit(SanitizerReport(
                checker="port-lifecycle",
                message=(f"{name} issues a transfer with {outstanding} "
                         f"still outstanding (master ports are single-"
                         f"outstanding by contract)"),
                time=time,
                sites=[site] if site is not None else [],
            ))
        self._ports[id(port)] = (label, outstanding + 1, time)

    def port_completed(self, port: object, label: str, time: int) -> None:
        name, outstanding, issue_time = self._ports.get(id(port),
                                                        (label, 0, 0))
        if outstanding <= 0:
            self.lifecycle_violations += 1
            self.sink.emit(SanitizerReport(
                checker="port-lifecycle",
                message=(f"{name} completes a transfer that was never "
                         f"issued"),
                time=time,
                sites=[],
            ))
            return
        self._ports[id(port)] = (name, outstanding - 1, issue_time)

    # -- register misuse -----------------------------------------------------------
    def register_misuse(self, message: str, site: AccessSite) -> None:
        self.register_misuses += 1
        self.sink.emit(SanitizerReport(
            checker="register-misuse",
            message=message,
            time=site.time,
            sites=[site],
        ))

    # -- end of simulation -----------------------------------------------------------
    def finish(self, now: int) -> None:
        for (mem_index, _uid), (label, vptr, site) in sorted(
                self.held.items(), key=lambda item: item[0]):
            self.lock_leaks += 1
            self.sink.emit(SanitizerReport(
                checker="lock-leak",
                message=(f"smem{mem_index} vptr={vptr:#x} is still "
                         f"RESERVEd by {label} at the end of the "
                         f"simulation (missing release)"),
                time=now,
                sites=[site],
            ))


class CoherenceChecker:
    """Invariant: never two dirty L1 copies of overlapping bytes."""

    def __init__(self, sink: ReportSink, caches: List[object]) -> None:
        self.sink = sink
        self.caches = list(caches)
        self.violations = 0
        self._reported: set = set()

    def scan(self, now: int) -> int:
        """Check every pair of caches; returns violations found this scan."""
        found = 0
        for index, cache in enumerate(self.caches):
            for line in cache.iter_lines():
                if not line.has_dirty():
                    continue
                for other_cache in self.caches[index + 1:]:
                    for other in other_cache.lines_overlapping(
                            line.mem_index, line.lo_byte, line.hi_byte):
                        if not other.has_dirty():
                            continue
                        key = (cache.master_id, other_cache.master_id,
                               line.mem_index, line.alloc.uid, line.line_no)
                        if key in self._reported:
                            continue
                        self._reported.add(key)
                        self.violations += 1
                        found += 1
                        self.sink.emit(SanitizerReport(
                            checker="coherence",
                            message=(f"dirty-dirty: caches of master "
                                     f"{cache.master_id} and master "
                                     f"{other_cache.master_id} both hold "
                                     f"dirty bytes of smem{line.mem_index} "
                                     f"vptr={line.alloc.vptr:#x} "
                                     f"[{line.lo_byte:#x}, "
                                     f"{line.hi_byte:#x})"),
                            time=now,
                            sites=[
                                AccessSite(
                                    master=f"master{cache.master_id}",
                                    op="dirty line",
                                    time=now, mem_index=line.mem_index,
                                    vptr=line.alloc.vptr),
                                AccessSite(
                                    master=f"master{other_cache.master_id}",
                                    op="dirty line",
                                    time=now, mem_index=other.mem_index,
                                    vptr=other.alloc.vptr),
                            ],
                        ))
        return found
