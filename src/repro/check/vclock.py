"""Vector clocks for the happens-before race detector.

Clocks are plain ``dict`` subclasses mapping *actor* ids (fabric master
ids, or string pseudo-actors for device processes) to logical times.  An
*epoch* is the FastTrack-style compressed last-access record ``(actor,
clock)``: a full clock is only needed where several actors may race on
the same word concurrently (read sets), everywhere else one epoch
suffices.
"""

from __future__ import annotations

from typing import Hashable, Optional, Tuple

#: An actor id: fabric master id (int) or a device pseudo-actor name.
Actor = Hashable

#: A compressed last-access record: ``(actor, clock-at-access)``.
Epoch = Tuple[Actor, int]


class VectorClock(dict):
    """A vector clock: actor id -> last known logical time of that actor."""

    __slots__ = ()

    def tick(self, actor: Actor) -> int:
        """Advance this clock's own component for ``actor``; returns it."""
        value = self.get(actor, 0) + 1
        self[actor] = value
        return value

    def join(self, other: dict) -> None:
        """Merge ``other`` into this clock (pointwise maximum)."""
        for actor, clock in other.items():
            if clock > self.get(actor, 0):
                self[actor] = clock

    def epoch(self, actor: Actor) -> Epoch:
        """The epoch of ``actor``'s most recent operation under this clock."""
        return (actor, self.get(actor, 0))

    def ordered_before(self, epoch: Optional[Epoch]) -> bool:
        """True when ``epoch`` happened before this clock's frontier.

        ``None`` (no prior access) is trivially ordered.
        """
        if epoch is None:
            return True
        actor, clock = epoch
        return self.get(actor, 0) >= clock

    def copy(self) -> "VectorClock":
        return VectorClock(self)
