"""Happens-before data-race detection over shared-memory words.

A FastTrack-flavoured vector-clock analysis adapted to the platform's
transaction protocol.  The *actors* are the fabric masters (PE tasks,
DMA engines) plus string pseudo-actors for device processes; each actor
carries a :class:`~repro.check.vclock.VectorClock` that advances once per
observed transfer and joins along every synchronisation edge:

* ``RESERVE``/``RELEASE`` pairs on an allocation (lock semantics);
* kernel ``Event`` notify→wake, *only* between registered actors — the
  fabric's internal channel processes are deliberately not actors, so
  the shared bus does not become a universal synchroniser that would
  mask every real race;
* device doorbells: a write into a device's register window publishes
  the writer's clock to the window (and to the device's master actor's
  mailbox), so DMA-engine transfers are ordered after the programming
  writes;
* interrupts: ``raise_irq`` publishes the raiser's clock to the line,
  a claimed ``wait_irq`` acquires it.

Word-level state follows the protocol's two access classes: *scalar*
``WRITE``/``READ`` commands are treated as atomic release/acquire
operations (the memory module serialises them, and the polling idiom
``wait_flag`` is exactly a message-passing handoff), while
``WRITE_ARRAY``/``READ_ARRAY``/``FREE`` are plain accesses that must be
ordered by some synchronisation edge.  Conflicting unordered accesses
are reported with both sites.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from .report import AccessSite, ReportSink, SanitizerReport
from .vclock import Actor, Epoch, VectorClock

#: Key of one allocation's shadow state: (memory index, allocation uid).
AllocKey = Tuple[int, int]


class WordState:
    """Last-access state of one element of one allocation."""

    __slots__ = ("w", "w_site", "aw", "aw_site", "reads", "areads", "msg")

    def __init__(self) -> None:
        #: Last plain write: epoch + site.
        self.w: Optional[Epoch] = None
        self.w_site: Optional[AccessSite] = None
        #: Last atomic (scalar) write: epoch + site.
        self.aw: Optional[Epoch] = None
        self.aw_site: Optional[AccessSite] = None
        #: Plain reads since the last plain write: actor -> (clock, site).
        self.reads: Dict[Actor, Tuple[int, AccessSite]] = {}
        #: Atomic reads since the last plain write: actor -> (clock, site).
        self.areads: Dict[Actor, Tuple[int, AccessSite]] = {}
        #: Release clock accumulated by atomic writes to this word.
        self.msg: Optional[VectorClock] = None


class RaceDetector:
    """Vector-clock state machine fed by the sanitizer suite."""

    def __init__(self, sink: ReportSink) -> None:
        self.sink = sink
        self.clocks: Dict[Actor, VectorClock] = {}
        self.labels: Dict[Actor, str] = {}
        #: (mem, uid) -> element -> WordState.
        self.words: Dict[AllocKey, Dict[int, WordState]] = {}
        self.lock_vc: Dict[AllocKey, VectorClock] = {}
        #: Kernel-event release clocks (notify by a registered actor).
        self.event_vc: Dict[object, VectorClock] = {}
        #: Device-register-window release clocks, keyed by window base.
        self.window_vc: Dict[int, VectorClock] = {}
        #: Clocks published to a device-master actor but not yet joined.
        self.mailboxes: Dict[Actor, VectorClock] = {}
        #: IRQ-line release clocks.
        self.line_vc: Dict[int, VectorClock] = {}
        self._reported: set = set()
        #: Distinct race pairs found (reported or deduplicated).
        self.races = 0

    # -- actors ------------------------------------------------------------------
    def register_actor(self, actor: Actor, label: str) -> None:
        self.clocks.setdefault(actor, VectorClock())
        self.labels[actor] = label

    def is_actor(self, actor: Actor) -> bool:
        return actor in self.clocks

    def label(self, actor: Actor) -> str:
        return self.labels.get(actor, str(actor))

    def begin_op(self, actor: Actor) -> VectorClock:
        """Start one observed operation of ``actor``: drain the actor's
        mailbox (doorbell edges published to it) and advance its clock."""
        vc = self.clocks[actor]
        mailbox = self.mailboxes.pop(actor, None)
        if mailbox is not None:
            vc.join(mailbox)
        vc.tick(actor)
        return vc

    # -- race reporting ----------------------------------------------------------
    def _race(self, prev: Tuple[Epoch, AccessSite], cur_epoch: Epoch,
              site: AccessSite) -> None:
        prev_epoch, prev_site = prev
        key = (prev_epoch, cur_epoch)
        if key in self._reported:
            return
        self._reported.add(key)
        self.races += 1
        self.sink.emit(SanitizerReport(
            checker="data-race",
            message=(f"unsynchronized accesses to smem{site.mem_index} "
                     f"vptr={site.vptr:#x}[{site.element}]: "
                     f"{site.master} {site.op} conflicts with "
                     f"{prev_site.master} {prev_site.op}"),
            time=site.time,
            sites=[prev_site, site],
        ))

    def _check_epoch(self, vc: VectorClock, epoch: Optional[Epoch],
                     epoch_site: Optional[AccessSite], cur_epoch: Epoch,
                     site: AccessSite) -> None:
        if epoch is not None and not vc.ordered_before(epoch):
            self._race((epoch, epoch_site), cur_epoch, site)

    def _check_read_set(self, vc: VectorClock,
                        read_set: Dict[Actor, Tuple[int, AccessSite]],
                        cur_epoch: Epoch, site: AccessSite) -> None:
        for actor, (clock, read_site) in read_set.items():
            if vc.get(actor, 0) < clock:
                self._race(((actor, clock), read_site), cur_epoch, site)

    # -- word accesses -----------------------------------------------------------
    def _word(self, key: AllocKey, element: int) -> WordState:
        per_alloc = self.words.get(key)
        if per_alloc is None:
            per_alloc = self.words[key] = {}
        state = per_alloc.get(element)
        if state is None:
            state = per_alloc[element] = WordState()
        return state

    def _site_for(self, template: AccessSite, element: int) -> AccessSite:
        if template.element == element:
            return template
        site = AccessSite(master=template.master, op=template.op,
                          time=template.time, mem_index=template.mem_index,
                          vptr=template.vptr, element=element,
                          traceback=template.traceback)
        return site

    def plain_write(self, actor: Actor, key: AllocKey,
                    elements: Iterable[int], site: AccessSite) -> None:
        vc = self.clocks[actor]
        cur = vc.epoch(actor)
        for element in elements:
            state = self._word(key, element)
            word_site = self._site_for(site, element)
            self._check_epoch(vc, state.w, state.w_site, cur, word_site)
            self._check_epoch(vc, state.aw, state.aw_site, cur, word_site)
            self._check_read_set(vc, state.reads, cur, word_site)
            self._check_read_set(vc, state.areads, cur, word_site)
            state.w = cur
            state.w_site = word_site
            state.aw = None
            state.aw_site = None
            state.reads.clear()
            state.areads.clear()

    def plain_read(self, actor: Actor, key: AllocKey,
                   elements: Iterable[int], site: AccessSite) -> None:
        vc = self.clocks[actor]
        cur = vc.epoch(actor)
        for element in elements:
            state = self._word(key, element)
            word_site = self._site_for(site, element)
            self._check_epoch(vc, state.w, state.w_site, cur, word_site)
            self._check_epoch(vc, state.aw, state.aw_site, cur, word_site)
            state.reads[actor] = (cur[1], word_site)

    def atomic_write(self, actor: Actor, key: AllocKey, element: int,
                     site: AccessSite) -> None:
        """A scalar WRITE: release semantics (serialised by the module)."""
        vc = self.clocks[actor]
        cur = vc.epoch(actor)
        state = self._word(key, element)
        self._check_epoch(vc, state.w, state.w_site, cur, site)
        self._check_read_set(vc, state.reads, cur, site)
        if state.msg is None:
            state.msg = VectorClock()
        state.msg.join(vc)
        state.aw = cur
        state.aw_site = site

    def atomic_read(self, actor: Actor, key: AllocKey, element: int,
                    site: AccessSite) -> None:
        """A scalar READ: acquire semantics."""
        vc = self.clocks[actor]
        cur = vc.epoch(actor)
        state = self._word(key, element)
        self._check_epoch(vc, state.w, state.w_site, cur, site)
        if state.msg is not None:
            vc.join(state.msg)
        state.areads[actor] = (cur[1], site)

    def free_alloc(self, actor: Actor, key: AllocKey,
                   site: AccessSite) -> None:
        """FREE conflicts with any unordered access to the allocation."""
        vc = self.clocks[actor]
        cur = vc.epoch(actor)
        per_alloc = self.words.pop(key, None)
        if per_alloc is not None:
            for element, state in per_alloc.items():
                word_site = self._site_for(site, element)
                self._check_epoch(vc, state.w, state.w_site, cur, word_site)
                self._check_epoch(vc, state.aw, state.aw_site, cur, word_site)
                self._check_read_set(vc, state.reads, cur, word_site)
                self._check_read_set(vc, state.areads, cur, word_site)
        self.lock_vc.pop(key, None)

    # -- synchronisation edges ---------------------------------------------------
    def acquire(self, actor: Actor, key: AllocKey) -> None:
        held = self.lock_vc.get(key)
        if held is not None:
            self.clocks[actor].join(held)

    def release(self, actor: Actor, key: AllocKey) -> None:
        vc = self.lock_vc.get(key)
        if vc is None:
            vc = self.lock_vc[key] = VectorClock()
        vc.join(self.clocks[actor])

    def device_write_edge(self, actor: Actor, window_base: int,
                          device_actor: Optional[Actor] = None) -> None:
        """A registered actor wrote into a device's register window:
        publish its clock to the window (doorbell ordering for IRQ
        raises decoded later) and to the device-master's mailbox."""
        vc = self.clocks[actor]
        window = self.window_vc.get(window_base)
        if window is None:
            window = self.window_vc[window_base] = VectorClock()
        window.join(vc)
        if device_actor is not None:
            mailbox = self.mailboxes.get(device_actor)
            if mailbox is None:
                mailbox = self.mailboxes[device_actor] = VectorClock()
            mailbox.join(vc)

    def irq_raised(self, lines: Iterable[int], raiser: Optional[Actor],
                   controller_base: Optional[int]) -> None:
        """Publish the raiser's knowledge to every raised line.

        Software doorbells arrive through the controller's bus window (the
        raising process is then the fabric channel, not an actor), so the
        window clock is folded in as the doorbell's release clock."""
        source = VectorClock()
        if raiser is not None and raiser in self.clocks:
            source.join(self.clocks[raiser])
        if controller_base is not None:
            window = self.window_vc.get(controller_base)
            if window is not None:
                source.join(window)
        if not source:
            return
        for line in lines:
            line_clock = self.line_vc.get(line)
            if line_clock is None:
                line_clock = self.line_vc[line] = VectorClock()
            line_clock.join(source)

    def irq_claimed(self, actor: Actor, lines: Iterable[int]) -> None:
        if actor not in self.clocks:
            return
        vc = self.clocks[actor]
        for line in lines:
            line_clock = self.line_vc.get(line)
            if line_clock is not None:
                vc.join(line_clock)

    def kernel_notify(self, actor: Actor, event: object) -> None:
        if actor not in self.clocks:
            return
        vc = self.event_vc.get(event)
        if vc is None:
            vc = self.event_vc[event] = VectorClock()
        vc.join(self.clocks[actor])

    def kernel_wake(self, actor: Actor, event: object) -> None:
        if actor not in self.clocks:
            return
        vc = self.event_vc.get(event)
        if vc is not None:
            self.clocks[actor].join(vc)
