"""Cache geometry and policy configuration.

A :class:`CacheGeometry` describes the physical shape of one L1 data cache
(sets x ways x line bytes, set-associative with LRU replacement); a
:class:`CacheConfig` pairs a geometry with a write policy and a hit latency
and is what platforms carry around (it is a frozen dataclass, so scenario
grids can sweep over configurations and the process-sharded experiment
runner can pickle them).

Addresses handled by the cache layer live in each shared memory's *virtual
pointer* space (the byte addresses the wrapper's pointer table hands out),
not in the interconnect's register windows: the unit the paper's software
actually reasons about is ``vptr + offset``, and lines are clamped to the
allocation that owns them (see :mod:`repro.cache.l1`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class WritePolicy(enum.Enum):
    """Write handling of an L1 data cache."""

    #: Every write is forwarded to the shared memory immediately; the cache
    #: only absorbs read traffic.  Simple, always memory-consistent.
    WRITE_THROUGH = "write_through"
    #: Writes dirty the cached line (write-allocate on miss) and reach the
    #: shared memory on eviction, coherence writebacks or flush barriers.
    WRITE_BACK = "write_back"


class CacheError(ValueError):
    """Raised on invalid cache geometry or configuration values."""


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class CacheGeometry:
    """Shape of one set-associative cache: sets x ways x line bytes."""

    sets: int = 64
    ways: int = 2
    line_bytes: int = 32

    def __post_init__(self) -> None:
        if not isinstance(self.sets, int) or self.sets <= 0:
            raise CacheError(f"sets must be a positive integer, got {self.sets!r}")
        if not isinstance(self.ways, int) or self.ways <= 0:
            raise CacheError(f"ways must be a positive integer, got {self.ways!r}")
        if not isinstance(self.line_bytes, int) or self.line_bytes < 4 \
                or not _is_power_of_two(self.line_bytes):
            raise CacheError(
                f"line_bytes must be a power of two >= 4, got {self.line_bytes!r}"
            )

    # -- derived quantities ------------------------------------------------------
    @property
    def capacity_bytes(self) -> int:
        """Total data capacity of the cache."""
        return self.sets * self.ways * self.line_bytes

    # -- address arithmetic (byte addresses in vptr space) -----------------------
    def line_number(self, byte_address: int) -> int:
        """Line number holding ``byte_address``."""
        return byte_address // self.line_bytes

    def line_base(self, line_number: int) -> int:
        """First byte address covered by ``line_number``."""
        return line_number * self.line_bytes

    def set_index(self, line_number: int) -> int:
        """Set the line maps to (modulo placement)."""
        return line_number % self.sets

    def describe(self) -> str:
        """Short human-readable geometry label (``64x2x32B``)."""
        return f"{self.sets}x{self.ways}x{self.line_bytes}B"


@dataclass(frozen=True)
class CacheConfig:
    """Complete description of the per-PE L1 data caches of a platform."""

    geometry: CacheGeometry = field(default_factory=CacheGeometry)
    policy: WritePolicy = WritePolicy.WRITE_BACK
    #: Simulated PE clock cycles charged for a cache hit (0 = free hits).
    hit_cycles: int = 1

    def __post_init__(self) -> None:
        if not isinstance(self.geometry, CacheGeometry):
            raise CacheError(
                f"geometry must be a CacheGeometry, got "
                f"{type(self.geometry).__name__}"
            )
        if not isinstance(self.policy, WritePolicy):
            raise CacheError(
                f"policy must be a WritePolicy, got {self.policy!r}"
            )
        if not isinstance(self.hit_cycles, int) or self.hit_cycles < 0:
            raise CacheError(
                f"hit_cycles must be a non-negative integer, got "
                f"{self.hit_cycles!r}"
            )

    def describe(self) -> str:
        """One-line summary used by ``PlatformConfig.describe()`` and benches."""
        return f"l1 {self.geometry.describe()} {self.policy.value}"
