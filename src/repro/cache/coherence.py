"""MSI snooping coherence over the shared interconnect.

One :class:`CoherenceDomain` per platform ties the per-PE L1 caches
(:class:`~repro.cache.l1.L1Cache`) together:

* it keeps a *shadow allocation map* mirroring every dynamic memory's
  pointer table (fed by the ALLOC/FREE/RESERVE/RELEASE commands all caches
  forward), so caches can resolve ``vptr + offset`` to allocation-clamped
  line ranges exactly the way the wrapper's translator does;
* it implements the snoop channel of the MSI protocol: before a cache
  fills a line it snoops the others (a remote MODIFIED overlap is written
  back and downgraded to SHARED); before a cache takes a line MODIFIED the
  other caches' overlapping lines are written back if dirty and invalidated;
* it hooks into the interconnect (:meth:`attach_interconnect`) so command
  bursts issued by *uncached* masters (raw testbench traffic, ISS register
  programs) still invalidate stale lines conservatively: their writes
  supersede any cached dirty copy of the written range.  The one gap raw
  masters keep under the write-back policy: their *reads* cannot trigger a
  snoop writeback (the hook runs synchronously inside the bus process and
  cannot issue bus transactions), so a raw read may observe pre-writeback
  memory; mixed platforms that need raw readers should use write-through
  caches.

Snoop-triggered writebacks are issued through the *requesting* master's
port, inside the requesting PE's process — the snoop channel itself is not
modelled as data-bus traffic (only the writebacks and fills it triggers
are), which matches the dedicated snoop networks of bus-based MPSoCs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Tuple

from ..memory.protocol import (
    DATA_TYPE_SIZES,
    DataType,
    MemCommand,
    MemOpcode,
    ProtocolError,
    REG_COMMAND,
    REGISTER_WINDOW_BYTES,
)
from ..fabric import BusOp, BusRequest, BusResponse, Fabric


@dataclass
class SharedAllocation:
    """Shadow-map row mirroring one live pointer-table entry."""

    #: Monotonically increasing identity: vptr ranges are *reused* after
    #: frees (the wrapper restarts generation from the last surviving
    #: entry), so cached lines are keyed by ``uid`` rather than by address.
    uid: int
    mem_index: int
    vptr: int
    dim: int
    data_type: DataType
    reserved_by: Optional[int] = None

    @property
    def element_size(self) -> int:
        return DATA_TYPE_SIZES[self.data_type]

    @property
    def size_bytes(self) -> int:
        return self.dim * self.element_size

    @property
    def end_vptr(self) -> int:
        return self.vptr + self.size_bytes

    def contains(self, vptr: int) -> bool:
        return self.vptr <= vptr < self.end_vptr

    def element_byte(self, index: int) -> int:
        """Byte address (in vptr space) of element ``index``."""
        return self.vptr + index * self.element_size


@dataclass
class DomainStats:
    """Aggregate coherence activity of one domain."""

    snoop_reads: int = 0
    snoop_upgrades: int = 0
    snoop_writebacks: int = 0
    invalidations: int = 0
    #: Dirty lines whose stale clean slots were scrubbed (kept resident)
    #: after an uncached write — distinct from full invalidations.
    scrubs: int = 0
    flush_barriers: int = 0
    bus_snoops: int = 0

    def as_dict(self) -> dict:
        return {
            "snoop_reads": self.snoop_reads,
            "snoop_upgrades": self.snoop_upgrades,
            "snoop_writebacks": self.snoop_writebacks,
            "invalidations": self.invalidations,
            "scrubs": self.scrubs,
            "flush_barriers": self.flush_barriers,
            "bus_snoops": self.bus_snoops,
        }


class FillGuard:
    """Tracks one in-flight clean line fetch so conflicting writes can
    poison it before the fetched (now stale) data goes resident.

    Between a fetch being *served* by the memory and its payload being
    *installed* by the requesting cache, the requester's process is
    suspended; on interconnects where completion lags service (the mesh
    NoC's response network, a crossbar channel racing another), a write
    can complete at the memory inside that window.  The write's
    invalidation hook cannot see the not-yet-resident line, so it marks
    the guard instead and the install is skipped.
    """

    __slots__ = ("owner", "mem_index", "lo", "hi", "poisoned")

    def __init__(self, owner, mem_index: int, lo: int, hi: int) -> None:
        self.owner = owner
        self.mem_index = mem_index
        self.lo = lo
        self.hi = hi
        self.poisoned = False

    def overlaps(self, mem_index: int, lo: int, hi: int) -> bool:
        return (self.mem_index == mem_index and self.lo < hi
                and lo < self.hi)


class CoherenceDomain:
    """Snooping MSI coherence glue shared by every L1 cache of a platform."""

    def __init__(self) -> None:
        self._caches: List[object] = []
        #: mem_index -> list of live allocations (wrapper table order).
        self._allocs: Dict[int, List[SharedAllocation]] = {}
        self._next_uid = 1
        self.stats = DomainStats()
        #: In-flight clean fetches awaiting install (see :class:`FillGuard`).
        self._fills: List[FillGuard] = []
        #: Interconnect window map used by the bus snooper:
        #: window base address -> memory index.
        self._windows: Dict[int, int] = {}

    # -- cache registration ------------------------------------------------------
    def register_cache(self, cache) -> None:
        """Add one L1 cache to the snoop set."""
        self._caches.append(cache)

    @property
    def caches(self) -> List[object]:
        return list(self._caches)

    def _others(self, requester):
        return [cache for cache in self._caches if cache is not requester]

    # -- shadow allocation map ---------------------------------------------------
    def on_alloc(self, mem_index: int, vptr: int, dim: int,
                 data_type: DataType) -> SharedAllocation:
        """Record a successful ALLOC and scrub stale lines in its range."""
        alloc = SharedAllocation(self._next_uid, mem_index, vptr, dim,
                                 DataType(data_type))
        self._next_uid += 1
        self._allocs.setdefault(mem_index, []).append(alloc)
        # Vptr ranges may be reused after frees; drop any line (of any
        # generation) overlapping the new range so calloc-zeroed memory can
        # never be shadowed by stale data.
        self._drop_range(mem_index, alloc.vptr, alloc.end_vptr)
        return alloc

    def on_free(self, alloc: SharedAllocation) -> None:
        """Record a successful FREE: drop the row and every cached line."""
        rows = self._allocs.get(alloc.mem_index, [])
        if alloc in rows:
            rows.remove(alloc)
        self._drop_range(alloc.mem_index, alloc.vptr, alloc.end_vptr)

    def on_reserve(self, alloc: SharedAllocation, master_id: int) -> None:
        alloc.reserved_by = master_id

    def on_release(self, alloc: SharedAllocation) -> None:
        alloc.reserved_by = None

    def is_foreign_reserved(self, mem_index: int, vptr: int,
                            master_id: int) -> bool:
        """True when a master other than ``master_id`` holds the semaphore
        of the allocation containing ``vptr`` (no-copy hot-path helper)."""
        for alloc in self._allocs.get(mem_index, ()):
            if alloc.contains(vptr):
                return (alloc.reserved_by is not None
                        and alloc.reserved_by != master_id)
        return False

    def find_alloc(self, mem_index: int, vptr: int) -> Optional[SharedAllocation]:
        """Exact-base lookup (FREE/RESERVE/RELEASE/QUERY semantics)."""
        for alloc in self._allocs.get(mem_index, ()):
            if alloc.vptr == vptr:
                return alloc
        return None

    def resolve(self, mem_index: int, vptr: int, offset: int
                ) -> Optional[Tuple[SharedAllocation, int]]:
        """Mirror the wrapper's scalar READ/WRITE element resolution.

        Returns ``(allocation, element_index)`` for an in-bounds access,
        ``None`` otherwise (interior pointers supported, exactly like
        ``PointerTable.resolve`` plus the wrapper's bounds check).
        """
        for alloc in self._allocs.get(mem_index, ()):
            if alloc.contains(vptr):
                index = (vptr - alloc.vptr) // alloc.element_size + offset
                if 0 <= index < alloc.dim:
                    return alloc, index
                return None
        return None

    def resolve_range(self, mem_index: int, vptr: int, offset: int, dim: int
                      ) -> Optional[Tuple[SharedAllocation, int]]:
        """Mirror the wrapper's READ_ARRAY/WRITE_ARRAY bounds resolution."""
        if dim <= 0:
            return None
        for alloc in self._allocs.get(mem_index, ()):
            if alloc.contains(vptr):
                start = (vptr - alloc.vptr) // alloc.element_size + offset
                if start >= 0 and start + dim <= alloc.dim:
                    return alloc, start
                return None
        return None

    def live_allocations(self, mem_index: int) -> List[SharedAllocation]:
        return list(self._allocs.get(mem_index, ()))

    # -- snoop channel -----------------------------------------------------------
    #: Upper bound on snoop passes before giving up on a line another
    #: master keeps re-dirtying faster than it can be written back.
    MAX_SNOOP_PASSES = 64

    def snoop_read(self, requester, alloc: SharedAllocation, first: int,
                   count: int) -> Generator[object, None, None]:
        """Read snoop: remote MODIFIED overlaps are written back and
        downgraded to SHARED.

        Driven with ``yield from`` inside the requesting PE's process; the
        writebacks ride the requester's master port.  Loops until no remote
        overlap is dirty *or MODIFIED* at a synchronous exit: the owner may
        dirty another element of the line while a writeback suspends this
        process, and it must not be left in MODIFIED (it would keep writing
        without re-acquiring, invisibly to the fill that follows this
        snoop).  Once every overlap is SHARED, any later remote write has
        to go through :meth:`acquire_exclusive`, which invalidates the
        requester's placeholder line and keeps the stale fetch out.
        """
        self.stats.snoop_reads += 1
        lo = alloc.element_byte(first)
        hi = alloc.element_byte(first + count)
        for _pass in range(self.MAX_SNOOP_PASSES):
            flagged = [
                (cache, line)
                for cache in self._others(requester)
                for line in cache.lines_overlapping(alloc.mem_index, lo, hi)
                if line.has_dirty() or line.is_modified()
            ]
            if not flagged:
                return
            progressed = False
            for cache, line in flagged:
                if line.has_dirty():
                    ok = yield from cache.writeback_line(line,
                                                         requester.raw_port)
                    if ok:
                        self.stats.snoop_writebacks += 1
                        progressed = True
                line.downgrade()
                if not line.is_modified():
                    progressed = True
            if not progressed:
                return  # writebacks blocked (foreign reservation): give up

    def acquire_exclusive(self, requester, alloc: SharedAllocation, first: int,
                          count: int) -> Generator[object, None, None]:
        """Write snoop: every other cache's overlapping line is invalidated
        (written back first when dirty, so no update is ever lost).

        Loops until no remote copy survives: a writeback suspends the
        requesting process, and another PE may install a fresh copy in the
        meantime.  The final pass performs only synchronous drops, so when
        this generator returns the requester may take MODIFIED ownership
        without yielding first.
        """
        self.stats.snoop_upgrades += 1
        lo = alloc.element_byte(first)
        hi = alloc.element_byte(first + count)
        for _pass in range(self.MAX_SNOOP_PASSES):
            overlapping = [
                (cache, line)
                for cache in self._others(requester)
                for line in cache.lines_overlapping(alloc.mem_index, lo, hi)
            ]
            if not overlapping:
                return
            dirty = [(cache, line) for cache, line in overlapping
                     if line.has_dirty()]
            if not dirty:
                for cache, line in overlapping:
                    self.stats.invalidations += 1
                    cache.drop_line(line)
                return
            progressed = False
            for cache, line in dirty:
                ok = yield from cache.writeback_line(line, requester.raw_port)
                if ok:
                    self.stats.snoop_writebacks += 1
                    progressed = True
            if not progressed:
                # Writebacks blocked (foreign reservation) and nothing can
                # advance without yielding: give up rather than busy-loop.
                # Callers re-check any_remote_modified() before taking
                # MODIFIED ownership and fall back to an uncached write.
                return

    def any_remote_modified(self, requester, mem_index: int, lo_byte: int,
                            hi_byte: int) -> bool:
        """True when another cache holds dirty/MODIFIED data in the range.

        Synchronous (no bus traffic): used as the install-time conflict
        check that keeps a fetched-but-outdated line out of the cache.
        """
        for cache in self._others(requester):
            for line in cache.lines_overlapping(mem_index, lo_byte, hi_byte):
                if line.has_dirty() or line.is_modified():
                    return True
        return False

    def flush_alloc(self, requester, alloc: SharedAllocation
                    ) -> Generator[object, None, None]:
        """Reservation barrier: write back every cache's dirty lines of
        ``alloc`` (lines stay valid, downgraded to SHARED)."""
        self.stats.flush_barriers += 1
        for cache in self._caches:
            for line in cache.dirty_lines_overlapping(alloc, alloc.vptr,
                                                      alloc.end_vptr):
                ok = yield from cache.writeback_line(line, requester.raw_port)
                if ok:
                    self.stats.snoop_writebacks += 1
                    line.downgrade()

    # -- in-flight fill tracking -------------------------------------------------
    def begin_fill(self, owner, mem_index: int, lo_byte: int,
                   hi_byte: int) -> FillGuard:
        """Register a clean fetch of ``[lo_byte, hi_byte)`` about to fly."""
        guard = FillGuard(owner, mem_index, lo_byte, hi_byte)
        self._fills.append(guard)
        return guard

    def end_fill(self, guard: FillGuard) -> None:
        """Deregister a fetch (installed or abandoned)."""
        try:
            self._fills.remove(guard)
        except ValueError:  # pragma: no cover - defensive double end
            pass

    def _poison_fills(self, mem_index: int, lo_byte: int, hi_byte: int,
                      requester=None) -> None:
        for guard in self._fills:
            if guard.owner is not requester and guard.overlaps(
                    mem_index, lo_byte, hi_byte):
                guard.poisoned = True

    # -- non-bus invalidation ----------------------------------------------------
    def invalidate_range(self, mem_index: int, lo_byte: int, hi_byte: int,
                         requester=None, supersede_dirty: bool = False) -> int:
        """Scrub stale copies after a write went to memory around the caches.

        Clean lines overlapping ``[lo_byte, hi_byte)`` are dropped.  A
        dirty line is *not* dropped; its slots inside the range are
        scrubbed per :meth:`CacheLine.scrub_slots` — by default keeping the
        dirty ones (a racing *cached* writer's data is still owed a
        writeback), with ``supersede_dirty`` discarding them too (the
        caller observed the memory write serialize after them, e.g. an
        uncached master's write on the bus).
        """
        self._poison_fills(mem_index, lo_byte, hi_byte, requester=requester)
        dropped = 0
        for cache in self._caches:
            if cache is requester:
                continue
            for line in cache.lines_overlapping(mem_index, lo_byte, hi_byte):
                if line.has_dirty():
                    line.scrub_slots(lo_byte, hi_byte,
                                     supersede_dirty=supersede_dirty)
                    self.stats.scrubs += 1
                else:
                    cache.drop_line(line)
                    dropped += 1
        self.stats.invalidations += dropped
        return dropped

    def _drop_range(self, mem_index: int, lo_byte: int, hi_byte: int) -> None:
        # Allocation-lifetime scrub: in-flight fetches of the dead (or
        # recycled) range must not install either, whoever owns them.
        for guard in self._fills:
            if guard.overlaps(mem_index, lo_byte, hi_byte):
                guard.poisoned = True
        for cache in self._caches:
            for line in cache.lines_overlapping(mem_index, lo_byte, hi_byte):
                cache.drop_line(line, silent=True)

    # -- interconnect snoop hook ---------------------------------------------------
    def attach_interconnect(self, interconnect, windows: Dict[int, int]) -> None:
        """Observe completed transfers on ``interconnect``.

        ``interconnect`` must be a :class:`~repro.fabric.Fabric`: the
        domain relies on the fabric's completion-point snooper contract
        (fired synchronously, in slave service order), not on per-topology
        duck typing.  ``windows`` maps window base addresses to memory
        indices.  The hook
        is the domain's *authoritative* source for the shadow allocation
        map: ALLOC/FREE/RESERVE/RELEASE take effect the moment their
        command completes on the interconnect — synchronously inside the
        bus process, before any other master can observe the new state —
        so the map can never lag behind the wrapper's pointer table.
        Writes from masters that do *not* own a cache in this domain
        additionally invalidate overlapping lines, so raw traffic injected
        next to cached PEs cannot leave stale data behind.
        """
        if not isinstance(interconnect, Fabric):
            raise TypeError(
                f"coherence snooping requires a repro.fabric.Fabric "
                f"interconnect, got {type(interconnect).__name__}"
            )
        self._windows.update(windows)
        interconnect.add_snooper(self._on_bus_transfer)

    def _cached_master_ids(self):
        return {cache.master_id for cache in self._caches}

    def _on_bus_transfer(self, request: BusRequest, response: BusResponse) -> None:
        if not response.ok:
            return
        if request.op is not BusOp.WRITE or request.burst_data is None:
            return
        mem_index = None
        for base, index in self._windows.items():
            if base <= request.address < base + REGISTER_WINDOW_BYTES:
                if request.address - base == REG_COMMAND:
                    mem_index = index
                break
        if mem_index is None:
            return
        try:
            command = MemCommand.from_words(list(request.burst_data))
        except ProtocolError:
            return
        self.stats.bus_snoops += 1
        opcode = command.opcode
        # Bookkeeping opcodes: authoritative for every master.
        if opcode == MemOpcode.ALLOC:
            if command.dim > 0:
                self.on_alloc(mem_index, response.data, command.dim,
                              command.data_type)
            return
        if opcode == MemOpcode.FREE:
            alloc = self.find_alloc(mem_index, command.vptr)
            if alloc is not None:
                self.on_free(alloc)
            return
        if opcode == MemOpcode.RESERVE:
            alloc = self.find_alloc(mem_index, command.vptr)
            if alloc is not None:
                self.on_reserve(alloc, request.master_id)
            return
        if opcode == MemOpcode.RELEASE:
            alloc = self.find_alloc(mem_index, command.vptr)
            if alloc is not None:
                self.on_release(alloc)
            return
        # Data writes: cached masters ran the full MSI protocol already;
        # only uncached traffic needs the conservative invalidation.
        if request.master_id in self._cached_master_ids():
            return
        if opcode == MemOpcode.WRITE:
            located = self.resolve(mem_index, command.vptr, command.offset)
            if located is not None:
                alloc, index = located
                self.invalidate_range(mem_index, alloc.element_byte(index),
                                      alloc.element_byte(index + 1),
                                      supersede_dirty=True)
        elif opcode == MemOpcode.WRITE_ARRAY:
            located = self.resolve_range(mem_index, command.vptr,
                                         command.offset, command.dim)
            if located is not None:
                alloc, start = located
                self.invalidate_range(mem_index, alloc.element_byte(start),
                                      alloc.element_byte(start + command.dim),
                                      supersede_dirty=True)
