"""Per-PE L1 caches with MSI snooping coherence.

This package adds a real memory hierarchy to the platform: a configurable
L1 data cache per processing element (:class:`L1Cache`) shimmed between the
PE's master port and the interconnect, kept coherent across PEs by a
snooping MSI protocol (:class:`CoherenceDomain`).  Caches are a pure opt-in
layer — a platform built without a :class:`CacheConfig` is bit-identical to
the cache-less one — and, when enabled, cache-served accesses are
bit-identical with wrapper-served ones while removing shared-memory
transactions from the interconnect.

Enable them declaratively::

    config = (PlatformBuilder()
              .pes(4)
              .wrapper_memories(1)
              .l1_cache(sets=64, ways=2, line_bytes=32, policy="write_back")
              .build())
"""

from .coherence import CoherenceDomain, DomainStats, SharedAllocation
from .geometry import CacheConfig, CacheError, CacheGeometry, WritePolicy
from .l1 import CachedPort, CacheLine, CacheStats, L1Cache, MSIState, canonical_word

__all__ = [
    "CacheConfig",
    "CacheError",
    "CacheGeometry",
    "CacheLine",
    "CacheStats",
    "CachedPort",
    "CoherenceDomain",
    "DomainStats",
    "L1Cache",
    "MSIState",
    "SharedAllocation",
    "WritePolicy",
    "canonical_word",
]
