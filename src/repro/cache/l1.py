"""Per-PE L1 data cache shim over the dynamic shared-memory protocol.

An :class:`L1Cache` sits between one processing element's master port and
the interconnect.  The software stack is unchanged: the PE's
:class:`~repro.wrapper.api.SharedMemoryAPI` talks to a
:class:`CachedPort` exposing the exact :class:`~repro.interconnect.bus.MasterPort`
interface, and the cache decodes the command bursts flowing through it:

* scalar READs hit in the cache or trigger a line-sized burst fill
  (READ_ARRAY through the real port, clamped to the owning allocation);
* scalar WRITEs update the line (write-back + write-allocate) or are
  forwarded (write-through);
* whole READ_ARRAY / WRITE_ARRAY transfers are served from / absorbed into
  the cache when every element is covered, and install their data on the
  way through otherwise;
* ALLOC / FREE / RESERVE / RELEASE always reach the memory module and feed
  the coherence domain's shadow allocation map — the wrapper FSM command
  region itself is never cached, only the *data* behind it.

Cached words are stored in the exact canonical form the wrapper returns
(element encode/decode round trip, i.e. ``to_signed(value) & 0xFFFFFFFF``),
so cache-served reads are bit-identical with wrapper-served ones.

Reservation (semaphore) semantics are preserved: while an allocation's
reservation bit is held, writes to it bypass the cache (so their visibility
matches the uncached platform) and writebacks never race the holder —
acquiring the bit acts as a flush barrier (see
:class:`~repro.cache.coherence.CoherenceDomain`).

Cache lines are *allocation-clamped*: a line covers the intersection of its
byte range (in the memory's virtual-pointer space) with one live
allocation, and is keyed by the allocation's generation uid, so vptr reuse
after frees can never alias stale data.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Generator, Iterator, List, Optional, Tuple

from ..fabric import (
    BusOp,
    BusRequest,
    BusResponse,
    ResponseStatus,
)
from ..memory.dynamic_base import to_signed
from ..memory.protocol import (
    IO_ARRAY_BASE,
    REG_COMMAND,
    REGISTER_WINDOW_BYTES,
    DataType,
    MemCommand,
    MemOpcode,
    ProtocolError,
)
from .coherence import CoherenceDomain, SharedAllocation
from .geometry import CacheConfig, WritePolicy


def canonical_word(value: int, data_type: DataType) -> int:
    """The raw word the wrapper would return for a stored ``value``.

    Mirrors the translator's element encode/decode round trip (truncate to
    the element width, sign-extend signed types, mask to 32 bits).
    """
    return to_signed(value, data_type) & 0xFFFFFFFF


class MSIState(enum.Enum):
    """Stable states of a resident line (INVALID = not resident)."""

    SHARED = "S"
    MODIFIED = "M"


class CacheLine:
    """One resident line: the slice of an allocation a line range covers."""

    __slots__ = ("alloc", "line_no", "first_index", "words", "present",
                 "dirty", "state")

    def __init__(self, alloc: SharedAllocation, line_no: int,
                 first_index: int, count: int) -> None:
        self.alloc = alloc
        self.line_no = line_no
        #: Element index (within the allocation) stored in slot 0.
        self.first_index = first_index
        self.words: List[int] = [0] * count
        self.present: List[bool] = [False] * count
        self.dirty: List[bool] = [False] * count
        self.state = MSIState.SHARED

    # -- geometry ----------------------------------------------------------------
    @property
    def mem_index(self) -> int:
        return self.alloc.mem_index

    @property
    def n_slots(self) -> int:
        return len(self.words)

    @property
    def lo_byte(self) -> int:
        return self.alloc.element_byte(self.first_index)

    @property
    def hi_byte(self) -> int:
        return self.alloc.element_byte(self.first_index + self.n_slots)

    def slot_of(self, element_index: int) -> int:
        return element_index - self.first_index

    def covers(self, element_index: int) -> bool:
        return 0 <= element_index - self.first_index < self.n_slots

    # -- state -------------------------------------------------------------------
    def has_dirty(self) -> bool:
        return any(self.dirty)

    def is_modified(self) -> bool:
        return self.state is MSIState.MODIFIED

    def downgrade(self) -> None:
        """MODIFIED -> SHARED after a successful writeback."""
        if not self.has_dirty():
            self.state = MSIState.SHARED

    def scrub_slots(self, lo_byte: int, hi_byte: int,
                    supersede_dirty: bool = False) -> None:
        """Mark the slots inside ``[lo_byte, hi_byte)`` absent.

        Used after a write reached memory without going through this cache.
        By default only clean slots are scrubbed (a concurrently racing
        *cached* writer's dirty data is still owed a writeback); with
        ``supersede_dirty`` the dirty slots in the range are discarded too —
        the caller knows the memory write serialized *after* them (an
        uncached master's write observed on the bus), so writing them back
        later would clobber the newer value.
        """
        size = self.alloc.element_size
        for slot in range(self.n_slots):
            byte = self.alloc.element_byte(self.first_index + slot)
            if lo_byte < byte + size and byte < hi_byte:
                if supersede_dirty:
                    self.dirty[slot] = False
                    self.present[slot] = False
                elif not self.dirty[slot]:
                    self.present[slot] = False
        if supersede_dirty:
            self.downgrade()

    def dirty_runs(self) -> List[Tuple[int, int]]:
        """Contiguous runs of dirty slots as ``(slot_start, length)``."""
        runs: List[Tuple[int, int]] = []
        start = None
        for slot, is_dirty in enumerate(self.dirty):
            if is_dirty and start is None:
                start = slot
            elif not is_dirty and start is not None:
                runs.append((start, slot - start))
                start = None
        if start is not None:
            runs.append((start, len(self.dirty) - start))
        return runs


@dataclass
class CacheStats:
    """Hit/miss/traffic counters of one L1 cache."""

    hits: int = 0
    misses: int = 0
    array_hits: int = 0
    array_misses: int = 0
    array_absorbs: int = 0
    fills: int = 0
    evictions: int = 0
    writebacks: int = 0
    write_throughs: int = 0
    invalidations_received: int = 0
    uncached_ops: int = 0
    fallbacks: int = 0
    reservation_stalls: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses + self.array_hits + self.array_misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        if not lookups:
            return 0.0
        return (self.hits + self.array_hits) / lookups

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "array_hits": self.array_hits,
            "array_misses": self.array_misses,
            "array_absorbs": self.array_absorbs,
            "fills": self.fills,
            "evictions": self.evictions,
            "writebacks": self.writebacks,
            "write_throughs": self.write_throughs,
            "invalidations_received": self.invalidations_received,
            "uncached_ops": self.uncached_ops,
            "fallbacks": self.fallbacks,
            "reservation_stalls": self.reservation_stalls,
            "hit_rate": round(self.hit_rate, 4),
        }


class CachedPort:
    """Drop-in :class:`~repro.interconnect.bus.MasterPort` facade.

    Everything the task processor and the shared-memory API use
    (``transfer``/``read``/``write``/``burst_read``/``burst_write``,
    ``master_id``, ``_interconnect``) is forwarded through the cache.
    """

    def __init__(self, cache: "L1Cache", port) -> None:
        self._cache = cache
        self._port = port
        self._last_response: Optional[BusResponse] = None

    @property
    def master_id(self) -> int:
        return self._port.master_id

    @property
    def name(self) -> str:
        return self._port.name

    @property
    def _interconnect(self):
        return self._port._interconnect

    @property
    def last_response(self) -> Optional[BusResponse]:
        """The most recently completed transfer — including transfers the
        cache served locally, which never reach the raw port."""
        return self._last_response

    # -- MasterPort protocol -----------------------------------------------------
    def transfer(self, request: BusRequest
                 ) -> Generator[object, None, BusResponse]:
        response = yield from self._cache.transfer(request)
        self._last_response = response
        return response

    def read(self, address: int, size: int = 4, tag: str = ""
             ) -> Generator[object, None, BusResponse]:
        return self.transfer(
            BusRequest(self.master_id, BusOp.READ, address, size=size, tag=tag)
        )

    def write(self, address: int, data: int, size: int = 4, tag: str = ""
              ) -> Generator[object, None, BusResponse]:
        return self.transfer(
            BusRequest(self.master_id, BusOp.WRITE, address, data=data,
                       size=size, tag=tag)
        )

    def burst_read(self, address: int, length: int, tag: str = ""
                   ) -> Generator[object, None, BusResponse]:
        return self.transfer(
            BusRequest(self.master_id, BusOp.READ, address,
                       burst_length=length, tag=tag)
        )

    def burst_write(self, address: int, words: List[int], tag: str = ""
                    ) -> Generator[object, None, BusResponse]:
        return self.transfer(
            BusRequest(self.master_id, BusOp.WRITE, address,
                       burst_data=list(words), tag=tag)
        )


class L1Cache:
    """One processing element's L1 data cache (see module docstring)."""

    def __init__(
        self,
        name: str,
        config: CacheConfig,
        port,
        domain: CoherenceDomain,
        windows: Dict[int, int],
        clock_period: int,
    ) -> None:
        self.name = name
        self.config = config
        self.geometry = config.geometry
        self.policy = config.policy
        self._raw = port
        self.domain = domain
        #: window base address -> memory index, and the reverse.
        self._windows = dict(windows)
        self._window_base = {mem: base for base, mem in windows.items()}
        self._hit_wait = config.hit_cycles * clock_period
        #: Back-off while a foreign reservation blocks a write, and the
        #: stall bound after which the write is forwarded anyway (so true
        #: reservation misuse still surfaces as the wrapper's error).
        self._stall_wait = 8 * clock_period
        self._max_stalls = 1024
        self.stats = CacheStats()
        self._sets: List[List[CacheLine]] = [[] for _ in range(self.geometry.sets)]
        #: Buffered I/O-array stage awaiting its WRITE_ARRAY (write-back).
        self._pending_stage: Optional[Tuple[int, BusRequest]] = None
        #: Copy of the last forwarded stage (write-through install).
        self._observed_stage: Optional[Tuple[int, List[int]]] = None
        #: Words staged for the io fetch of a cache-served READ_ARRAY.
        self._pending_fetch: Optional[Tuple[int, int, List[int]]] = None
        #: Range of a forwarded READ_ARRAY to install from its io fetch,
        #: plus the fill guard covering it:
        #: ``(alloc, start, dim, mem_index, guard)``.
        self._pending_install: Optional[Tuple] = None
        domain.register_cache(self)
        self.port = CachedPort(self, port)

    # -- identity ------------------------------------------------------------------
    @property
    def master_id(self) -> int:
        return self._raw.master_id

    @property
    def raw_port(self):
        """The underlying (uncached) master port, used by snoop writebacks."""
        return self._raw

    # -- line directory ------------------------------------------------------------
    def _lookup(self, mem_index: int, alloc_uid: int, line_no: int
                ) -> Optional[CacheLine]:
        ways = self._sets[self.geometry.set_index(line_no)]
        for position, line in enumerate(ways):
            if (line.line_no == line_no and line.alloc.uid == alloc_uid
                    and line.mem_index == mem_index):
                if position:  # move to MRU
                    ways.pop(position)
                    ways.insert(0, line)
                return line
        return None

    def lines_overlapping(self, mem_index: int, lo_byte: int, hi_byte: int
                          ) -> List[CacheLine]:
        """Every resident line overlapping ``[lo_byte, hi_byte)`` byte range.

        An overlapping line's ``line_no`` necessarily falls inside the
        range's line-number span (lines are clamped to their line's byte
        window), so small ranges probe only their sets instead of walking
        the whole directory; ranges wider than the directory fall back to
        the full scan.
        """
        if hi_byte <= lo_byte:
            return []
        found = []
        first_line = self.geometry.line_number(lo_byte)
        last_line = self.geometry.line_number(hi_byte - 1)
        span = last_line - first_line + 1
        if span <= self.geometry.sets:
            for line_no in range(first_line, last_line + 1):
                for line in self._sets[self.geometry.set_index(line_no)]:
                    if (line.line_no == line_no and line.mem_index == mem_index
                            and line.lo_byte < hi_byte
                            and lo_byte < line.hi_byte):
                        found.append(line)
            return found
        for ways in self._sets:
            for line in ways:
                if (line.mem_index == mem_index and line.lo_byte < hi_byte
                        and lo_byte < line.hi_byte):
                    found.append(line)
        return found

    def dirty_lines_overlapping(self, alloc: SharedAllocation, lo_byte: int,
                                hi_byte: int) -> List[CacheLine]:
        return [line for line in self.lines_overlapping(alloc.mem_index,
                                                        lo_byte, hi_byte)
                if line.has_dirty()]

    def drop_line(self, line: CacheLine, evicted: bool = False,
                  silent: bool = False) -> None:
        """Remove a line (invalidate); dirty data is discarded by the caller's
        contract (coherence invalidations write back first when needed).

        ``silent`` drops are allocation-lifetime bookkeeping (FREE/ALLOC
        scrubbing) and count neither as evictions nor as coherence
        invalidations, so the MSI diagnostics stay meaningful.
        """
        ways = self._sets[self.geometry.set_index(line.line_no)]
        if line in ways:
            ways.remove(line)
            if silent:
                pass
            elif evicted:
                self.stats.evictions += 1
            else:
                self.stats.invalidations_received += 1

    def resident_lines(self) -> int:
        return sum(len(ways) for ways in self._sets)

    def iter_lines(self) -> Iterator[CacheLine]:
        """Every resident line (snapshot order; safe against mutation)."""
        for ways in self._sets:
            yield from list(ways)

    def _element_span(self, alloc: SharedAllocation, line_no: int
                      ) -> Tuple[int, int]:
        """Element range ``(first, count)`` of ``alloc`` inside ``line_no``."""
        line_lo = self.geometry.line_base(line_no)
        line_hi = line_lo + self.geometry.line_bytes
        size = alloc.element_size
        first = max(0, -((line_lo - alloc.vptr) // -size))
        last = min(alloc.dim - 1, (line_hi - 1 - alloc.vptr) // size)
        return first, max(0, last - first + 1)

    # -- request classification ------------------------------------------------------
    def _window_of(self, address: int) -> Optional[Tuple[int, int, int]]:
        """``(base, mem_index, offset)`` when ``address`` hits a memory window."""
        for base, mem_index in self._windows.items():
            if base <= address < base + REGISTER_WINDOW_BYTES:
                return base, mem_index, address - base
        return None

    @staticmethod
    def _is_command(request: BusRequest, offset: int) -> bool:
        return (offset == REG_COMMAND and request.op is BusOp.WRITE
                and request.burst_data is not None)

    def _local(self, data: int = 0, burst: Optional[List[int]] = None
               ) -> BusResponse:
        return BusResponse(status=ResponseStatus.OK, data=data,
                           burst_data=list(burst) if burst is not None else [],
                           slave_cycles=0,
                           total_cycles=self.config.hit_cycles)

    # -- main entry point --------------------------------------------------------------
    def transfer(self, request: BusRequest
                 ) -> Generator[object, None, BusResponse]:
        """The CachedPort's transfer: decode, serve or forward ``request``."""
        window = self._window_of(request.address)

        # 1. An absorbed READ_ARRAY left its payload staged for the io fetch.
        if self._pending_fetch is not None:
            mem_index, count, words = self._pending_fetch
            self._pending_fetch = None
            if (window is not None and window[1] == mem_index
                    and window[2] == IO_ARRAY_BASE
                    and request.op is BusOp.READ
                    and request.burst_length == count):
                yield self._hit_wait
                return self._local(data=0, burst=words)
            # Unexpected interleaving: drop the staged words and fall through.

        is_command = window is not None and self._is_command(request, window[2])

        # 2. A buffered io stage must reach the memory before any other
        #    traffic that is not its WRITE_ARRAY command.
        if self._pending_stage is not None and not is_command:
            yield from self._flush_stage()

        # 3. Command bursts: decode and dispatch.
        if is_command:
            base, mem_index, _offset = window
            command = None
            try:
                command = MemCommand.from_words(list(request.burst_data))
            except ProtocolError:
                pass
            if command is not None and command.sm_addr == mem_index:
                return (yield from self._dispatch(command, request, base,
                                                  mem_index))
            if self._pending_stage is not None:
                yield from self._flush_stage()
            self.stats.uncached_ops += 1
            return (yield from self._raw.transfer(request))

        # 4. Whole-window io stages: buffer (write-back) or observe
        #    (write-through) so a following WRITE_ARRAY can use the words.
        if (window is not None and window[2] == IO_ARRAY_BASE
                and request.op is BusOp.WRITE
                and request.burst_data is not None):
            mem_index = window[1]
            if self.policy is WritePolicy.WRITE_BACK:
                self._pending_stage = (mem_index, request)
                yield self._hit_wait
                return self._local()
            response = yield from self._raw.transfer(request)
            if response.ok:
                self._observed_stage = (mem_index, list(request.burst_data))
            return response

        # 5. Everything else passes through untouched (status/diagnostic
        #    registers, io fetches, non-memory addresses).
        response = yield from self._raw.transfer(request)
        if (self._pending_install is not None and window is not None
                and response.ok and request.op is BusOp.READ
                and window[2] == IO_ARRAY_BASE):
            alloc, start, dim, mem_index, guard = self._pending_install
            self._pending_install = None
            if (window[1] == mem_index and request.burst_length == dim
                    and len(response.burst_data) == dim
                    and not guard.poisoned):
                words = [word & 0xFFFFFFFF for word in response.burst_data]
                lines = yield from self._prepare_lines(alloc, start, dim)
                if not guard.poisoned:
                    self._finalize_install(alloc, start, words, lines,
                                           dirty=False)
            self.domain.end_fill(guard)
        else:
            self._clear_pending_install()
        return response

    # -- opcode dispatch -----------------------------------------------------------------
    def _dispatch(self, command: MemCommand, request: BusRequest, base: int,
                  mem_index: int) -> Generator[object, None, BusResponse]:
        opcode = command.opcode
        if opcode is not MemOpcode.WRITE_ARRAY and self._pending_stage is not None:
            yield from self._flush_stage()
        if opcode is MemOpcode.READ:
            return (yield from self._op_read(command, request, mem_index))
        if opcode is MemOpcode.WRITE:
            return (yield from self._op_write(command, request, mem_index))
        if opcode is MemOpcode.READ_ARRAY:
            return (yield from self._op_read_array(command, request, mem_index))
        if opcode is MemOpcode.WRITE_ARRAY:
            return (yield from self._op_write_array(command, request, base,
                                                    mem_index))
        # ALLOC/FREE/RESERVE/RELEASE bookkeeping happens in the domain's
        # interconnect snoop hook, synchronously at bus completion — the
        # shim only runs the flush barriers that must precede the command.
        if opcode is MemOpcode.RESERVE:
            alloc = self.domain.find_alloc(mem_index, command.vptr)
            if alloc is not None and alloc.reserved_by is None:
                # Acquiring the semaphore is a flush barrier: every cache's
                # dirty data of the allocation reaches memory first.
                yield from self.domain.flush_alloc(self, alloc)
            return (yield from self._raw.transfer(request))
        if opcode is MemOpcode.RELEASE:
            alloc = self.domain.find_alloc(mem_index, command.vptr)
            if alloc is not None:
                yield from self._flush_own_dirty(alloc, alloc.vptr,
                                                 alloc.end_vptr)
            return (yield from self._raw.transfer(request))
        if opcode in (MemOpcode.ALLOC, MemOpcode.FREE):
            return (yield from self._raw.transfer(request))
        # QUERY / NOP / unknown: plain passthrough.
        self.stats.uncached_ops += 1
        return (yield from self._raw.transfer(request))

    # -- scalar read ----------------------------------------------------------------------
    def _op_read(self, command: MemCommand, request: BusRequest, mem_index: int
                 ) -> Generator[object, None, BusResponse]:
        located = self.domain.resolve(mem_index, command.vptr, command.offset)
        if located is None:
            self.stats.uncached_ops += 1
            return (yield from self._raw.transfer(request))
        alloc, index = located
        line_no = self.geometry.line_number(alloc.element_byte(index))
        line = self._lookup(mem_index, alloc.uid, line_no)
        if line is not None and line.covers(index) \
                and line.present[line.slot_of(index)]:
            self.stats.hits += 1
            yield self._hit_wait
            return self._local(data=line.words[line.slot_of(index)])
        self.stats.misses += 1
        first, words, _line = yield from self._fill(alloc, line_no)
        if words is None or not first <= index < first + len(words):
            self.stats.fallbacks += 1
            return (yield from self._raw.transfer(request))
        # Even when the fetched line could not stay resident (invalidated by
        # a concurrent writer mid-fill), the fetched words are a correct
        # read serialized at the moment the burst completed on the bus.
        return self._local(data=words[index - first])

    # -- scalar write ---------------------------------------------------------------------
    def _op_write(self, command: MemCommand, request: BusRequest, mem_index: int
                  ) -> Generator[object, None, BusResponse]:
        """Scalar write with reservation-aware retry.

        A foreign master may hold (or acquire, while this write is in
        flight on the bus) the allocation's coherence semaphore; the
        uncached platform would refuse the write only under that exact
        interleaving.  The snooping cache instead serializes the write
        behind the critical section: stall, then retry.  True misuse still
        errors — after the retry bound the write is forwarded and the
        wrapper's NACK surfaces.
        """
        for _attempt in range(self._max_stalls):
            response = yield from self._op_write_once(command, request,
                                                      mem_index)
            if response is not None:
                return response
            self.stats.reservation_stalls += 1
            yield self._stall_wait
        self.stats.uncached_ops += 1
        return (yield from self._raw.transfer(request))

    def _foreign_reserved(self, mem_index: int, vptr: int) -> bool:
        """True when a *different* master currently holds the semaphore."""
        return self.domain.is_foreign_reserved(mem_index, vptr, self.master_id)

    def _op_write_once(self, command: MemCommand, request: BusRequest,
                       mem_index: int
                       ) -> Generator[object, None, Optional[BusResponse]]:
        """One attempt of :meth:`_op_write`; ``None`` asks for a retry."""
        located = self.domain.resolve(mem_index, command.vptr, command.offset)
        if located is None:
            self.stats.uncached_ops += 1
            return (yield from self._raw.transfer(request))
        alloc, index = located
        if alloc.reserved_by is not None and alloc.reserved_by != self.master_id:
            return None
        value = canonical_word(command.data, alloc.data_type)
        write_through = (self.policy is WritePolicy.WRITE_THROUGH
                         or alloc.reserved_by is not None)
        if write_through:
            # Reservation-held writes always go to memory so their
            # visibility matches the uncached platform.
            yield from self.domain.acquire_exclusive(self, alloc, index, 1)
            guard = self.domain.begin_fill(self, alloc.mem_index,
                                           alloc.element_byte(index),
                                           alloc.element_byte(index + 1))
            try:
                response = yield from self._raw.transfer(request)
            finally:
                self.domain.end_fill(guard)
            if response.ok:
                self.stats.write_throughs += 1
                # A remote fill may have re-installed the pre-write value
                # while the write was waiting for the bus: scrub again.
                self.domain.invalidate_range(
                    alloc.mem_index, alloc.element_byte(index),
                    alloc.element_byte(index + 1), requester=self)
                if not guard.poisoned:
                    self._update_clean(alloc, index, value)
            elif self._foreign_reserved(mem_index, command.vptr):
                return None  # a reservation won the bus race: retry
            return response
        line_no = self.geometry.line_number(alloc.element_byte(index))
        line = self._lookup(mem_index, alloc.uid, line_no)
        if line is None:
            self.stats.misses += 1
            _first, _words, line = yield from self._fill(alloc, line_no)
        else:
            self.stats.hits += 1
        if self._foreign_reserved(mem_index, command.vptr):
            return None  # reservation acquired while the fill was on the bus
        if line is not None and line.state is not MSIState.MODIFIED:
            yield from self.domain.acquire_exclusive(
                self, alloc, line.first_index, line.n_slots)
            if self._foreign_reserved(mem_index, command.vptr):
                return None
            if self.domain.any_remote_modified(self, mem_index, line.lo_byte,
                                               line.hi_byte):
                # The upgrade snoop gave up on a blocked writeback: do not
                # take MODIFIED against a surviving remote owner.
                line = None
        if line is None or not self._is_resident(line):
            # No way available, or the line was invalidated while the
            # upgrade snoop was writing remote data back: write to memory.
            self.stats.fallbacks += 1
            yield from self.domain.acquire_exclusive(self, alloc, index, 1)
            guard = self.domain.begin_fill(self, alloc.mem_index,
                                           alloc.element_byte(index),
                                           alloc.element_byte(index + 1))
            try:
                response = yield from self._raw.transfer(request)
            finally:
                self.domain.end_fill(guard)
            if response.ok:
                self.domain.invalidate_range(
                    alloc.mem_index, alloc.element_byte(index),
                    alloc.element_byte(index + 1), requester=self)
                if not guard.poisoned:
                    self._update_clean(alloc, index, value)
            elif self._foreign_reserved(mem_index, command.vptr):
                return None
            return response
        # acquire_exclusive returns with no surviving remote copy and no
        # trailing yield, so taking MODIFIED here cannot race a remote fill.
        line.state = MSIState.MODIFIED
        slot = line.slot_of(index)
        line.words[slot] = value
        line.present[slot] = True
        line.dirty[slot] = True
        yield self._hit_wait
        return self._local()

    def _update_clean(self, alloc: SharedAllocation, index: int, value: int
                      ) -> None:
        """Refresh a resident slot after a write that reached memory."""
        line_no = self.geometry.line_number(alloc.element_byte(index))
        line = self._lookup(alloc.mem_index, alloc.uid, line_no)
        if line is not None and line.covers(index):
            slot = line.slot_of(index)
            line.words[slot] = value
            line.present[slot] = True
            line.dirty[slot] = False

    # -- array read -----------------------------------------------------------------------
    def _op_read_array(self, command: MemCommand, request: BusRequest,
                       mem_index: int) -> Generator[object, None, BusResponse]:
        located = self.domain.resolve_range(mem_index, command.vptr,
                                            command.offset, command.dim)
        if located is None:
            self.stats.uncached_ops += 1
            return (yield from self._raw.transfer(request))
        alloc, start = located
        words = self._collect(alloc, start, command.dim)
        if words is not None:
            self.stats.array_hits += 1
            self._pending_fetch = (mem_index, command.dim, words)
            yield self._hit_wait
            return self._local(data=command.dim)
        self.stats.array_misses += 1
        yield from self._flush_own_dirty(alloc, alloc.element_byte(start),
                                         alloc.element_byte(start + command.dim))
        yield from self.domain.snoop_read(self, alloc, start, command.dim)
        guard = self.domain.begin_fill(
            self, mem_index, alloc.element_byte(start),
            alloc.element_byte(start + command.dim))
        # The guard deliberately outlives this call on success (it is
        # consumed when the io fetch installs, or by
        # _clear_pending_install), so only failure paths may end it here.
        try:
            response = yield from self._raw.transfer(request)
        except BaseException:
            self.domain.end_fill(guard)
            raise
        if response.ok:
            self._pending_install = (alloc, start, command.dim, mem_index,
                                     guard)
        else:
            self.domain.end_fill(guard)
        return response

    def _collect(self, alloc: SharedAllocation, start: int, dim: int
                 ) -> Optional[List[int]]:
        """All ``dim`` words from resident lines, or None on any gap."""
        words: List[int] = []
        index = start
        while index < start + dim:
            line_no = self.geometry.line_number(alloc.element_byte(index))
            line = self._lookup(alloc.mem_index, alloc.uid, line_no)
            if line is None or not line.covers(index):
                return None
            upto = min(start + dim, line.first_index + line.n_slots)
            for element in range(index, upto):
                slot = line.slot_of(element)
                if not line.present[slot]:
                    return None
                words.append(line.words[slot])
            index = upto
        return words

    # -- array write ----------------------------------------------------------------------
    def _op_write_array(self, command: MemCommand, request: BusRequest,
                        base: int, mem_index: int
                        ) -> Generator[object, None, BusResponse]:
        """Array write with the same reservation-aware retry as scalar
        writes (see :meth:`_op_write`); the staged words survive retries."""
        staged: Optional[List[int]] = None
        if self._pending_stage is not None:
            stage_mem, stage_request = self._pending_stage
            if stage_mem == mem_index and stage_request.burst_data is not None \
                    and len(stage_request.burst_data) >= command.dim:
                staged = list(stage_request.burst_data[:command.dim])
        for _attempt in range(self._max_stalls):
            response = yield from self._op_write_array_once(
                command, request, base, mem_index, staged)
            if response is not None:
                return response
            self.stats.reservation_stalls += 1
            yield self._stall_wait
        if self._pending_stage is not None:
            yield from self._flush_stage()
        self.stats.uncached_ops += 1
        return (yield from self._raw.transfer(request))

    def _op_write_array_once(self, command: MemCommand, request: BusRequest,
                             base: int, mem_index: int,
                             staged: Optional[List[int]]
                             ) -> Generator[object, None, Optional[BusResponse]]:
        """One attempt of :meth:`_op_write_array`; ``None`` asks to retry."""
        located = self.domain.resolve_range(mem_index, command.vptr,
                                            command.offset, command.dim)
        if located is None:
            if self._pending_stage is not None:
                yield from self._flush_stage()
            self.stats.uncached_ops += 1
            return (yield from self._raw.transfer(request))
        alloc, start = located
        if alloc.reserved_by is not None and alloc.reserved_by != self.master_id:
            return None
        absorb = (self.policy is WritePolicy.WRITE_BACK and staged is not None
                  and alloc.reserved_by is None)
        canon = [canonical_word(word, alloc.data_type)
                 for word in (staged or [])]
        if absorb:
            self._pending_stage = None
            lines = yield from self._prepare_lines(alloc, start, command.dim)
            yield from self.domain.acquire_exclusive(self, alloc, start,
                                                     command.dim)
            # acquire_exclusive ends synchronously, and the readiness check
            # plus _finalize_install never suspend, so MODIFIED ownership
            # cannot race remote fills.  The check runs *before* anything
            # is installed: a write that ends up forwarded (and possibly
            # NACKed) must never leave speculative dirty data behind.
            ready = (
                self._range_prepared(alloc, start, command.dim, lines)
                and not self.domain.any_remote_modified(
                    self, alloc.mem_index, alloc.element_byte(start),
                    alloc.element_byte(start + command.dim)))
            if ready:
                self._finalize_install(alloc, start, canon, lines, dirty=True)
                self.stats.array_absorbs += 1
                yield self._hit_wait
                return self._local(data=command.dim)
            # Cannot keep the whole range resident: send the data to memory
            # instead, exactly like the passthrough path (own dirty flushed
            # before the payload is staged — the writebacks reuse the io
            # array — and the cache only updated after memory accepted it).
            self.stats.fallbacks += 1
            yield from self._flush_own_dirty(
                alloc, alloc.element_byte(start),
                alloc.element_byte(start + command.dim))
            yield from self._restage(mem_index, staged or [], base)
            guard = self.domain.begin_fill(
                self, mem_index, alloc.element_byte(start),
                alloc.element_byte(start + command.dim))
            try:
                response = yield from self._raw.transfer(request)
                if not response.ok:
                    if self._foreign_reserved(mem_index, command.vptr):
                        return None  # a reservation won the bus race: retry
                    return response
                self.domain.invalidate_range(
                    mem_index, alloc.element_byte(start),
                    alloc.element_byte(start + command.dim), requester=self)
                if not guard.poisoned:
                    lines = yield from self._prepare_lines(alloc, start,
                                                           command.dim)
                    if not guard.poisoned:
                        self._finalize_install(alloc, start, canon, lines,
                                               dirty=False)
            finally:
                self.domain.end_fill(guard)
            return response
        # Passthrough (write-through, reservation held by self, or nothing
        # staged through this shim).  Writebacks run *before* the payload
        # is (re)staged: flush_own_dirty and the upgrade snoop reuse the
        # wrapper's per-master io array and would clobber a staged payload.
        yield from self._flush_own_dirty(
            alloc, alloc.element_byte(start),
            alloc.element_byte(start + command.dim))
        yield from self.domain.acquire_exclusive(self, alloc, start,
                                                 command.dim)
        if self._pending_stage is not None:
            yield from self._flush_stage()
        elif staged is not None:
            # Retry (or write-back fallback): the io array no longer holds
            # the payload — stage it again before re-issuing.
            yield from self._restage(mem_index, staged, base)
        guard = self.domain.begin_fill(
            self, mem_index, alloc.element_byte(start),
            alloc.element_byte(start + command.dim))
        try:
            response = yield from self._raw.transfer(request)
            if not response.ok:
                if self._foreign_reserved(mem_index, command.vptr):
                    return None  # a reservation won the bus race: retry
                return response
            # The data just landed in memory: scrub remote copies that were
            # re-installed while the write waited for the bus.
            self.domain.invalidate_range(
                mem_index, alloc.element_byte(start),
                alloc.element_byte(start + command.dim), requester=self)
            observed = None
            if staged is not None:
                observed = canon
            elif (self._observed_stage is not None
                  and self._observed_stage[0] == mem_index
                  and len(self._observed_stage[1]) >= command.dim):
                observed = [canonical_word(word, alloc.data_type)
                            for word in self._observed_stage[1][:command.dim]]
            self._observed_stage = None
            if observed is not None and not guard.poisoned:
                lines = yield from self._prepare_lines(alloc, start,
                                                       command.dim)
                if not guard.poisoned:
                    self._finalize_install(alloc, start, observed, lines,
                                           dirty=False)
            else:
                for line in self.lines_overlapping(
                        mem_index, alloc.element_byte(start),
                        alloc.element_byte(start + command.dim)):
                    self.drop_line(line)
        finally:
            self.domain.end_fill(guard)
        return response

    def _range_prepared(self, alloc: SharedAllocation, start: int, count: int,
                        lines: Dict[int, "CacheLine"]) -> bool:
        """Synchronous: every line covering the range is prepared and still
        resident, so a dirty install of the whole range cannot fail."""
        for line_no in self._line_numbers(alloc, start, count):
            line = lines.get(line_no)
            if line is None or not self._is_resident(line):
                return False
        return True

    def _clear_pending_install(self) -> None:
        """Abandon a staged READ_ARRAY install (unexpected interleaving)."""
        if self._pending_install is not None:
            self.domain.end_fill(self._pending_install[4])
            self._pending_install = None

    # -- staging helpers ---------------------------------------------------------------
    def _flush_stage(self) -> Generator[object, None, None]:
        """Forward a buffered io stage to the memory module."""
        if self._pending_stage is None:
            return
        _mem_index, stage_request = self._pending_stage
        self._pending_stage = None
        yield from self._raw.transfer(stage_request)

    def _restage(self, mem_index: int, words: List[int], base: int
                 ) -> Generator[object, None, None]:
        yield from self._raw.burst_write(
            base + IO_ARRAY_BASE, [word & 0xFFFFFFFF for word in words],
            tag=f"{self.name}.restage")

    # -- fills, installs, evictions ------------------------------------------------------
    def _is_resident(self, line: CacheLine) -> bool:
        return line in self._sets[self.geometry.set_index(line.line_no)]

    def _line_numbers(self, alloc: SharedAllocation, start: int, count: int
                      ) -> List[int]:
        """Distinct line numbers covering ``alloc[start:start+count]``."""
        first_line = self.geometry.line_number(alloc.element_byte(start))
        last_line = self.geometry.line_number(
            alloc.element_byte(start + count) - 1)
        return list(range(first_line, last_line + 1))

    def _fill(self, alloc: SharedAllocation, line_no: int
              ) -> Generator[object, None,
                             Tuple[int, Optional[List[int]], Optional[CacheLine]]]:
        """Fetch the allocation-clamped line ``line_no`` with one burst.

        Returns ``(first_element, words, line)``.  ``words`` is ``None``
        when the fetch itself failed; ``line`` is ``None`` when the data
        could not stay resident (no victim available, or a concurrent
        writer invalidated the placeholder mid-fill — the placeholder is
        registered in the directory *before* the first suspension exactly
        so that remote upgrades drop it and the stale payload is never
        installed).
        """
        first, count = self._element_span(alloc, line_no)
        if count <= 0:
            return first, None, None
        line = self._lookup(alloc.mem_index, alloc.uid, line_no)
        if line is None:
            room = yield from self._make_room(self.geometry.set_index(line_no))
            if room:
                line = CacheLine(alloc, line_no, first, count)
                self._sets[self.geometry.set_index(line_no)].insert(0, line)
        yield from self.domain.snoop_read(self, alloc, first, count)
        base = self._window_base[alloc.mem_index]
        fill_command = MemCommand(MemOpcode.READ_ARRAY, sm_addr=alloc.mem_index,
                                  vptr=alloc.vptr, offset=first, dim=count)
        guard = self.domain.begin_fill(self, alloc.mem_index,
                                       alloc.element_byte(first),
                                       alloc.element_byte(first + count))
        try:
            ack = yield from self._raw.burst_write(
                base + REG_COMMAND, fill_command.to_words(),
                tag=f"{self.name}.fill")
            if not ack.ok:
                self._drop_if_empty(line)
                return first, None, None
            payload = yield from self._raw.burst_read(
                base + IO_ARRAY_BASE, count, tag=f"{self.name}.fill")
        finally:
            self.domain.end_fill(guard)
        if not payload.ok or len(payload.burst_data) != count:
            self._drop_if_empty(line)
            return first, None, None
        self.stats.fills += 1
        words = [word & 0xFFFFFFFF for word in payload.burst_data]
        if guard.poisoned:
            # A conflicting write completed at the memory while the payload
            # was in flight: the words are a correct read (serialized when
            # the fill was served) but are stale *now* — do not install.
            self._drop_if_empty(line)
            return first, words, None
        if line is None or not self._is_resident(line):
            return first, words, None
        for slot, word in enumerate(words):
            if not line.dirty[slot]:  # dirty data is newer than memory
                line.words[slot] = word
                line.present[slot] = True
        return first, words, line

    def _drop_if_empty(self, line: Optional[CacheLine]) -> None:
        """Remove a placeholder that never received any data."""
        if line is not None and not any(line.present) and self._is_resident(line):
            ways = self._sets[self.geometry.set_index(line.line_no)]
            ways.remove(line)

    def _prepare_lines(self, alloc: SharedAllocation, start: int, count: int
                       ) -> Generator[object, None, Dict[int, CacheLine]]:
        """Make every line covering the range resident (placeholders for the
        missing ones); may suspend for eviction writebacks."""
        prepared: Dict[int, CacheLine] = {}
        for line_no in self._line_numbers(alloc, start, count):
            span_first, span_count = self._element_span(alloc, line_no)
            if span_count <= 0:
                continue
            line = self._lookup(alloc.mem_index, alloc.uid, line_no)
            if line is None:
                room = yield from self._make_room(
                    self.geometry.set_index(line_no))
                if not room:
                    continue
                line = CacheLine(alloc, line_no, span_first, span_count)
                self._sets[self.geometry.set_index(line_no)].insert(0, line)
            prepared[line_no] = line
        return prepared

    def _finalize_install(self, alloc: SharedAllocation, start: int,
                          words: List[int], lines: Dict[int, CacheLine],
                          dirty: bool) -> bool:
        """Synchronously copy ``words`` (canonical) into the prepared lines.

        Lines that were invalidated (or evicted) while preparation or the
        data transfer suspended are skipped — and for clean installs any
        range a remote cache has dirty/MODIFIED is skipped too, so a fetch
        that predates a remote write can never go resident.  Returns True
        when the whole range ended up resident.
        """
        complete = True
        end = start + len(words)
        for line_no in self._line_numbers(alloc, start, len(words)):
            line = lines.get(line_no)
            if line is None or not self._is_resident(line):
                complete = False
                continue
            if not dirty and self.domain.any_remote_modified(
                    self, alloc.mem_index, line.lo_byte, line.hi_byte):
                complete = False
                continue
            for element in range(max(start, line.first_index),
                                 min(end, line.first_index + line.n_slots)):
                slot = line.slot_of(element)
                if dirty or not line.dirty[slot]:
                    line.words[slot] = words[element - start]
                    line.present[slot] = True
                    if dirty:
                        line.dirty[slot] = True
            if dirty:
                line.state = MSIState.MODIFIED
        return complete

    def _make_room(self, set_index: int) -> Generator[object, None, bool]:
        """Free one way in ``set_index`` (LRU victim, writeback when dirty)."""
        ways = self._sets[set_index]
        if len(ways) < self.geometry.ways:
            return True
        for line in reversed(list(ways)):
            if not line.has_dirty():
                self.drop_line(line, evicted=True)
                return True
        for line in reversed(list(ways)):
            holder = line.alloc.reserved_by
            if holder is not None and holder != self.master_id:
                continue  # cannot write back while a foreign master holds it
            ok = yield from self.writeback_line(line, self._raw)
            if ok:
                self.drop_line(line, evicted=True)
                return True
        return False

    # -- writebacks ----------------------------------------------------------------------
    def writeback_line(self, line: CacheLine, port
                       ) -> Generator[object, None, bool]:
        """Write the line's dirty runs back to its memory module via ``port``.

        Returns True when every dirty element reached memory (dirty flags
        cleared); False leaves the remaining runs dirty for a later retry.
        """
        alloc = line.alloc
        if alloc.reserved_by is not None and alloc.reserved_by != port.master_id:
            return False
        base = self._window_base[line.mem_index]
        for slot_start, length in line.dirty_runs():
            if self.domain.find_alloc(line.mem_index, alloc.vptr) is not alloc:
                # The allocation died (FREE, possibly re-ALLOC reusing the
                # vptr range) while an earlier run's transfer suspended us:
                # writing the dead data now would corrupt the new owner.
                return False
            first_element = line.first_index + slot_start
            # Snapshot what actually goes on the bus: the owner may re-dirty
            # a slot while the transfer suspends this process, and a dirty
            # flag may only be cleared for the exact value that reached
            # memory (the snoop loop retries until the line drains).
            written = list(line.words[slot_start:slot_start + length])
            if length == 1:
                command = MemCommand(
                    MemOpcode.WRITE, sm_addr=line.mem_index, vptr=alloc.vptr,
                    offset=first_element, data=written[0])
                response = yield from port.burst_write(
                    base + REG_COMMAND, command.to_words(),
                    tag=f"{self.name}.writeback")
            else:
                stage = yield from port.burst_write(
                    base + IO_ARRAY_BASE, written,
                    tag=f"{self.name}.writeback")
                if not stage.ok:
                    return False
                if self.domain.find_alloc(line.mem_index,
                                          alloc.vptr) is not alloc:
                    return False  # allocation died while the stage ran
                command = MemCommand(
                    MemOpcode.WRITE_ARRAY, sm_addr=line.mem_index,
                    vptr=alloc.vptr, offset=first_element, dim=length)
                response = yield from port.burst_write(
                    base + REG_COMMAND, command.to_words(),
                    tag=f"{self.name}.writeback")
            if not response.ok:
                return False
            for slot in range(slot_start, slot_start + length):
                if line.words[slot] == written[slot - slot_start]:
                    line.dirty[slot] = False
        self.stats.writebacks += 1
        return True

    def _flush_own_dirty(self, alloc: SharedAllocation, lo_byte: int,
                         hi_byte: int) -> Generator[object, None, None]:
        for line in self.dirty_lines_overlapping(alloc, lo_byte, hi_byte):
            ok = yield from self.writeback_line(line, self._raw)
            if ok:
                line.downgrade()

    def flush(self) -> Generator[object, None, int]:
        """Write back every dirty line (explicit barrier); returns the count."""
        flushed = 0
        for ways in self._sets:
            for line in list(ways):
                if line.has_dirty():
                    ok = yield from self.writeback_line(line, self._raw)
                    if ok:
                        line.downgrade()
                        flushed += 1
        return flushed

    # -- reporting -----------------------------------------------------------------------
    def report(self) -> dict:
        """Summary dictionary merged into the platform's simulation report."""
        return {
            "name": self.name,
            "master_id": self.master_id,
            "geometry": self.geometry.describe(),
            "policy": self.policy.value,
            "capacity_bytes": self.geometry.capacity_bytes,
            "resident_lines": self.resident_lines(),
            **self.stats.as_dict(),
        }
