"""Partition planning: tiling the mesh into rectangular partitions.

The plan is pure data derived from the :class:`~repro.soc.config.PlatformConfig`
alone — every worker process recomputes the identical plan from the
pickled scenario, so no geometry ever crosses a pipe.

Tiling is recursive bisection: split the longer mesh dimension in half
(rows win ties), recurse into each half.  For a square mesh and four
partitions this is exactly quadrant tiling, and the 2-partition tiling is
the union of 4-partition tile pairs (nested bisection), so a placement
that is cut-free at 4 partitions is also cut-free at 2.

Rectangular tiles matter for correctness: XY dimension-order routes
between two nodes of a rectangle never leave it, so intra-partition
traffic never crosses a cut and stays bit-identical to the sequential
simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Tuple

from ..noc.mesh import MeshNoc
from ..noc.partitioned import PartitionContext, PartitionError
from ..soc.config import InterconnectKind, PlatformConfig

#: Default conservative-sync window (= boundary-link latency) in clock
#: cycles.  Large enough that epoch barriers are rare relative to the
#: work inside them, small enough that cross-partition latency stays in
#: the same order as a long mesh traversal.
DEFAULT_EPOCH_CYCLES = 64

#: A half-open tile: (row_start, row_end, col_start, col_end).
_Tile = Tuple[int, int, int, int]


def _tiles(row0: int, row1: int, col0: int, col1: int, count: int
           ) -> List[_Tile]:
    """Recursively bisect the rectangle into ``count`` tiles."""
    if count == 1:
        return [(row0, row1, col0, col1)]
    half = count // 2
    rows, cols = row1 - row0, col1 - col0
    if rows >= cols and rows >= 2:
        mid = row0 + rows // 2
        return (_tiles(row0, mid, col0, col1, half)
                + _tiles(mid, row1, col0, col1, half))
    if cols >= 2:
        mid = col0 + cols // 2
        return (_tiles(row0, row1, col0, mid, half)
                + _tiles(row0, row1, mid, col1, half))
    raise PartitionError(
        f"a {row1 - row0}x{col1 - col0} mesh region cannot be split into "
        f"{count} partitions (every tile needs at least one node)"
    )


@dataclass(frozen=True)
class PartitionPlan:
    """The complete tiling of one platform: who owns what."""

    partitions: int
    rows: int
    cols: int
    epoch_cycles: int
    #: Owning partition of every mesh node (row-major).
    node_owner: Tuple[int, ...]
    #: Owning partition of every global PE index.
    pe_owner: Tuple[int, ...]
    #: Owning partition of every memory index.
    memory_owner: Tuple[int, ...]

    def nodes_of(self, index: int) -> FrozenSet[int]:
        return frozenset(node for node, owner in enumerate(self.node_owner)
                         if owner == index)

    def pes_of(self, index: int) -> Tuple[int, ...]:
        return tuple(pe for pe, owner in enumerate(self.pe_owner)
                     if owner == index)

    def memories_of(self, index: int) -> Tuple[int, ...]:
        return tuple(mem for mem, owner in enumerate(self.memory_owner)
                     if owner == index)

    def context(self, index: int, clock_period: int) -> PartitionContext:
        """The per-partition view handed to :class:`~repro.soc.platform.Platform`."""
        if not 0 <= index < self.partitions:
            raise ValueError(f"partition index {index} out of range")
        return PartitionContext(
            partitions=self.partitions,
            index=index,
            epoch_cycles=self.epoch_cycles,
            epoch_time=self.epoch_cycles * clock_period,
            owned_nodes=self.nodes_of(index),
            pe_owner=self.pe_owner,
            memory_owner=self.memory_owner,
        )


def plan_partitions(config: PlatformConfig) -> PartitionPlan:
    """Tile ``config``'s mesh into ``config.partitions`` partitions.

    Placement of PEs and memories mirrors :class:`~repro.noc.mesh.MeshNoc`
    exactly (same static placement rules, same attach order), so the plan's
    ownership map agrees with what every shard builds.
    """
    if config.interconnect is not InterconnectKind.MESH:
        raise PartitionError(
            "partitioned execution requires a mesh interconnect"
        )
    noc = config.resolved_noc()
    tiles = _tiles(0, noc.rows, 0, noc.cols, config.partitions)
    node_owner = [0] * (noc.rows * noc.cols)
    for index, (row0, row1, col0, col1) in enumerate(tiles):
        for row in range(row0, row1):
            for col in range(col0, col1):
                node_owner[row * noc.cols + col] = index
    pe_owner = tuple(node_owner[MeshNoc.master_node(noc, pe)]
                     for pe in range(config.num_pes))
    # Memories attach in index order, so slave index == memory index.
    memory_owner = tuple(node_owner[MeshNoc.slave_node(noc, mem)]
                         for mem in range(config.num_memories))
    epoch_cycles = config.pdes_epoch_cycles
    if epoch_cycles is None:
        epoch_cycles = max(DEFAULT_EPOCH_CYCLES,
                           noc.router_cycles + noc.link_cycles)
    return PartitionPlan(
        partitions=config.partitions,
        rows=noc.rows,
        cols=noc.cols,
        epoch_cycles=epoch_cycles,
        node_owner=tuple(node_owner),
        pe_owner=pe_owner,
        memory_owner=memory_owner,
    )
