"""One partition of a PDES run: a platform shard plus its kernel windows.

:class:`PartitionSim` owns one :class:`~repro.soc.platform.Platform`
built with a :class:`~repro.noc.partitioned.PartitionContext`, and drives
its simulator in epoch-bounded windows under coordinator control:

* :meth:`advance` runs the kernel up to a horizon the coordinator proved
  safe, delivering inbound boundary flits at exactly their cut-latency
  delivery times, and reports the outbox plus the partition's next
  activity time (the "null message" of conservative PDES);
* :meth:`finish` trims the clock back to the last real activity (the
  multi-window equivalent of the sequential
  :meth:`~repro.kernel.simulator.Simulator.trim_to_last_activity`) and
  harvests a picklable :class:`PartitionPayload` of raw statistics for
  the merge stage.

Raw objects (``BusStats``, latency arrays, ``NocStats``) are shipped
instead of the rendered report block so the merged report can rebuild
the exact sequential ``interconnect_stats`` shape with no re-parsing.
"""

from __future__ import annotations

import heapq
import time as _wallclock
from array import array
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..fabric.stats import BusStats
from ..noc.partitioned import BoundaryFlit
from ..noc.stats import NocStats
from .plan import PartitionPlan


@dataclass
class PartitionPayload:
    """Everything one partition reports at the end of a run (picklable)."""

    index: int
    pes: Tuple[int, ...]
    memories: Tuple[int, ...]
    simulated_time: int
    kernel_stats: Dict[str, float]
    wallclock_seconds: float
    boundary_sent: int
    boundary_received: int
    #: ``(global_pe_index, report_dict, result, finished, name)`` per
    #: owned processor.
    pe_rows: List[Tuple[int, dict, object, bool, str]] = field(
        default_factory=list)
    #: ``(memory_index, report_dict)`` per owned memory.
    memory_rows: List[Tuple[int, dict]] = field(default_factory=list)
    #: ``(memory_index, stats_dict, transaction_count)`` per owned monitor.
    monitor_rows: List[Tuple[int, dict, int]] = field(default_factory=list)
    bus_stats: BusStats = field(default_factory=BusStats)
    latencies: array = field(default_factory=lambda: array("q"))
    grant_counts: Dict[int, int] = field(default_factory=dict)
    arbitration_kind: str = "round_robin"
    noc_stats: NocStats = field(default_factory=NocStats)
    #: Full-mesh port count (both networks) — the utilization denominator.
    ports_total: int = 0
    trace_events: Optional[list] = None
    trace_dropped: int = 0
    trace_filtered: int = 0
    timeseries: List[dict] = field(default_factory=list)
    obs_summary: Optional[dict] = None


class PartitionSim:
    """Builds and drives one partition's platform shard."""

    def __init__(self, scenario, plan: PartitionPlan, index: int) -> None:
        # Deferred imports: repro.api imports this package's coordinator
        # lazily and vice versa (the scenario layer sits above the soc
        # layer, this module is instantiated by both sides of the pipe).
        from ..api.runner import _build_seeded_workload
        from ..soc.platform import Platform

        self.scenario = scenario
        self.plan = plan
        self.index = index
        self.context = plan.context(index, scenario.config.clock_period)
        bundle = _build_seeded_workload(scenario)
        self.platform = Platform(scenario.config, partition=self.context)
        self.platform.add_tasks(bundle.tasks)
        self.sim = self.platform.prepare_run()
        self.sim.elaborate()
        #: Inbound flits not yet delivered, as ``(*sort_key, flit)`` heap
        #: entries — the deterministic delivery order.
        self._pending: List[Tuple[int, int, int, BoundaryFlit]] = []
        #: Time of the last window in which the kernel did real work; the
        #: final clock trims back to this (windows pad ``now`` to their
        #: horizon exactly like ``sc_start`` pads to its deadline).
        self._last_real_time = 0
        self.wallclock = 0.0

    # -- coordinator protocol ---------------------------------------------------
    def next_activity(self) -> Optional[int]:
        """Earliest time anything can happen here (``None`` = drained).

        Folds the undelivered inbound flits into the kernel's own bound,
        so the coordinator's horizon stays sound without tracking
        per-partition delivery queues itself.
        """
        bound = self.sim.next_activity_time()
        if self._pending:
            head = self._pending[0][0]
            bound = head if bound is None else min(bound, head)
        return bound

    def advance(self, horizon: int, inbound: List[BoundaryFlit]
                ) -> Tuple[List[BoundaryFlit], Optional[int]]:
        """Simulate up to ``horizon``, delivering ``inbound`` on the way.

        The coordinator guarantees no other partition can affect this one
        before ``horizon``; deliveries happen exactly when simulated time
        reaches each flit's ``deliver_time`` (flits due *at* the horizon
        are enqueued and wake their port process in the next window, at
        the same timestamp).
        """
        start = _wallclock.perf_counter()
        for flit in inbound:
            heapq.heappush(self._pending, (*flit.sort_key(), flit))
        sim = self.sim
        noc = self.platform.interconnect
        pending = self._pending
        while True:
            while pending and pending[0][0] <= sim.now:
                noc.deliver(heapq.heappop(pending)[3])
            target = horizon
            if pending and pending[0][0] < target:
                target = pending[0][0]
            if target < sim.now:
                target = sim.now
            deltas_before = sim.stats.delta_cycles
            # run_until(now) is run(0): it still flushes the delta queue,
            # so flits delivered at the horizon are processed at their
            # exact timestamp before the window closes.
            sim.run_until(target)
            if sim.stats.delta_cycles != deltas_before:
                # Real work happened in this window: remember where it
                # ended (run() resets last_activity_time every call).
                self._last_real_time = sim.last_activity_time
            if sim.now >= horizon and not (pending
                                           and pending[0][0] <= sim.now):
                break
        outbox = self.platform.boundary.drain()
        self.wallclock += _wallclock.perf_counter() - start
        return outbox, self.next_activity()

    def finish(self) -> PartitionPayload:
        """Trim the clock, run end-of-simulation hooks, harvest stats."""
        start = _wallclock.perf_counter()
        sim = self.sim
        platform = self.platform
        if (not sim.pending_activity and not self._pending
                and sim.now > self._last_real_time):
            sim.now = self._last_real_time
            sim.stats.end_time = self._last_real_time
        sim.finalize()
        if platform.obs is not None:
            platform.obs.finish(sim.now)
        self.wallclock += _wallclock.perf_counter() - start

        noc = platform.interconnect
        owned_memories = self.plan.memories_of(self.index)
        payload = PartitionPayload(
            index=self.index,
            pes=self.plan.pes_of(self.index),
            memories=owned_memories,
            simulated_time=sim.now,
            kernel_stats=sim.stats.as_dict(),
            wallclock_seconds=self.wallclock,
            boundary_sent=platform.boundary.sent,
            boundary_received=platform.boundary.received,
            bus_stats=noc.stats,
            latencies=noc._latencies,
            grant_counts=noc.merged_grant_counts(),
            arbitration_kind=noc._arbitration_kind,
            noc_stats=noc.noc_stats,
            ports_total=sum(len(net) for net in noc._nets.values()),
        )
        for processor, pe_index in zip(platform.processors,
                                       platform.pe_indices):
            payload.pe_rows.append((pe_index, processor.report(),
                                    processor.stats.result,
                                    processor.finished, processor.name))
        for memory_index in owned_memories:
            payload.memory_rows.append(
                (memory_index, self._memory_report(memory_index)))
            if platform.monitors:
                monitor = platform.monitors[memory_index]
                payload.monitor_rows.append(
                    (memory_index, monitor.stats(),
                     monitor.transaction_count))
        if platform.obs is not None:
            if platform.obs.trace is not None:
                payload.trace_events = list(platform.obs.trace.events)
                payload.trace_dropped = platform.obs.trace.dropped
                payload.trace_filtered = platform.obs.trace.filtered
            payload.timeseries = list(platform.obs.timeseries)
            payload.obs_summary = platform.obs.summary()
        return payload

    def _memory_report(self, index: int) -> dict:
        """Per-memory block, same shape as the sequential report."""
        from ..wrapper.shared_memory import SharedMemoryWrapper

        memory = self.platform.memories[index]
        if isinstance(memory, SharedMemoryWrapper):
            return memory.report()
        return {
            "name": memory.name,
            "live_allocations": memory.live_count(),
            "used_bytes": memory.used_bytes(),
            "heap_accesses": memory.heap_accesses(),
            "op_counts": {op.name: count
                          for op, count in memory.op_counts.items()},
        }
